//! Record type tags.
//!
//! Runtime-level object "types" are records whose descriptor is a reserved
//! fixnum, giving cheap, collection-stable `eq?` type tests. The Scheme
//! layer adds its own tags in the same space; values here are chosen to be
//! readable in hex dumps.

use guardians_gc::Value;

/// Descriptor for port records.
pub fn port() -> Value {
    Value::fixnum(0x504f5254) // "PORT"
}

/// Descriptor for guardian records (a guardian reified as a heap value:
/// one field, the tconc).
pub fn guardian() -> Value {
    Value::fixnum(0x47554152) // "GUAR"
}

/// Descriptor for external-memory handle records (one field, the block id).
pub fn extblock() -> Value {
    Value::fixnum(0x4558544d) // "EXTM"
}

/// Descriptor for closure records (used by the Scheme interpreter).
pub fn closure() -> Value {
    Value::fixnum(0x434c4f53) // "CLOS"
}

/// Descriptor for primitive-procedure records (Scheme interpreter).
pub fn primitive() -> Value {
    Value::fixnum(0x5052494d) // "PRIM"
}

/// Descriptor for environment frame records (Scheme interpreter).
pub fn environment() -> Value {
    Value::fixnum(0x454e5653) // "ENVS"
}

/// Descriptor for staged (compiled) closure records: `[code-index, env,
/// name]`, where `code-index` is a fixnum into the interpreter's
/// analyzed-code table (Scheme interpreter's staged evaluator).
pub fn compiled_closure() -> Value {
    Value::fixnum(0x43434c53) // "CCLS"
}

/// Descriptor for slot-addressed environment frame records of the staged
/// evaluator: `[parent, slot0, slot1, ...]`.
pub fn frame() -> Value {
    Value::fixnum(0x4652414d) // "FRAM"
}

/// Descriptor for guarded-hash-table records (Scheme interpreter wraps the
/// Rust table; Rust code uses the struct directly).
pub fn hashtable() -> Value {
    Value::fixnum(0x48415348) // "HASH"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_distinct() {
        let tags = [
            port(),
            guardian(),
            extblock(),
            closure(),
            primitive(),
            environment(),
            hashtable(),
            compiled_closure(),
            frame(),
        ];
        for (i, a) in tags.iter().enumerate() {
            for (j, b) in tags.iter().enumerate() {
                assert_eq!(a == b, i == j);
            }
        }
    }
}
