//! Scheme list utilities over the heap: construction, traversal, and the
//! `assq`/`remq`/`memq` family that Figure 1's guarded hash table uses.

use guardians_gc::{Heap, Value};

/// Builds a proper list from a slice of values.
pub fn list(heap: &mut Heap, items: &[Value]) -> Value {
    let mut out = Value::NIL;
    for &v in items.iter().rev() {
        out = heap.cons(v, out);
    }
    out
}

/// Collects a proper list into a vector.
///
/// # Panics
///
/// Panics if `v` is not a proper list.
pub fn list_to_vec(heap: &Heap, mut v: Value) -> Vec<Value> {
    let mut out = Vec::new();
    while !v.is_nil() {
        out.push(heap.car(v));
        v = heap.cdr(v);
    }
    out
}

/// List length.
///
/// # Panics
///
/// Panics if `v` is not a proper list.
pub fn length(heap: &Heap, mut v: Value) -> usize {
    let mut n = 0;
    while !v.is_nil() {
        n += 1;
        v = heap.cdr(v);
    }
    n
}

/// Reverses a proper list (fresh pairs).
pub fn reverse(heap: &mut Heap, mut v: Value) -> Value {
    let mut out = Value::NIL;
    while !v.is_nil() {
        let car = heap.car(v);
        out = heap.cons(car, out);
        v = heap.cdr(v);
    }
    out
}

/// Appends two proper lists (copying the first).
pub fn append(heap: &mut Heap, a: Value, b: Value) -> Value {
    let items = list_to_vec(heap, a);
    let mut out = b;
    for &v in items.iter().rev() {
        out = heap.cons(v, out);
    }
    out
}

/// `memq`: the first tail of `ls` whose car is `x` (by `eq?`), or `#f`.
pub fn memq(heap: &Heap, x: Value, mut ls: Value) -> Value {
    while !ls.is_nil() {
        if heap.car(ls) == x {
            return ls;
        }
        ls = heap.cdr(ls);
    }
    Value::FALSE
}

/// `assq`: the first pair in the association list `ls` whose car is `x`
/// (by `eq?`), or `#f`. Works over weak pairs too (Figure 1 relies on
/// this: "weak pairs ... manipulated using normal list processing
/// operations, car, cdr, pair?, map, etc.").
pub fn assq(heap: &Heap, x: Value, mut ls: Value) -> Value {
    while !ls.is_nil() {
        let entry = heap.car(ls);
        if heap.is_pair(entry) && heap.car(entry) == x {
            return entry;
        }
        ls = heap.cdr(ls);
    }
    Value::FALSE
}

/// `remq`: a copy of `ls` with every element `eq?` to `x` removed.
pub fn remq(heap: &mut Heap, x: Value, ls: Value) -> Value {
    let items = list_to_vec(heap, ls);
    let mut out = Value::NIL;
    for &v in items.iter().rev() {
        if v != x {
            out = heap.cons(v, out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fx(n: i64) -> Value {
        Value::fixnum(n)
    }

    #[test]
    fn list_round_trip() {
        let mut h = Heap::default();
        let l = list(&mut h, &[fx(1), fx(2), fx(3)]);
        assert_eq!(length(&h, l), 3);
        assert_eq!(list_to_vec(&h, l), vec![fx(1), fx(2), fx(3)]);
        assert_eq!(list_to_vec(&h, Value::NIL), Vec::<Value>::new());
    }

    #[test]
    fn reverse_and_append() {
        let mut h = Heap::default();
        let l = list(&mut h, &[fx(1), fx(2), fx(3)]);
        let r = reverse(&mut h, l);
        assert_eq!(list_to_vec(&h, r), vec![fx(3), fx(2), fx(1)]);
        let l2 = list(&mut h, &[fx(4)]);
        let both = append(&mut h, l, l2);
        assert_eq!(list_to_vec(&h, both), vec![fx(1), fx(2), fx(3), fx(4)]);
        // Appending shares the tail.
        assert_eq!(heap_tail(&h, both, 3), l2);
    }

    fn heap_tail(h: &Heap, mut v: Value, n: usize) -> Value {
        for _ in 0..n {
            v = h.cdr(v);
        }
        v
    }

    #[test]
    fn memq_assq_remq() {
        let mut h = Heap::default();
        let key1 = h.make_symbol("k1");
        let key2 = h.make_symbol("k2");
        let e1 = h.cons(key1, fx(10));
        let e2 = h.cons(key2, fx(20));
        let al = list(&mut h, &[e1, e2]);

        assert_eq!(assq(&h, key1, al), e1);
        assert_eq!(assq(&h, key2, al), e2);
        let other = h.make_symbol("k1"); // different symbol, same name
        assert_eq!(assq(&h, other, al), Value::FALSE, "assq is eq?, not equal?");

        assert_eq!(memq(&h, e2, al), h.cdr(al));
        assert_eq!(memq(&h, fx(99), al), Value::FALSE);

        let without = remq(&mut h, e1, al);
        assert_eq!(list_to_vec(&h, without), vec![e2]);
        assert_eq!(list_to_vec(&h, al), vec![e1, e2], "remq copies");
    }

    #[test]
    fn assq_over_weak_pairs() {
        let mut h = Heap::default();
        let key = h.cons(fx(1), Value::NIL);
        let entry = h.weak_cons(key, fx(42));
        let bucket = list(&mut h, &[entry]);
        assert_eq!(assq(&h, key, bucket), entry);
        assert_eq!(h.cdr(assq(&h, key, bucket)), fx(42));
    }
}
