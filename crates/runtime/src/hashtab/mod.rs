//! Hash tables, in the paper's three flavours:
//!
//! * [`eq::EqHashTable`] — address-hashed eq table that rehashes after
//!   collections (the classic approach the paper calls wasteful in a
//!   generational setting), plus [`eq::TransportEqHashTable`], which uses
//!   a conservative transport guardian to rehash *only moved* entries.
//! * [`guarded::GuardedHashTable`] — Figure 1: guardians + weak pairs
//!   remove an entry when its key becomes inaccessible, at mutator cost
//!   proportional to the removals actually performed.
//! * [`weak_table::WeakKeyTable`] — the weak-pairs-only baseline: dead
//!   keys break, but reclaiming their values requires "a periodic scan of
//!   the entire table", which the paper deems unacceptable.

pub mod eq;
pub mod guarded;
pub mod weak_table;

use guardians_gc::{Heap, Value};

/// A content-based hash usable as the `hash` argument of Figure 1's
/// `make-guarded-hash-table`: stable across collections (it never looks at
/// addresses) for the key types the paper's examples use.
///
/// Keys of kinds with no stable content (pairs, vectors, boxes, records)
/// hash to a single bucket; use an eq table (address-hashed) for those.
pub fn content_hash(heap: &Heap, v: Value) -> u64 {
    use guardians_gc::ObjKind;
    if v.is_fixnum() {
        return mix(v.raw());
    }
    if !v.is_ptr() {
        return mix(v.raw() ^ 0x9E37);
    }
    match heap.kind_of(v) {
        Some(ObjKind::String) => fnv(heap.string_value(v).as_bytes()),
        Some(ObjKind::Symbol) => fnv(heap.symbol_name(v).as_bytes()) ^ 0x5f5f,
        Some(ObjKind::Flonum) => mix(heap.flonum_value(v).to_bits()),
        Some(ObjKind::Bytevector) => fnv(&heap.bytevector_value(v)),
        _ => 0,
    }
}

fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51afd7ed558ccd);
    x ^= x >> 33;
    x
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_across_collections() {
        let mut h = Heap::default();
        let s = h.make_string("stable");
        let r = h.root(s);
        let before = content_hash(&h, r.get());
        h.collect(0);
        h.collect(1);
        assert_eq!(content_hash(&h, r.get()), before);
    }

    #[test]
    fn content_hash_spreads_fixnums() {
        let h = Heap::default();
        let a = content_hash(&h, Value::fixnum(1));
        let b = content_hash(&h, Value::fixnum(2));
        assert_ne!(a, b);
    }

    #[test]
    fn equal_strings_hash_alike_distinct_strings_differ() {
        let mut h = Heap::default();
        let a = h.make_string("x");
        let b = h.make_string("x");
        let c = h.make_string("y");
        assert_eq!(content_hash(&h, a), content_hash(&h, b));
        assert_ne!(content_hash(&h, a), content_hash(&h, c));
    }
}
