//! The weak-pairs-only baseline table (paper Sections 1–2).
//!
//! Weak pairs "can be used to construct the hash table in such a way that
//! the keys are dropped automatically by the collector, but they do not
//! support removal of the values associated with dropped keys without a
//! periodic scan of the entire table" — and in a generation-based system
//! that scan touches entries "located in older generations not recently
//! subject to collection", which is exactly the overhead the guarded
//! table avoids. [`WeakKeyTable::scrub_full_scan`] counts the entries it
//! touches so experiment E4 can compare.

use crate::lists::assq;
use guardians_gc::{Heap, Rooted, Value};

use super::guarded::HashFn;

/// A weak-key hash table with no guardian: entries with dead keys linger
/// (their weak cars broken to `#f`, values still strongly held) until a
/// full-table scan removes them.
#[derive(Debug)]
pub struct WeakKeyTable {
    buckets: Rooted,
    size: usize,
    hash: HashFn,
    entries: usize,
    /// Full scans performed.
    pub scans: u64,
    /// Total entries touched by full scans — the E4 cost metric.
    pub entries_scanned: u64,
}

impl WeakKeyTable {
    /// Creates a table with `size` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(heap: &mut Heap, size: usize, hash: HashFn) -> WeakKeyTable {
        assert!(size > 0, "table size must be positive");
        let v = heap.make_vector(size, Value::NIL);
        WeakKeyTable {
            buckets: heap.root(v),
            size,
            hash,
            entries: 0,
            scans: 0,
            entries_scanned: 0,
        }
    }

    fn bucket_of(&self, heap: &Heap, key: Value) -> usize {
        ((self.hash)(heap, key) % self.size as u64) as usize
    }

    /// Inserts (or returns the existing value of) `key` — same interface
    /// as Figure 1's access procedure, minus the shaded clean-up.
    pub fn access(&mut self, heap: &mut Heap, key: Value, value: Value) -> Value {
        let h = self.bucket_of(heap, key);
        let v = self.buckets.get();
        let bucket = heap.vector_ref(v, h);
        let a = assq(heap, key, bucket);
        if a.is_truthy() {
            heap.cdr(a)
        } else {
            let a = heap.weak_cons(key, value);
            let extended = heap.cons(a, bucket);
            heap.vector_set(self.buckets.get(), h, extended);
            self.entries += 1;
            value
        }
    }

    /// Looks up `key` without inserting.
    pub fn get(&mut self, heap: &mut Heap, key: Value) -> Option<Value> {
        let h = self.bucket_of(heap, key);
        let bucket = heap.vector_ref(self.buckets.get(), h);
        let a = assq(heap, key, bucket);
        a.is_truthy().then(|| heap.cdr(a))
    }

    /// Number of entries physically in the table, dead ones included —
    /// the leak metric for E1.
    pub fn physical_len(&self) -> usize {
        self.entries
    }

    /// The periodic full-table scan: walks *every* bucket and every entry,
    /// removing associations whose weak key broke. Returns the number
    /// removed; [`Self::entries_scanned`] accumulates the touched count.
    pub fn scrub_full_scan(&mut self, heap: &mut Heap) -> usize {
        self.scans += 1;
        let mut removed = 0;
        let v = self.buckets.get();
        for h in 0..self.size {
            let mut kept = Vec::new();
            let mut cur = heap.vector_ref(v, h);
            while !cur.is_nil() {
                let entry = heap.car(cur);
                self.entries_scanned += 1;
                if heap.car(entry).is_false() {
                    removed += 1;
                } else {
                    kept.push(entry);
                }
                cur = heap.cdr(cur);
            }
            let mut rebuilt = Value::NIL;
            for &e in kept.iter().rev() {
                rebuilt = heap.cons(e, rebuilt);
            }
            let v = self.buckets.get();
            heap.vector_set(v, h, rebuilt);
        }
        self.entries -= removed;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::super::content_hash;
    use super::*;

    #[test]
    fn behaves_like_a_table_for_live_keys() {
        let mut heap = Heap::default();
        let mut t = WeakKeyTable::new(&mut heap, 8, content_hash);
        let k = heap.make_string("k");
        let kr = heap.root(k);
        assert_eq!(t.access(&mut heap, k, Value::fixnum(1)), Value::fixnum(1));
        assert_eq!(
            t.access(&mut heap, kr.get(), Value::fixnum(2)),
            Value::fixnum(1)
        );
        assert_eq!(t.get(&mut heap, kr.get()), Some(Value::fixnum(1)));
    }

    #[test]
    fn dead_entries_linger_until_the_full_scan() {
        let mut heap = Heap::default();
        let mut t = WeakKeyTable::new(&mut heap, 8, content_hash);
        let mut keep = Vec::new();
        for i in 0..40 {
            let k = heap.make_string(&format!("k{i}"));
            if i % 4 == 0 {
                keep.push(heap.root(k));
            }
            t.access(&mut heap, k, Value::fixnum(i));
        }
        heap.collect(heap.config().max_generation());
        assert_eq!(
            t.physical_len(),
            40,
            "the leak: dead entries still occupy the table"
        );

        let removed = t.scrub_full_scan(&mut heap);
        assert_eq!(removed, 30);
        assert_eq!(t.physical_len(), 10);
        assert_eq!(
            t.entries_scanned, 40,
            "the scan touched EVERY entry, dead or not"
        );
        for (j, r) in keep.iter().enumerate() {
            assert_eq!(t.get(&mut heap, r.get()), Some(Value::fixnum(4 * j as i64)));
        }
        heap.verify().unwrap();
    }

    #[test]
    fn scan_cost_scales_with_table_size_not_death_count() {
        let mut heap = Heap::default();
        let mut t = WeakKeyTable::new(&mut heap, 16, content_hash);
        let mut keep = Vec::new();
        for i in 0..500 {
            let k = heap.make_string(&format!("k{i}"));
            keep.push(heap.root(k));
            t.access(&mut heap, k, Value::fixnum(i));
        }
        keep.pop(); // kill exactly one key
        heap.collect(heap.config().max_generation());
        let removed = t.scrub_full_scan(&mut heap);
        assert_eq!(removed, 1);
        assert_eq!(
            t.entries_scanned, 500,
            "touched 500 entries to reclaim 1 — the E4 contrast"
        );
    }
}
