//! Figure 1 of the paper: the guarded hash table.
//!
//! ```scheme
//! (define make-guarded-hash-table
//!   (lambda (hash size)
//!     (let ([g (make-guardian)] [v (make-vector size '())])
//!       (lambda (key value)
//!         (let loop ([z (g)])                       ; ┐ shaded: clean-up
//!           (when z                                 ; │ of entries whose
//!             (let ([h (hash z size)])              ; │ keys were proven
//!               (let ([bucket (vector-ref v h)])    ; │ inaccessible
//!                 (vector-set! v h
//!                   (remq (assq z bucket) bucket)) ; │
//!                 (loop (g))))))                    ; ┘
//!         (let ([h (hash key size)])
//!           (let ([bucket (vector-ref v h)])
//!             (let ([a (assq key bucket)])
//!               (if a
//!                   (cdr a)
//!                   (let ([a (weak-cons key value)])
//!                     (vector-set! v h (cons a bucket))
//!                     value)))))))))
//! ```
//!
//! Each key/value association is a **weak pair**, so the table does not
//! keep keys alive; each key is also **registered with the guardian**, so
//! after the key dies the (resurrected) key comes back through the
//! guardian, where its hash still identifies the bucket and `assq` still
//! finds its weak pair — because the weak pass runs after the guardian
//! pass and therefore did *not* break the pointer. Support for removal is
//! "entirely contained within the shaded areas": deleting it yields the
//! plain (leaky) table, which is exactly what
//! [`weak_table::WeakKeyTable`](super::weak_table::WeakKeyTable) measures
//! against.

use crate::lists::{assq, remq};
use guardians_gc::{Guardian, Heap, Rooted, Value};

/// A hash function for table keys; must be stable across collections
/// (content-based), e.g. [`content_hash`](super::content_hash).
pub type HashFn = fn(&Heap, Value) -> u64;

/// A guarded hash table (Figure 1).
#[derive(Debug)]
pub struct GuardedHashTable {
    buckets: Rooted,
    size: usize,
    guardian: Guardian,
    hash: HashFn,
    len: usize,
    /// Dead-key entries removed so far — the "clean-up actions actually
    /// performed" that mutator overhead is proportional to.
    pub removals: u64,
}

impl GuardedHashTable {
    /// `(make-guarded-hash-table hash size)`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(heap: &mut Heap, size: usize, hash: HashFn) -> GuardedHashTable {
        assert!(size > 0, "table size must be positive");
        let v = heap.make_vector(size, Value::NIL);
        GuardedHashTable {
            buckets: heap.root(v),
            size,
            guardian: heap.make_guardian(),
            hash,
            len: 0,
            removals: 0,
        }
    }

    fn bucket_of(&self, heap: &Heap, key: Value) -> usize {
        ((self.hash)(heap, key) % self.size as u64) as usize
    }

    /// The shaded clean-up loop: drains the guardian and removes each dead
    /// key's association. Called automatically by every access, as in
    /// Figure 1; also callable directly. Returns entries removed.
    pub fn scrub(&mut self, heap: &mut Heap) -> usize {
        let mut removed = 0;
        while let Some(z) = self.guardian.poll(heap) {
            let h = self.bucket_of(heap, z);
            let v = self.buckets.get();
            let bucket = heap.vector_ref(v, h);
            let a = assq(heap, z, bucket);
            if a.is_truthy() {
                let pruned = remq(heap, a, bucket);
                heap.vector_set(v, h, pruned);
                self.len -= 1;
                self.removals += 1;
                removed += 1;
            }
        }
        removed
    }

    /// Figure 1's access procedure: "accepts a key and a value. If the key
    /// is already present in the table, the existing value is returned;
    /// otherwise, the key is added to the table along with the value
    /// provided."
    pub fn access(&mut self, heap: &mut Heap, key: Value, value: Value) -> Value {
        self.scrub(heap);
        let h = self.bucket_of(heap, key);
        let v = self.buckets.get();
        let bucket = heap.vector_ref(v, h);
        let a = assq(heap, key, bucket);
        if a.is_truthy() {
            heap.cdr(a)
        } else {
            let a = heap.weak_cons(key, value);
            let extended = heap.cons(a, bucket);
            let v = self.buckets.get(); // re-read: conses cannot collect, but stay uniform
            heap.vector_set(v, h, extended);
            self.guardian.register(heap, key);
            self.len += 1;
            value
        }
    }

    /// Looks up `key` without inserting.
    pub fn get(&mut self, heap: &mut Heap, key: Value) -> Option<Value> {
        self.scrub(heap);
        let h = self.bucket_of(heap, key);
        let bucket = heap.vector_ref(self.buckets.get(), h);
        let a = assq(heap, key, bucket);
        a.is_truthy().then(|| heap.cdr(a))
    }

    /// Current number of associations (dead-but-unscrubbed keys included
    /// until the next access).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::super::content_hash;
    use super::*;

    #[test]
    fn access_inserts_then_returns_existing() {
        let mut heap = Heap::default();
        let mut t = GuardedHashTable::new(&mut heap, 16, content_hash);
        let k = heap.make_string("key");
        let kr = heap.root(k);
        let v1 = t.access(&mut heap, k, Value::fixnum(1));
        assert_eq!(v1, Value::fixnum(1));
        let v2 = t.access(&mut heap, kr.get(), Value::fixnum(2));
        assert_eq!(v2, Value::fixnum(1), "existing value wins, as in Figure 1");
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn dead_keys_entries_are_removed_on_next_access() {
        let mut heap = Heap::default();
        let mut t = GuardedHashTable::new(&mut heap, 16, content_hash);
        let mut keep = Vec::new();
        for i in 0..50 {
            let k = heap.make_string(&format!("key-{i}"));
            if i % 2 == 0 {
                keep.push(heap.root(k));
            }
            t.access(&mut heap, k, Value::fixnum(i));
        }
        assert_eq!(t.len(), 50);
        heap.collect(heap.config().max_generation());
        // One access triggers the scrub of all 25 dead entries.
        let probe = keep[0].get();
        assert_eq!(t.get(&mut heap, probe), Some(Value::fixnum(0)));
        assert_eq!(t.len(), 25);
        assert_eq!(t.removals, 25);
        // Live keys all still present.
        for (j, r) in keep.iter().enumerate() {
            assert_eq!(t.get(&mut heap, r.get()), Some(Value::fixnum(2 * j as i64)));
        }
        heap.verify().unwrap();
    }

    #[test]
    fn table_survives_collections_between_accesses() {
        let mut heap = Heap::default();
        let mut t = GuardedHashTable::new(&mut heap, 4, content_hash);
        let k = heap.make_string("persistent");
        let kr = heap.root(k);
        t.access(&mut heap, k, Value::fixnum(7));
        for g in [0u8, 1, 0, 2, 0, 3] {
            heap.collect(g);
        }
        assert_eq!(t.get(&mut heap, kr.get()), Some(Value::fixnum(7)));
    }

    #[test]
    fn values_do_not_keep_keys_alive() {
        // The key is weakly held even though the value strongly refers to
        // the key (a classic leak shape for naive weak tables).
        let mut heap = Heap::default();
        let mut t = GuardedHashTable::new(&mut heap, 8, content_hash);
        let k = heap.make_string("self");
        let value = heap.cons(k, Value::NIL); // value -> key edge
        t.access(&mut heap, k, value);
        heap.collect(heap.config().max_generation());
        t.scrub(&mut heap);
        // NOTE: because the *bucket* strongly holds the value and the
        // value holds the key, this particular shape keeps the key alive —
        // the paper's design does not claim to break value->key cycles
        // (ephemerons do). Verify the documented behaviour:
        assert_eq!(
            t.len(),
            1,
            "value->key edge keeps the entry (documented non-ephemeron)"
        );
    }

    #[test]
    fn scrub_cost_is_proportional_to_deaths_not_size() {
        let mut heap = Heap::default();
        let mut t = GuardedHashTable::new(&mut heap, 64, content_hash);
        let mut keep = Vec::new();
        for i in 0..1000 {
            let k = heap.make_string(&format!("k{i}"));
            keep.push(heap.root(k));
            t.access(&mut heap, k, Value::fixnum(i));
        }
        // Kill exactly three keys.
        keep.remove(500);
        keep.remove(250);
        keep.remove(100);
        heap.collect(heap.config().max_generation());
        let removed = t.scrub(&mut heap);
        assert_eq!(removed, 3, "exactly the three dead keys were processed");
        assert_eq!(t.len(), 997);
    }
}
