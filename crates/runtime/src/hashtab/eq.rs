//! Eq hash tables — address-hashed, as in the paper's Section 3
//! discussion:
//!
//! > "Eq hash tables permit arbitrary objects to be used as keys with fast
//! > hashing based on the virtual memory address … Since an object may be
//! > moved during a garbage collection, however, its address and hence its
//! > hash value may change. This problem is often solved by rehashing such
//! > tables after a collection or, more commonly, after a lookup has
//! > failed following a collection. In a generation-based collector much
//! > of this work is wasted for keys that are no longer forwarded during
//! > every collection…"
//!
//! [`EqHashTable`] implements the classic rehash-after-collection policy;
//! [`TransportEqHashTable`] implements the paper's fix — rehash only the
//! entries a conservative [`TransportGuardian`] reports as (possibly)
//! moved. Both count the entries they rehash so experiment E6 can compare
//! the work directly.

use crate::transport::TransportGuardian;
use guardians_gc::{Heap, Rooted, Value};

fn addr_hash(heap: &Heap, key: Value, size: usize) -> usize {
    match heap.address_of(key) {
        Some(a) => (a % size as u64) as usize,
        None => (key.raw() % size as u64) as usize,
    }
}

/// An eq (pointer-identity) hash table that lazily rehashes the whole
/// table at the first access after any collection.
#[derive(Debug)]
pub struct EqHashTable {
    /// Bucket vector; each bucket is an assq list of `(key . value)`.
    buckets: Rooted,
    size: usize,
    len: usize,
    stamp: u64,
    /// Full rehashes performed.
    pub rehash_count: u64,
    /// Total entries moved between buckets by rehashing — the E6 metric.
    pub entries_rehashed: u64,
}

impl EqHashTable {
    /// Creates a table with `size` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(heap: &mut Heap, size: usize) -> EqHashTable {
        assert!(size > 0, "table size must be positive");
        let v = heap.make_vector(size, Value::NIL);
        EqHashTable {
            buckets: heap.root(v),
            size,
            len: 0,
            stamp: heap.collection_count(),
            rehash_count: 0,
            entries_rehashed: 0,
        }
    }

    fn maybe_rehash(&mut self, heap: &mut Heap) {
        if heap.collection_count() == self.stamp {
            return;
        }
        // Collect every entry, then re-bucket by current address.
        let v = self.buckets.get();
        let mut entries = Vec::new();
        for i in 0..self.size {
            let mut cur = heap.vector_ref(v, i);
            while !cur.is_nil() {
                entries.push(heap.car(cur));
                cur = heap.cdr(cur);
            }
            heap.vector_set(v, i, Value::NIL);
        }
        for entry in entries {
            let key = heap.car(entry);
            let b = addr_hash(heap, key, self.size);
            let v = self.buckets.get();
            let bucket = heap.vector_ref(v, b);
            let cell = heap.cons(entry, bucket);
            heap.vector_set(v, b, cell);
            self.entries_rehashed += 1;
        }
        self.rehash_count += 1;
        self.stamp = heap.collection_count();
    }

    /// Inserts or updates; returns the previous value if any.
    pub fn insert(&mut self, heap: &mut Heap, key: Value, value: Value) -> Option<Value> {
        self.maybe_rehash(heap);
        let b = addr_hash(heap, key, self.size);
        let v = self.buckets.get();
        let bucket = heap.vector_ref(v, b);
        let a = crate::lists::assq(heap, key, bucket);
        if a.is_truthy() {
            let old = heap.cdr(a);
            heap.set_cdr(a, value);
            return Some(old);
        }
        let entry = heap.cons(key, value);
        let cell = heap.cons(entry, bucket);
        heap.vector_set(self.buckets.get(), b, cell);
        self.len += 1;
        None
    }

    /// Looks up by pointer identity.
    pub fn get(&mut self, heap: &mut Heap, key: Value) -> Option<Value> {
        self.maybe_rehash(heap);
        let b = addr_hash(heap, key, self.size);
        let bucket = heap.vector_ref(self.buckets.get(), b);
        let a = crate::lists::assq(heap, key, bucket);
        a.is_truthy().then(|| heap.cdr(a))
    }

    /// Number of associations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An eq hash table that rehashes **only the entries whose keys a
/// transport guardian reports as (conservatively) moved** — the paper's
/// generation-friendly alternative.
#[derive(Debug)]
pub struct TransportEqHashTable {
    /// Bucket vector; each bucket is a list of entry vectors
    /// `[key, value, bucket-index]`.
    buckets: Rooted,
    size: usize,
    len: usize,
    tg: TransportGuardian,
    /// Entries re-bucketed — compare with [`EqHashTable::entries_rehashed`].
    pub entries_rehashed: u64,
}

impl TransportEqHashTable {
    /// Creates a table with `size` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(heap: &mut Heap, size: usize) -> TransportEqHashTable {
        assert!(size > 0, "table size must be positive");
        let v = heap.make_vector(size, Value::NIL);
        TransportEqHashTable {
            buckets: heap.root(v),
            size,
            len: 0,
            tg: TransportGuardian::new(heap),
            entries_rehashed: 0,
        }
    }

    /// Re-buckets the entries whose keys the transport guardian reports.
    fn fix_moved(&mut self, heap: &mut Heap) {
        while let Some(entry) = self.tg.poll(heap) {
            let old_b = heap.vector_ref(entry, 2).as_fixnum() as usize;
            let key = heap.vector_ref(entry, 0);
            let new_b = addr_hash(heap, key, self.size);
            self.entries_rehashed += 1;
            if new_b == old_b {
                continue; // conservative report; nothing to do
            }
            let v = self.buckets.get();
            let old_bucket = heap.vector_ref(v, old_b);
            let pruned = crate::lists::remq(heap, entry, old_bucket);
            heap.vector_set(v, old_b, pruned);
            let v = self.buckets.get();
            let new_bucket = heap.vector_ref(v, new_b);
            let cell = heap.cons(entry, new_bucket);
            heap.vector_set(v, new_b, cell);
            heap.vector_set(entry, 2, Value::fixnum(new_b as i64));
        }
    }

    fn find(&self, heap: &Heap, key: Value, b: usize) -> Option<Value> {
        let mut cur = heap.vector_ref(self.buckets.get(), b);
        while !cur.is_nil() {
            let entry = heap.car(cur);
            if heap.vector_ref(entry, 0) == key {
                return Some(entry);
            }
            cur = heap.cdr(cur);
        }
        None
    }

    /// Inserts or updates; returns the previous value if any.
    pub fn insert(&mut self, heap: &mut Heap, key: Value, value: Value) -> Option<Value> {
        self.fix_moved(heap);
        let b = addr_hash(heap, key, self.size);
        if let Some(entry) = self.find(heap, key, b) {
            let old = heap.vector_ref(entry, 1);
            heap.vector_set(entry, 1, value);
            return Some(old);
        }
        let entry = heap.make_vector(3, Value::FALSE);
        heap.vector_set(entry, 0, key);
        heap.vector_set(entry, 1, value);
        heap.vector_set(entry, 2, Value::fixnum(b as i64));
        let v = self.buckets.get();
        let bucket = heap.vector_ref(v, b);
        let cell = heap.cons(entry, bucket);
        heap.vector_set(v, b, cell);
        // Track the ENTRY (it holds key, value, and cached bucket): when
        // the key moves, so does everything reachable with it; the
        // guardian is conservative either way.
        self.tg.register(heap, entry);
        self.len += 1;
        None
    }

    /// Looks up by pointer identity.
    pub fn get(&mut self, heap: &mut Heap, key: Value) -> Option<Value> {
        self.fix_moved(heap);
        let b = addr_hash(heap, key, self.size);
        self.find(heap, key, b).map(|e| heap.vector_ref(e, 1))
    }

    /// Number of associations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_table_survives_moves_by_rehashing() {
        let mut heap = Heap::default();
        let mut t = EqHashTable::new(&mut heap, 16);
        let mut keys = Vec::new();
        for i in 0..100 {
            let k = heap.cons(Value::fixnum(i), Value::NIL);
            keys.push(heap.root(k));
            t.insert(&mut heap, k, Value::fixnum(i * 10));
        }
        heap.collect(0); // every key moves
        for (i, kr) in keys.iter().enumerate() {
            assert_eq!(
                t.get(&mut heap, kr.get()),
                Some(Value::fixnum(i as i64 * 10))
            );
        }
        assert_eq!(t.rehash_count, 1, "one lazy rehash after the collection");
        assert_eq!(t.entries_rehashed, 100, "rehash touched every entry");
    }

    #[test]
    fn eq_table_rehashes_even_when_nothing_moved() {
        // The wasted work the paper points out: keys parked in an old
        // generation don't move during young collections, but the classic
        // policy rehashes the whole table anyway.
        let mut heap = Heap::default();
        let mut t = EqHashTable::new(&mut heap, 16);
        let mut keys = Vec::new();
        for i in 0..50 {
            let k = heap.cons(Value::fixnum(i), Value::NIL);
            keys.push(heap.root(k));
            t.insert(&mut heap, k, Value::fixnum(i));
        }
        heap.collect(0);
        heap.collect(1);
        let _ = t.get(&mut heap, keys[0].get()); // rehash after the moves
        let baseline = t.entries_rehashed;
        heap.collect(0); // nothing in the table moves now
        let _ = t.get(&mut heap, keys[0].get());
        assert_eq!(
            t.entries_rehashed,
            baseline + 50,
            "50 more entries touched for nothing"
        );
    }

    #[test]
    fn transport_table_survives_moves() {
        let mut heap = Heap::default();
        let mut t = TransportEqHashTable::new(&mut heap, 16);
        let mut keys = Vec::new();
        for i in 0..100 {
            let k = heap.cons(Value::fixnum(i), Value::NIL);
            keys.push(heap.root(k));
            t.insert(&mut heap, k, Value::fixnum(i * 10));
        }
        heap.collect(0);
        heap.collect(1);
        for (i, kr) in keys.iter().enumerate() {
            assert_eq!(
                t.get(&mut heap, kr.get()),
                Some(Value::fixnum(i as i64 * 10))
            );
        }
        heap.verify().unwrap();
    }

    #[test]
    fn transport_table_skips_parked_entries() {
        let mut heap = Heap::default();
        let mut t = TransportEqHashTable::new(&mut heap, 16);
        let mut keys = Vec::new();
        for i in 0..50 {
            let k = heap.cons(Value::fixnum(i), Value::NIL);
            keys.push(heap.root(k));
            t.insert(&mut heap, k, Value::fixnum(i));
        }
        // Age everything (entries, keys, markers) into generation 2+.
        heap.collect(0);
        let _ = t.get(&mut heap, keys[0].get());
        heap.collect(1);
        let _ = t.get(&mut heap, keys[0].get());
        heap.collect(1);
        let _ = t.get(&mut heap, keys[0].get());
        let settled = t.entries_rehashed;
        // Young collections now touch nothing in the table.
        for _ in 0..3 {
            heap.collect(0);
            let _ = t.get(&mut heap, keys[7].get());
        }
        assert_eq!(
            t.entries_rehashed, settled,
            "no entry work during young collections once parked — the paper's win"
        );
        for (i, kr) in keys.iter().enumerate() {
            assert_eq!(t.get(&mut heap, kr.get()), Some(Value::fixnum(i as i64)));
        }
    }

    #[test]
    fn insert_updates_existing_entries() {
        let mut heap = Heap::default();
        let mut t = EqHashTable::new(&mut heap, 4);
        let k = heap.cons(Value::NIL, Value::NIL);
        let kr = heap.root(k);
        assert_eq!(t.insert(&mut heap, k, Value::fixnum(1)), None);
        assert_eq!(
            t.insert(&mut heap, kr.get(), Value::fixnum(2)),
            Some(Value::fixnum(1))
        );
        assert_eq!(t.len(), 1);

        let mut tt = TransportEqHashTable::new(&mut heap, 4);
        assert_eq!(tt.insert(&mut heap, kr.get(), Value::fixnum(1)), None);
        assert_eq!(
            tt.insert(&mut heap, kr.get(), Value::fixnum(2)),
            Some(Value::fixnum(1))
        );
        assert_eq!(tt.len(), 1);
    }

    #[test]
    fn fixnum_keys_need_no_rehash() {
        let mut heap = Heap::default();
        let mut t = EqHashTable::new(&mut heap, 8);
        t.insert(&mut heap, Value::fixnum(5), Value::fixnum(50));
        heap.collect(0);
        assert_eq!(t.get(&mut heap, Value::fixnum(5)), Some(Value::fixnum(50)));
    }
}
