//! Printing with shared-structure detection.
//!
//! The paper's Section 1 motivates hash tables with "shared structure
//! detection during the printing of directed acyclic and cyclic graph
//! structures"; this module is that client. Shared and cyclic nodes are
//! printed with R7RS-style datum labels (`#0=`, `#0#`), so cyclic data —
//! which guardians are specifically designed to finalize sanely — prints
//! without looping.

use crate::rtags;
use guardians_gc::{Heap, ObjKind, Value};
use std::collections::HashMap;

/// `write`-style printing: strings escaped, characters in `#\` notation,
/// shared structure labelled.
pub fn write_value(heap: &Heap, v: Value) -> String {
    Printer::new(heap, true).print(v)
}

/// `display`-style printing: strings and characters raw.
pub fn display_value(heap: &Heap, v: Value) -> String {
    Printer::new(heap, false).print(v)
}

struct Printer<'h> {
    heap: &'h Heap,
    write: bool,
    /// address -> number of times encountered during the scan pass.
    seen: HashMap<u64, u32>,
    /// address -> label for multiply-referenced nodes.
    labels: HashMap<u64, usize>,
    emitted: HashMap<u64, bool>,
}

impl<'h> Printer<'h> {
    fn new(heap: &'h Heap, write: bool) -> Printer<'h> {
        Printer {
            heap,
            write,
            seen: HashMap::new(),
            labels: HashMap::new(),
            emitted: HashMap::new(),
        }
    }

    fn print(mut self, v: Value) -> String {
        self.scan(v);
        let shared: Vec<u64> = self
            .seen
            .iter()
            .filter(|(_, &count)| count > 1)
            .map(|(&addr, _)| addr)
            .collect();
        let mut shared = shared;
        shared.sort_unstable();
        for (label, addr) in shared.into_iter().enumerate() {
            self.labels.insert(addr, label);
        }
        let mut out = String::new();
        self.emit(v, &mut out);
        out
    }

    /// First pass: count in-edges of pairs and vectors, stopping at
    /// already-seen nodes (which also terminates on cycles).
    fn scan(&mut self, v: Value) {
        if !v.is_ptr() {
            return;
        }
        let addr = v.addr().raw();
        let count = self.seen.entry(addr).or_insert(0);
        *count += 1;
        if *count > 1 {
            return;
        }
        if self.heap.is_pair(v) {
            self.scan(self.heap.car(v));
            self.scan(self.heap.cdr(v));
        } else if self.heap.is_vector(v) {
            for i in 0..self.heap.vector_len(v) {
                self.scan(self.heap.vector_ref(v, i));
            }
        } else if self.heap.is_box(v) {
            self.scan(self.heap.box_ref(v));
        } else if self.heap.is_record(v) {
            for i in 0..self.heap.record_len(v) {
                self.scan(self.heap.record_ref(v, i));
            }
        }
    }

    fn emit(&mut self, v: Value, out: &mut String) {
        use std::fmt::Write;
        if v.is_ptr() {
            let addr = v.addr().raw();
            if let Some(&label) = self.labels.get(&addr) {
                if *self.emitted.get(&addr).unwrap_or(&false) {
                    let _ = write!(out, "#{label}#");
                    return;
                }
                self.emitted.insert(addr, true);
                let _ = write!(out, "#{label}=");
            }
        }
        if v.is_fixnum() {
            let _ = write!(out, "{}", v.as_fixnum());
            return;
        }
        if let Some(c) = v.as_char() {
            if self.write {
                let _ = match c {
                    ' ' => write!(out, "#\\space"),
                    '\n' => write!(out, "#\\newline"),
                    _ => write!(out, "#\\{c}"),
                };
            } else {
                out.push(c);
            }
            return;
        }
        if !v.is_ptr() {
            out.push_str(match v {
                Value::FALSE => "#f",
                Value::TRUE => "#t",
                Value::NIL => "()",
                Value::EOF => "#<eof>",
                Value::VOID => "#<void>",
                Value::UNBOUND => "#<unbound>",
                _ => "#<immediate>",
            });
            return;
        }
        if self.heap.is_pair(v) {
            self.emit_list(v, out);
            return;
        }
        match self.heap.kind_of(v) {
            Some(ObjKind::String) => {
                let s = self.heap.string_value(v);
                if self.write {
                    let _ = write!(out, "{s:?}");
                } else {
                    out.push_str(&s);
                }
            }
            Some(ObjKind::Symbol) => out.push_str(&self.heap.symbol_name(v)),
            Some(ObjKind::Flonum) => {
                let f = self.heap.flonum_value(v);
                if f.fract() == 0.0 && f.is_finite() {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            }
            Some(ObjKind::Vector) => {
                out.push_str("#(");
                for i in 0..self.heap.vector_len(v) {
                    if i > 0 {
                        out.push(' ');
                    }
                    self.emit(self.heap.vector_ref(v, i), out);
                }
                out.push(')');
            }
            Some(ObjKind::Bytevector) => {
                out.push_str("#vu8(");
                let bytes = self.heap.bytevector_value(v);
                for (i, b) in bytes.iter().enumerate() {
                    if i > 0 {
                        out.push(' ');
                    }
                    let _ = write!(out, "{b}");
                }
                out.push(')');
            }
            Some(ObjKind::Box) => {
                out.push_str("#&");
                self.emit(self.heap.box_ref(v), out);
            }
            Some(ObjKind::Record) => self.emit_record(v, out),
            None => out.push_str("#<unknown>"),
        }
    }

    fn emit_record(&mut self, v: Value, out: &mut String) {
        use std::fmt::Write;
        let desc = self.heap.record_descriptor(v);
        if desc == rtags::port() {
            let _ = write!(out, "#<port {}>", crate::ports::port_path(self.heap, v));
        } else if desc == rtags::guardian() {
            out.push_str("#<guardian>");
        } else if desc == rtags::closure() || desc == rtags::compiled_closure() {
            out.push_str("#<procedure>");
        } else if desc == rtags::primitive() {
            out.push_str("#<primitive>");
        } else if desc == rtags::environment() || desc == rtags::frame() {
            out.push_str("#<environment>");
        } else if desc == rtags::hashtable() {
            out.push_str("#<hash-table>");
        } else {
            out.push_str("#[");
            self.emit(desc, out);
            for i in 0..self.heap.record_len(v) {
                out.push(' ');
                self.emit(self.heap.record_ref(v, i), out);
            }
            out.push(']');
        }
    }

    fn emit_list(&mut self, mut v: Value, out: &mut String) {
        out.push('(');
        let mut first = true;
        loop {
            if !first {
                out.push(' ');
            }
            first = false;
            let car = self.heap.car(v);
            self.emit(car, out);
            let cdr = self.heap.cdr(v);
            if cdr.is_nil() {
                break;
            }
            if cdr.is_pair_ptr() {
                // A shared/cyclic tail must break the list notation.
                let addr = cdr.addr().raw();
                if self.labels.contains_key(&addr) {
                    out.push_str(" . ");
                    self.emit(cdr, out);
                    break;
                }
                v = cdr;
                continue;
            }
            out.push_str(" . ");
            self.emit(cdr, out);
            break;
        }
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::list;

    #[test]
    fn atoms_print() {
        let mut h = Heap::default();
        assert_eq!(write_value(&h, Value::fixnum(42)), "42");
        assert_eq!(write_value(&h, Value::FALSE), "#f");
        assert_eq!(write_value(&h, Value::TRUE), "#t");
        assert_eq!(write_value(&h, Value::NIL), "()");
        assert_eq!(write_value(&h, Value::char('a')), "#\\a");
        assert_eq!(display_value(&h, Value::char('a')), "a");
        let s = h.make_string("hi \"there\"");
        assert_eq!(write_value(&h, s), "\"hi \\\"there\\\"\"");
        assert_eq!(display_value(&h, s), "hi \"there\"");
        let f = h.make_flonum(2.0);
        assert_eq!(write_value(&h, f), "2.0");
    }

    #[test]
    fn lists_print_in_list_notation() {
        let mut h = Heap::default();
        let a = h.make_symbol("a");
        let l = list(&mut h, &[Value::fixnum(1), a, Value::fixnum(3)]);
        assert_eq!(write_value(&h, l), "(1 a 3)");
        let improper = h.cons(Value::fixnum(1), Value::fixnum(2));
        assert_eq!(write_value(&h, improper), "(1 . 2)");
        let v = h.make_vector(2, Value::fixnum(0));
        assert_eq!(write_value(&h, v), "#(0 0)");
        let bv = h.make_bytevector(3, 7);
        assert_eq!(write_value(&h, bv), "#vu8(7 7 7)");
    }

    #[test]
    fn the_papers_pair_prints_as_a_dot_b() {
        let mut h = Heap::default();
        let a = h.make_symbol("a");
        let b = h.make_symbol("b");
        let x = h.cons(a, b);
        assert_eq!(write_value(&h, x), "(a . b)");
    }

    #[test]
    fn cycles_print_with_labels_and_terminate() {
        let mut h = Heap::default();
        let p = h.cons(Value::fixnum(1), Value::NIL);
        h.set_cdr(p, p);
        let s = write_value(&h, p);
        assert_eq!(s, "#0=(1 . #0#)");
    }

    #[test]
    fn shared_substructure_is_labelled() {
        let mut h = Heap::default();
        let shared = h.cons(Value::fixnum(9), Value::NIL);
        let l = list(&mut h, &[shared, shared]);
        let s = write_value(&h, l);
        assert_eq!(s, "(#0=(9) #0#)");
    }

    #[test]
    fn unshared_data_has_no_labels() {
        let mut h = Heap::default();
        let a = h.cons(Value::fixnum(1), Value::NIL);
        let b = h.cons(Value::fixnum(1), Value::NIL);
        let l = list(&mut h, &[a, b]);
        assert_eq!(write_value(&h, l), "((1) (1))");
    }
}
