//! A simulated external memory manager ("the Unix `malloc` and `free`
//! procedures or their equivalent", paper Section 1) with leak accounting.
//!
//! Scheme code that wraps external libraries must free external blocks
//! when the Scheme-side header becomes inaccessible; guardians make that
//! reliable. This arena provides the observable: blocks allocated, blocks
//! freed, and blocks leaked.

use std::collections::HashMap;
use std::fmt;

/// An opaque handle to an externally allocated block.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Errors from the external arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtMemError {
    /// `free` of a block that is not allocated (double free or bogus id).
    BadFree(BlockId),
}

impl fmt::Display for ExtMemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtMemError::BadFree(id) => write!(f, "free of unallocated block {}", id.0),
        }
    }
}

impl std::error::Error for ExtMemError {}

/// The simulated `malloc`/`free` arena.
#[derive(Debug, Default)]
pub struct ExtArena {
    live: HashMap<BlockId, usize>,
    next: u64,
    /// Total blocks ever allocated.
    pub total_allocs: u64,
    /// Total blocks freed.
    pub total_frees: u64,
}

impl ExtArena {
    /// An empty arena.
    pub fn new() -> ExtArena {
        ExtArena::default()
    }

    /// Allocates an external block of `size` bytes.
    pub fn malloc(&mut self, size: usize) -> BlockId {
        let id = BlockId(self.next);
        self.next += 1;
        self.total_allocs += 1;
        self.live.insert(id, size);
        id
    }

    /// Frees a block.
    ///
    /// # Errors
    ///
    /// Returns [`ExtMemError::BadFree`] on double free or unknown id.
    pub fn free(&mut self, id: BlockId) -> Result<(), ExtMemError> {
        self.live.remove(&id).ok_or(ExtMemError::BadFree(id))?;
        self.total_frees += 1;
        Ok(())
    }

    /// Whether a block is currently allocated.
    pub fn is_live(&self, id: BlockId) -> bool {
        self.live.contains_key(&id)
    }

    /// Number of live (not yet freed) blocks — the leak metric.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }

    /// Total bytes currently allocated.
    pub fn live_bytes(&self) -> usize {
        self.live.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_free_accounting() {
        let mut arena = ExtArena::new();
        let a = arena.malloc(100);
        let b = arena.malloc(50);
        assert_eq!(arena.live_blocks(), 2);
        assert_eq!(arena.live_bytes(), 150);
        arena.free(a).unwrap();
        assert_eq!(arena.live_blocks(), 1);
        assert!(!arena.is_live(a));
        assert!(arena.is_live(b));
        assert_eq!(arena.total_allocs, 2);
        assert_eq!(arena.total_frees, 1);
    }

    #[test]
    fn double_free_is_an_error() {
        let mut arena = ExtArena::new();
        let a = arena.malloc(1);
        arena.free(a).unwrap();
        assert_eq!(arena.free(a).unwrap_err(), ExtMemError::BadFree(a));
    }

    #[test]
    fn ids_are_never_reused() {
        let mut arena = ExtArena::new();
        let a = arena.malloc(1);
        arena.free(a).unwrap();
        let b = arena.malloc(1);
        assert_ne!(a, b);
    }
}
