//! Conservative transport guardians (paper Section 3):
//!
//! ```scheme
//! (define make-transport-guardian
//!   (lambda ()
//!     (let ([g (make-guardian)])
//!       (case-lambda
//!         [(x) (g (weak-cons x #f))]
//!         [() (let loop ([m (g)])
//!               (and m (if (car m)
//!                          (begin (g m) (car m))
//!                          (loop (g)))))]))))
//! ```
//!
//! A transport guardian "returns an object when it has been moved
//! (transported) rather than when it has become inaccessible", letting an
//! eq hash table rehash only moved keys. The implementation registers a
//! fresh weak-pair *marker* — guaranteed no older than the object — whose
//! only reference is immediately dropped, so the guardian returns the
//! marker after any collection the marker was subjected to. Because the
//! marker is re-registered each time, it ages along with the object,
//! giving the desired generation-friendly behaviour. The weak car keeps
//! the marker from retaining an otherwise-dead object.
//!
//! It is *conservative*: it "returns all objects that have moved but may
//! also return some objects that have not moved."

use guardians_gc::{Guardian, Heap, Value};

/// A conservative transport guardian.
#[derive(Clone, Debug)]
pub struct TransportGuardian {
    g: Guardian,
}

impl TransportGuardian {
    /// `(make-transport-guardian)`.
    pub fn new(heap: &mut Heap) -> TransportGuardian {
        TransportGuardian {
            g: heap.make_guardian(),
        }
    }

    /// Registers `x` for transport tracking. Note the paper's caveat
    /// inherited here: a registered `#f` is indistinguishable from a dead
    /// marker and will never be reported.
    pub fn register(&self, heap: &mut Heap, x: Value) {
        let marker = heap.weak_cons(x, Value::FALSE);
        self.g.register(heap, marker);
        // The only strong reference to the marker is dropped right here.
    }

    /// Returns an object that may have been transported since its last
    /// report (conservatively), re-registering it for future transports;
    /// `None` when no candidates remain.
    pub fn poll(&self, heap: &mut Heap) -> Option<Value> {
        loop {
            let m = self.g.poll(heap)?;
            let car = heap.car(m);
            if car.is_truthy() {
                // Object still alive: re-register the same marker (it has
                // aged into the target generation) and report the object.
                self.g.register(heap, m);
                // Trace marker: a (conservatively) transported object is
                // being reported, e.g. for an eq-hashtable rehash.
                heap.trace_app_event("transport.moved");
                return Some(car);
            }
            // Weak car broken: the object died; drop the marker and keep
            // looking.
        }
    }

    /// Drains every currently reportable object.
    pub fn drain(&self, heap: &mut Heap) -> Vec<Value> {
        let mut out = Vec::new();
        while let Some(v) = self.poll(heap) {
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_moved_objects() {
        let mut h = Heap::default();
        let tg = TransportGuardian::new(&mut h);
        let x = h.cons(Value::fixnum(1), Value::NIL);
        let r = h.root(x);
        tg.register(&mut h, x);

        let before = h.address_of(r.get()).unwrap();
        h.collect(0); // x moves to generation 1
        assert_ne!(h.address_of(r.get()), Some(before), "object transported");
        let reported = tg.poll(&mut h).expect("transport reported");
        assert_eq!(reported, r.get());
        assert_eq!(tg.poll(&mut h), None);
    }

    #[test]
    fn dead_objects_are_never_reported() {
        let mut h = Heap::default();
        let tg = TransportGuardian::new(&mut h);
        let x = h.cons(Value::fixnum(1), Value::NIL);
        tg.register(&mut h, x);
        h.collect(3);
        assert_eq!(tg.poll(&mut h), None, "dead object silently dropped");
    }

    #[test]
    fn markers_age_with_their_objects() {
        // After the object stops moving (parked in an old generation),
        // young collections stop reporting it — the generation-friendly
        // property the paper designed the re-registration trick for.
        let mut h = Heap::default();
        let tg = TransportGuardian::new(&mut h);
        let x = h.cons(Value::fixnum(1), Value::NIL);
        let r = h.root(x);
        tg.register(&mut h, x);

        h.collect(0);
        assert!(tg.poll(&mut h).is_some(), "moved 0->1");
        assert_eq!(tg.poll(&mut h), None);
        h.collect(1);
        assert!(tg.poll(&mut h).is_some(), "moved 1->2");
        assert_eq!(tg.poll(&mut h), None);

        // Object now rests in generation 2. The *fresh marker pair* from
        // the last re-registration is young, so it may conservatively
        // report once more; after that, young collections must stay quiet.
        h.collect(0);
        let _conservative = tg.drain(&mut h); // allowed, possibly nonempty
        for round in 0..3 {
            h.collect(0);
            assert_eq!(
                tg.poll(&mut h),
                None,
                "round {round}: marker aged with object"
            );
        }
        assert_eq!(h.generation_of(r.get()), Some(2));
    }

    #[test]
    fn reports_once_per_transport_not_per_registration_loss() {
        let mut h = Heap::default();
        let tg = TransportGuardian::new(&mut h);
        let mut roots = Vec::new();
        for i in 0..10 {
            let x = h.cons(Value::fixnum(i), Value::NIL);
            roots.push(h.root(x));
            tg.register(&mut h, x);
        }
        h.collect(0);
        let moved = tg.drain(&mut h);
        assert_eq!(moved.len(), 10, "all ten moved");
        h.verify().unwrap();
    }
}
