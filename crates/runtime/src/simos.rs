//! A simulated operating system: an in-memory file system with a file
//! descriptor table and open-handle accounting.
//!
//! The paper's motivating port example needs observable *external
//! resource* behaviour: open descriptors that are a finite resource
//! ("this can tie up system resources"), and output data that is lost if a
//! port is dropped without being flushed ("may result in data associated
//! with output ports remaining unwritten until the system exits"). `SimOs`
//! provides exactly those observables — a descriptor limit, counts of
//! opens/closes/leaks, and durable file contents — so the finalization
//! experiments can *measure* leaks instead of hand-waving about them.

use std::collections::HashMap;
use std::fmt;

/// A simulated file descriptor.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

/// Errors from the simulated OS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OsError {
    /// The named file does not exist.
    NotFound(String),
    /// The descriptor is closed or was never issued.
    BadFd(Fd),
    /// The open-descriptor limit was reached — the observable consequence
    /// of leaking ports.
    TooManyOpen {
        /// The configured descriptor limit.
        limit: usize,
    },
    /// A read on a write descriptor or vice versa.
    WrongMode(Fd),
}

impl fmt::Display for OsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OsError::NotFound(p) => write!(f, "file not found: {p}"),
            OsError::BadFd(fd) => write!(f, "bad file descriptor: {}", fd.0),
            OsError::TooManyOpen { limit } => {
                write!(f, "too many open files (limit {limit})")
            }
            OsError::WrongMode(fd) => write!(f, "wrong mode for descriptor {}", fd.0),
        }
    }
}

impl std::error::Error for OsError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Read,
    Write,
}

#[derive(Debug)]
struct OpenFile {
    path: String,
    mode: Mode,
    pos: usize,
}

/// Cumulative OS statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OsStats {
    /// Successful opens.
    pub opens: u64,
    /// Closes.
    pub closes: u64,
    /// Opens rejected by the descriptor limit.
    pub rejected_opens: u64,
    /// Bytes written through descriptors.
    pub bytes_written: u64,
    /// Bytes read through descriptors.
    pub bytes_read: u64,
}

/// The simulated OS.
#[derive(Debug)]
pub struct SimOs {
    files: HashMap<String, Vec<u8>>,
    fds: Vec<Option<OpenFile>>,
    limit: usize,
    stats: OsStats,
}

/// Default open-descriptor limit (like a small `ulimit -n`).
pub const DEFAULT_FD_LIMIT: usize = 64;

impl SimOs {
    /// An OS with the default descriptor limit.
    pub fn new() -> SimOs {
        SimOs::with_fd_limit(DEFAULT_FD_LIMIT)
    }

    /// An OS with a custom descriptor limit.
    pub fn with_fd_limit(limit: usize) -> SimOs {
        SimOs {
            files: HashMap::new(),
            fds: Vec::new(),
            limit,
            stats: OsStats::default(),
        }
    }

    /// Creates (or replaces) a file with the given contents.
    pub fn create_file(&mut self, path: &str, contents: &[u8]) {
        self.files.insert(path.to_string(), contents.to_vec());
    }

    /// The durable contents of a file.
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NotFound`] if the file does not exist.
    pub fn file_contents(&self, path: &str) -> Result<&[u8], OsError> {
        self.files
            .get(path)
            .map(Vec::as_slice)
            .ok_or_else(|| OsError::NotFound(path.into()))
    }

    /// Removes a file (for temporary-file finalization scenarios).
    ///
    /// # Errors
    ///
    /// Returns [`OsError::NotFound`] if the file does not exist.
    pub fn delete_file(&mut self, path: &str) -> Result<(), OsError> {
        self.files
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| OsError::NotFound(path.into()))
    }

    /// Whether a file exists.
    pub fn file_exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    fn issue(&mut self, open: OpenFile) -> Result<Fd, OsError> {
        if self.open_count() >= self.limit {
            self.stats.rejected_opens += 1;
            return Err(OsError::TooManyOpen { limit: self.limit });
        }
        self.stats.opens += 1;
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(open);
                return Ok(Fd(i as u32));
            }
        }
        self.fds.push(Some(open));
        Ok(Fd(self.fds.len() as u32 - 1))
    }

    /// Opens an existing file for reading.
    ///
    /// # Errors
    ///
    /// [`OsError::NotFound`] if missing; [`OsError::TooManyOpen`] at the
    /// descriptor limit.
    pub fn open_input(&mut self, path: &str) -> Result<Fd, OsError> {
        if !self.files.contains_key(path) {
            return Err(OsError::NotFound(path.into()));
        }
        self.issue(OpenFile {
            path: path.into(),
            mode: Mode::Read,
            pos: 0,
        })
    }

    /// Creates/truncates a file and opens it for writing.
    ///
    /// # Errors
    ///
    /// [`OsError::TooManyOpen`] at the descriptor limit.
    pub fn open_output(&mut self, path: &str) -> Result<Fd, OsError> {
        let fd = self.issue(OpenFile {
            path: path.into(),
            mode: Mode::Write,
            pos: 0,
        })?;
        self.files.insert(path.into(), Vec::new());
        Ok(fd)
    }

    fn open_file_mut(&mut self, fd: Fd, mode: Mode) -> Result<&mut OpenFile, OsError> {
        let open = self
            .fds
            .get_mut(fd.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(OsError::BadFd(fd))?;
        if open.mode != mode {
            return Err(OsError::WrongMode(fd));
        }
        Ok(open)
    }

    /// Reads up to `buf.len()` bytes; returns the count (0 at EOF).
    ///
    /// # Errors
    ///
    /// [`OsError::BadFd`] / [`OsError::WrongMode`].
    pub fn read(&mut self, fd: Fd, buf: &mut [u8]) -> Result<usize, OsError> {
        let open = self.open_file_mut(fd, Mode::Read)?;
        let path = open.path.clone();
        let pos = open.pos;
        let data = &self.files[&path];
        let n = buf.len().min(data.len().saturating_sub(pos));
        buf[..n].copy_from_slice(&data[pos..pos + n]);
        self.open_file_mut(fd, Mode::Read)?.pos = pos + n;
        self.stats.bytes_read += n as u64;
        Ok(n)
    }

    /// Appends bytes through a write descriptor.
    ///
    /// # Errors
    ///
    /// [`OsError::BadFd`] / [`OsError::WrongMode`].
    pub fn write(&mut self, fd: Fd, bytes: &[u8]) -> Result<(), OsError> {
        let open = self.open_file_mut(fd, Mode::Write)?;
        let path = open.path.clone();
        self.files
            .get_mut(&path)
            .expect("open file exists")
            .extend_from_slice(bytes);
        self.stats.bytes_written += bytes.len() as u64;
        Ok(())
    }

    /// Closes a descriptor.
    ///
    /// # Errors
    ///
    /// [`OsError::BadFd`] if already closed.
    pub fn close(&mut self, fd: Fd) -> Result<(), OsError> {
        let slot = self.fds.get_mut(fd.0 as usize).ok_or(OsError::BadFd(fd))?;
        if slot.take().is_none() {
            return Err(OsError::BadFd(fd));
        }
        self.stats.closes += 1;
        Ok(())
    }

    /// Whether the descriptor is currently open.
    pub fn is_open(&self, fd: Fd) -> bool {
        self.fds.get(fd.0 as usize).is_some_and(Option::is_some)
    }

    /// Number of currently open descriptors — the leak metric.
    pub fn open_count(&self) -> usize {
        self.fds.iter().filter(|s| s.is_some()).count()
    }

    /// The descriptor limit.
    pub fn fd_limit(&self) -> usize {
        self.limit
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &OsStats {
        &self.stats
    }
}

impl Default for SimOs {
    fn default() -> Self {
        SimOs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut os = SimOs::new();
        let fd = os.open_output("/tmp/a").unwrap();
        os.write(fd, b"hello ").unwrap();
        os.write(fd, b"world").unwrap();
        os.close(fd).unwrap();
        assert_eq!(os.file_contents("/tmp/a").unwrap(), b"hello world");

        let fd = os.open_input("/tmp/a").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(os.read(fd, &mut buf).unwrap(), 8);
        assert_eq!(&buf, b"hello wo");
        assert_eq!(os.read(fd, &mut buf).unwrap(), 3);
        assert_eq!(&buf[..3], b"rld");
        assert_eq!(os.read(fd, &mut buf).unwrap(), 0, "EOF");
        os.close(fd).unwrap();
        assert_eq!(os.open_count(), 0);
    }

    #[test]
    fn descriptor_limit_is_enforced() {
        let mut os = SimOs::with_fd_limit(2);
        let a = os.open_output("/a").unwrap();
        let _b = os.open_output("/b").unwrap();
        assert_eq!(
            os.open_output("/c").unwrap_err(),
            OsError::TooManyOpen { limit: 2 }
        );
        assert_eq!(os.stats().rejected_opens, 1);
        os.close(a).unwrap();
        assert!(os.open_output("/c").is_ok(), "closing frees a slot");
    }

    #[test]
    fn descriptors_are_recycled() {
        let mut os = SimOs::new();
        let a = os.open_output("/a").unwrap();
        os.close(a).unwrap();
        let b = os.open_output("/b").unwrap();
        assert_eq!(a, b, "slot reuse");
        assert!(!os.is_open(Fd(99)));
    }

    #[test]
    fn mode_and_fd_errors() {
        let mut os = SimOs::new();
        assert!(matches!(
            os.open_input("/missing"),
            Err(OsError::NotFound(_))
        ));
        let fd = os.open_output("/x").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(os.read(fd, &mut buf).unwrap_err(), OsError::WrongMode(fd));
        os.close(fd).unwrap();
        assert_eq!(os.close(fd).unwrap_err(), OsError::BadFd(fd));
        assert_eq!(os.write(fd, b"x").unwrap_err(), OsError::BadFd(fd));
    }

    #[test]
    fn delete_supports_temp_file_scenarios() {
        let mut os = SimOs::new();
        os.create_file("/tmp/scratch", b"data");
        assert!(os.file_exists("/tmp/scratch"));
        os.delete_file("/tmp/scratch").unwrap();
        assert!(!os.file_exists("/tmp/scratch"));
        assert!(os.delete_file("/tmp/scratch").is_err());
    }
}
