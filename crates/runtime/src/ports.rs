//! Buffered ports over the simulated OS.
//!
//! "Files in Scheme are represented by ports. Ports encapsulate a file
//! identifier, used to perform operating system requests, a buffer
//! containing unread or unwritten data, and various other items of
//! information relating to the file or buffer." (paper, Section 1)
//!
//! A port is a heap [`Record`](guardians_gc::ObjKind::Record) so that the
//! collector (and therefore guardians) manage its lifetime. Reading or
//! writing a buffered character touches only two or three heap words —
//! the property the paper uses to argue that an extra level of
//! indirection (the weak-pointer workaround) is unacceptably expensive
//! for ports.

use crate::rtags;
use crate::simos::{Fd, OsError, SimOs};
use guardians_gc::{Heap, Value};

/// Buffer capacity in bytes.
pub const BUFFER_SIZE: usize = 256;

// Field indices within a port record.
const F_FD: usize = 0;
const F_DIR: usize = 1;
const F_BUF: usize = 2;
const F_INDEX: usize = 3;
const F_LIMIT: usize = 4;
const F_OPEN: usize = 5;
const F_PATH: usize = 6;

const DIR_INPUT: i64 = 0;
const DIR_OUTPUT: i64 = 1;

fn make_port(heap: &mut Heap, fd: Fd, dir: i64, path: &str) -> Value {
    let buf = heap.make_bytevector(BUFFER_SIZE, 0);
    let path_s = heap.make_string(path);
    heap.make_record(
        rtags::port(),
        &[
            Value::fixnum(fd.0 as i64),
            Value::fixnum(dir),
            buf,
            Value::fixnum(0),
            Value::fixnum(0),
            Value::TRUE,
            path_s,
        ],
    )
}

/// Opens an existing file for buffered reading; returns a port.
///
/// # Errors
///
/// Propagates [`OsError`] from the simulated OS.
pub fn open_input_port(heap: &mut Heap, os: &mut SimOs, path: &str) -> Result<Value, OsError> {
    let fd = os.open_input(path)?;
    Ok(make_port(heap, fd, DIR_INPUT, path))
}

/// Creates/truncates a file and opens a buffered output port.
///
/// # Errors
///
/// Propagates [`OsError`] from the simulated OS.
pub fn open_output_port(heap: &mut Heap, os: &mut SimOs, path: &str) -> Result<Value, OsError> {
    let fd = os.open_output(path)?;
    Ok(make_port(heap, fd, DIR_OUTPUT, path))
}

/// Whether `v` is a port.
pub fn is_port(heap: &Heap, v: Value) -> bool {
    heap.is_record(v) && heap.record_descriptor(v) == rtags::port()
}

/// Whether `v` is an input port.
pub fn is_input_port(heap: &Heap, v: Value) -> bool {
    is_port(heap, v) && heap.record_ref(v, F_DIR) == Value::fixnum(DIR_INPUT)
}

/// Whether `v` is an output port.
pub fn is_output_port(heap: &Heap, v: Value) -> bool {
    is_port(heap, v) && heap.record_ref(v, F_DIR) == Value::fixnum(DIR_OUTPUT)
}

/// Whether the port is still open.
pub fn is_open(heap: &Heap, port: Value) -> bool {
    heap.record_ref(port, F_OPEN).is_truthy()
}

/// The port's file descriptor.
pub fn port_fd(heap: &Heap, port: Value) -> Fd {
    Fd(heap.record_ref(port, F_FD).as_fixnum() as u32)
}

/// The path the port was opened on.
pub fn port_path(heap: &Heap, port: Value) -> String {
    heap.string_value(heap.record_ref(port, F_PATH))
}

/// Bytes sitting in an output port's buffer, not yet written to the OS —
/// the data that is *lost* if the port is dropped without a flush.
pub fn unflushed_bytes(heap: &Heap, port: Value) -> usize {
    if is_output_port(heap, port) && is_open(heap, port) {
        heap.record_ref(port, F_INDEX).as_fixnum() as usize
    } else {
        0
    }
}

/// Reads one byte through the buffer; `None` at end of file.
///
/// # Errors
///
/// [`OsError::BadFd`] if the port was closed, plus OS read errors.
pub fn read_byte(heap: &mut Heap, os: &mut SimOs, port: Value) -> Result<Option<u8>, OsError> {
    debug_assert!(is_input_port(heap, port), "read-byte: not an input port");
    let index = heap.record_ref(port, F_INDEX).as_fixnum() as usize;
    let limit = heap.record_ref(port, F_LIMIT).as_fixnum() as usize;
    if index < limit {
        // Fast path: the two or three memory references the paper counts.
        let buf = heap.record_ref(port, F_BUF);
        let byte = heap.bytevector_ref(buf, index);
        heap.record_set(port, F_INDEX, Value::fixnum(index as i64 + 1));
        return Ok(Some(byte));
    }
    if !is_open(heap, port) {
        return Err(OsError::BadFd(port_fd(heap, port)));
    }
    // Refill.
    let mut tmp = [0u8; BUFFER_SIZE];
    let n = os.read(port_fd(heap, port), &mut tmp)?;
    if n == 0 {
        return Ok(None);
    }
    let buf = heap.record_ref(port, F_BUF);
    for (i, b) in tmp[..n].iter().enumerate() {
        heap.bytevector_set(buf, i, *b);
    }
    heap.record_set(port, F_LIMIT, Value::fixnum(n as i64));
    heap.record_set(port, F_INDEX, Value::fixnum(1));
    Ok(Some(tmp[0]))
}

/// Writes one byte through the buffer, flushing when full.
///
/// # Errors
///
/// [`OsError::BadFd`] if the port was closed, plus OS write errors.
pub fn write_byte(heap: &mut Heap, os: &mut SimOs, port: Value, byte: u8) -> Result<(), OsError> {
    debug_assert!(is_output_port(heap, port), "write-byte: not an output port");
    if !is_open(heap, port) {
        return Err(OsError::BadFd(port_fd(heap, port)));
    }
    let index = heap.record_ref(port, F_INDEX).as_fixnum() as usize;
    let buf = heap.record_ref(port, F_BUF);
    heap.bytevector_set(buf, index, byte);
    let index = index + 1;
    heap.record_set(port, F_INDEX, Value::fixnum(index as i64));
    if index == BUFFER_SIZE {
        flush_output_port(heap, os, port)?;
    }
    Ok(())
}

/// Writes every byte of `s`.
///
/// # Errors
///
/// As for [`write_byte`].
pub fn write_string(heap: &mut Heap, os: &mut SimOs, port: Value, s: &str) -> Result<(), OsError> {
    for b in s.as_bytes() {
        write_byte(heap, os, port, *b)?;
    }
    Ok(())
}

/// Reads the remainder of the port's data.
///
/// # Errors
///
/// As for [`read_byte`].
pub fn read_to_end(heap: &mut Heap, os: &mut SimOs, port: Value) -> Result<Vec<u8>, OsError> {
    let mut out = Vec::new();
    while let Some(b) = read_byte(heap, os, port)? {
        out.push(b);
    }
    Ok(out)
}

/// Flushes an output port's buffer to the OS.
///
/// # Errors
///
/// OS write errors.
pub fn flush_output_port(heap: &mut Heap, os: &mut SimOs, port: Value) -> Result<(), OsError> {
    debug_assert!(is_output_port(heap, port), "flush: not an output port");
    let index = heap.record_ref(port, F_INDEX).as_fixnum() as usize;
    if index == 0 {
        return Ok(());
    }
    let buf = heap.record_ref(port, F_BUF);
    let bytes = heap.bytevector_value(buf);
    os.write(port_fd(heap, port), &bytes[..index])?;
    heap.record_set(port, F_INDEX, Value::fixnum(0));
    Ok(())
}

/// Closes a port, flushing output first. Closing twice is an error, as in
/// the OS; callers that may race with finalization check [`is_open`].
///
/// # Errors
///
/// OS close errors.
pub fn close_port(heap: &mut Heap, os: &mut SimOs, port: Value) -> Result<(), OsError> {
    if is_output_port(heap, port) {
        flush_output_port(heap, os, port)?;
    }
    os.close(port_fd(heap, port))?;
    heap.record_set(port, F_OPEN, Value::FALSE);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_write_and_read() {
        let mut h = Heap::default();
        let mut os = SimOs::new();
        let out = open_output_port(&mut h, &mut os, "/f").unwrap();
        write_string(&mut h, &mut os, out, "hello, ports").unwrap();
        // Data is buffered, not yet durable.
        assert_eq!(os.file_contents("/f").unwrap(), b"");
        assert_eq!(unflushed_bytes(&h, out), 12);
        close_port(&mut h, &mut os, out).unwrap();
        assert_eq!(os.file_contents("/f").unwrap(), b"hello, ports");
        assert_eq!(os.open_count(), 0);

        let inp = open_input_port(&mut h, &mut os, "/f").unwrap();
        assert!(is_input_port(&h, inp) && !is_output_port(&h, inp));
        let data = read_to_end(&mut h, &mut os, inp).unwrap();
        assert_eq!(data, b"hello, ports");
        assert_eq!(
            read_byte(&mut h, &mut os, inp).unwrap(),
            None,
            "stays at EOF"
        );
        close_port(&mut h, &mut os, inp).unwrap();
    }

    #[test]
    fn buffer_flushes_automatically_when_full() {
        let mut h = Heap::default();
        let mut os = SimOs::new();
        let out = open_output_port(&mut h, &mut os, "/big").unwrap();
        for i in 0..(BUFFER_SIZE + 10) {
            write_byte(&mut h, &mut os, out, (i % 251) as u8).unwrap();
        }
        assert_eq!(
            os.file_contents("/big").unwrap().len(),
            BUFFER_SIZE,
            "one full buffer"
        );
        assert_eq!(unflushed_bytes(&h, out), 10);
        close_port(&mut h, &mut os, out).unwrap();
        assert_eq!(os.file_contents("/big").unwrap().len(), BUFFER_SIZE + 10);
    }

    #[test]
    fn large_reads_cross_buffer_refills() {
        let mut h = Heap::default();
        let mut os = SimOs::new();
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        os.create_file("/data", &data);
        let inp = open_input_port(&mut h, &mut os, "/data").unwrap();
        assert_eq!(read_to_end(&mut h, &mut os, inp).unwrap(), data);
    }

    #[test]
    fn ports_survive_collection() {
        let mut h = Heap::default();
        let mut os = SimOs::new();
        os.create_file("/data", b"abcdef");
        let inp = open_input_port(&mut h, &mut os, "/data").unwrap();
        assert_eq!(read_byte(&mut h, &mut os, inp).unwrap(), Some(b'a'));
        let r = h.root(inp);
        h.collect(0);
        h.verify().unwrap();
        let inp = r.get();
        assert!(is_port(&h, inp));
        assert_eq!(port_path(&h, inp), "/data");
        assert_eq!(
            read_byte(&mut h, &mut os, inp).unwrap(),
            Some(b'b'),
            "buffer state moved"
        );
    }

    #[test]
    fn closed_port_rejects_io() {
        let mut h = Heap::default();
        let mut os = SimOs::new();
        let out = open_output_port(&mut h, &mut os, "/x").unwrap();
        close_port(&mut h, &mut os, out).unwrap();
        assert!(!is_open(&h, out));
        assert!(write_byte(&mut h, &mut os, out, 1).is_err());
    }
}
