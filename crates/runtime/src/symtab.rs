//! Symbol interning.
//!
//! [`SymbolTable`] is the classic permanent oblist. [`WeakSymbolTable`]
//! implements the Friedman–Wise refinement the paper mentions ("Chez
//! Scheme also supports the elimination of unnecessary oblist entries"):
//! interned-but-unreferenced symbols are collected, and their table
//! entries are pruned by a guardian — the oblist as a client of the very
//! mechanism this reproduction builds.

use guardians_gc::{Guardian, Heap, Rooted, Value};
use std::collections::HashMap;

/// A permanent symbol table: interned symbols live forever.
#[derive(Debug, Default)]
pub struct SymbolTable {
    symbols: HashMap<String, Rooted>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Returns the unique symbol for `name`, creating it on first use.
    pub fn intern(&mut self, heap: &mut Heap, name: &str) -> Value {
        if let Some(r) = self.symbols.get(name) {
            return r.get();
        }
        let sym = heap.make_symbol(name);
        self.symbols.insert(name.to_string(), heap.root(sym));
        sym
    }

    /// Whether `name` is interned.
    pub fn contains(&self, name: &str) -> bool {
        self.symbols.contains_key(name)
    }

    /// The symbol's global value cell — a one-slot box stored in the
    /// symbol's extra slot — created on demand holding `UNBOUND`. Cells
    /// are created at most once per symbol and never replaced, which is
    /// what makes per-site inline caches of the cell sound: a cached cell
    /// handle stays valid for the lifetime of the heap.
    pub fn global_cell(heap: &mut Heap, sym: Value) -> Value {
        let extra = heap.symbol_extra(sym);
        if heap.is_box(extra) {
            return extra;
        }
        let cell = heap.make_box(Value::UNBOUND);
        heap.set_symbol_extra(sym, cell);
        cell
    }

    /// The symbol's global value cell if one has been created.
    pub fn try_global_cell(heap: &Heap, sym: Value) -> Option<Value> {
        let extra = heap.symbol_extra(sym);
        heap.is_box(extra).then_some(extra)
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

/// An oblist whose entries are pruned when their symbols become
/// unreferenced (Friedman–Wise via guardians + weak pairs).
///
/// Buckets hold weak pairs `(symbol . #f)`; each interned symbol is also
/// registered with a guardian, and each intern operation first drains the
/// guardian to prune entries for dead symbols.
#[derive(Debug)]
pub struct WeakSymbolTable {
    buckets: Rooted,
    size: usize,
    guardian: Guardian,
    len: usize,
    /// Entries pruned after their symbols died.
    pub pruned: u64,
}

impl WeakSymbolTable {
    /// Creates a weak oblist with `size` buckets.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(heap: &mut Heap, size: usize) -> WeakSymbolTable {
        assert!(size > 0, "table size must be positive");
        let v = heap.make_vector(size, Value::NIL);
        WeakSymbolTable {
            buckets: heap.root(v),
            size,
            guardian: heap.make_guardian(),
            len: 0,
            pruned: 0,
        }
    }

    fn bucket_of(&self, name: &str) -> usize {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % self.size as u64) as usize
    }

    /// Prunes entries whose symbols died. Called by [`Self::intern`].
    pub fn prune(&mut self, heap: &mut Heap) -> usize {
        let mut n = 0;
        while let Some(sym) = self.guardian.poll(heap) {
            let b = self.bucket_of(&heap.symbol_name(sym));
            let v = self.buckets.get();
            let bucket = heap.vector_ref(v, b);
            // Find the weak pair whose car is this (resurrected) symbol.
            let entry = crate::lists::assq(heap, sym, bucket);
            if entry.is_truthy() {
                let pruned = crate::lists::remq(heap, entry, bucket);
                heap.vector_set(v, b, pruned);
                self.len -= 1;
                self.pruned += 1;
                n += 1;
            }
        }
        n
    }

    /// Returns the unique live symbol for `name`, creating one if the
    /// previous owner was collected.
    pub fn intern(&mut self, heap: &mut Heap, name: &str) -> Value {
        self.prune(heap);
        let b = self.bucket_of(name);
        let bucket = heap.vector_ref(self.buckets.get(), b);
        let mut cur = bucket;
        while !cur.is_nil() {
            let entry = heap.car(cur);
            let sym = heap.car(entry);
            if sym.is_truthy() && heap.symbol_name(sym) == name {
                return sym;
            }
            cur = heap.cdr(cur);
        }
        let sym = heap.make_symbol(name);
        let entry = heap.weak_cons(sym, Value::FALSE);
        let v = self.buckets.get();
        let bucket = heap.vector_ref(v, b);
        let cell = heap.cons(entry, bucket);
        heap.vector_set(v, b, cell);
        self.guardian.register(heap, sym);
        self.len += 1;
        sym
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the oblist is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut heap = Heap::default();
        let mut t = SymbolTable::new();
        let a = t.intern(&mut heap, "lambda");
        let b = t.intern(&mut heap, "lambda");
        assert_eq!(a, b);
        assert_ne!(a, t.intern(&mut heap, "define"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn global_cells_are_created_once_and_survive_collection() {
        let mut heap = Heap::default();
        let mut t = SymbolTable::new();
        let s = t.intern(&mut heap, "x");
        assert!(SymbolTable::try_global_cell(&heap, s).is_none());
        let cell = SymbolTable::global_cell(&mut heap, s);
        assert_eq!(heap.box_ref(cell), Value::UNBOUND);
        heap.box_set(cell, Value::fixnum(7));
        assert_eq!(SymbolTable::global_cell(&mut heap, s), cell, "created once");
        heap.collect(heap.config().max_generation());
        let s2 = t.intern(&mut heap, "x");
        let c2 = SymbolTable::try_global_cell(&heap, s2).expect("cell survives");
        assert_eq!(heap.box_ref(c2), Value::fixnum(7));
        heap.verify().unwrap();
    }

    #[test]
    fn interned_symbols_survive_collection() {
        let mut heap = Heap::default();
        let mut t = SymbolTable::new();
        let a = t.intern(&mut heap, "persistent");
        let _ = a;
        heap.collect(heap.config().max_generation());
        let b = t.intern(&mut heap, "persistent");
        assert_eq!(heap.symbol_name(b), "persistent");
        heap.verify().unwrap();
    }

    #[test]
    fn weak_oblist_prunes_dead_symbols() {
        let mut heap = Heap::default();
        let mut t = WeakSymbolTable::new(&mut heap, 16);
        let kept = t.intern(&mut heap, "kept");
        let kr = heap.root(kept);
        for i in 0..50 {
            let _ = t.intern(&mut heap, &format!("gensym-{i}"));
        }
        assert_eq!(t.len(), 51);
        heap.collect(heap.config().max_generation());
        let again = t.intern(&mut heap, "kept");
        assert_eq!(again, kr.get(), "live symbol identity preserved");
        assert_eq!(t.len(), 1, "50 dead entries pruned");
        assert_eq!(t.pruned, 50);
        heap.verify().unwrap();
    }

    #[test]
    fn weak_oblist_reinterns_after_death() {
        let mut heap = Heap::default();
        let mut t = WeakSymbolTable::new(&mut heap, 8);
        let first = t.intern(&mut heap, "phoenix");
        let name = heap.symbol_name(first);
        heap.collect(heap.config().max_generation());
        let second = t.intern(&mut heap, "phoenix");
        assert_eq!(heap.symbol_name(second), name);
        // A fresh object: the old one died (fresh identity is all we can
        // observe; addresses may coincide after recycling).
        assert_eq!(t.len(), 1);
    }
}
