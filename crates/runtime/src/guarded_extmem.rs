//! Guarded external memory (paper Section 1):
//!
//! > "In order to simplify deallocation of external memory, a Scheme
//! > header can be created for each block of storage, and a clean-up
//! > action associated with the Scheme header could then be used to free
//! > the storage."
//!
//! Each external block gets a heap *header record* holding its id; the
//! header is registered with a guardian **using the block id as the
//! agent** (the Section 5 generalisation) — "something less than the
//! object is needed to perform the finalization", so the header itself
//! need not be preserved.

use crate::extmem::{BlockId, ExtArena, ExtMemError};
use crate::rtags;
use guardians_gc::{Guardian, Heap, Value};

/// Allocates external blocks whose lifetime is tied to heap headers.
#[derive(Debug)]
pub struct GuardedArena {
    /// The underlying malloc/free simulation, exposed for inspection.
    pub arena: ExtArena,
    guardian: Guardian,
    /// Blocks freed by clean-up actions.
    pub auto_freed: u64,
}

impl GuardedArena {
    /// Creates the arena and its guardian.
    pub fn new(heap: &mut Heap) -> GuardedArena {
        GuardedArena {
            arena: ExtArena::new(),
            guardian: heap.make_guardian(),
            auto_freed: 0,
        }
    }

    /// Allocates `size` external bytes and returns the heap header that
    /// owns them. Dropping the header (and collecting) frees the block at
    /// the next [`GuardedArena::free_dropped`].
    pub fn alloc(&mut self, heap: &mut Heap, size: usize) -> Value {
        self.free_dropped(heap)
            .expect("clean-up of well-formed ids cannot fail");
        let id = self.arena.malloc(size);
        let header = heap.make_record(rtags::extblock(), &[Value::fixnum(id.0 as i64)]);
        // Agent = the block id: the header can be discarded entirely.
        self.guardian
            .register_with_agent(heap, header, Value::fixnum(id.0 as i64));
        header
    }

    /// The block id owned by a header.
    pub fn block_of(&self, heap: &Heap, header: Value) -> BlockId {
        debug_assert!(heap.record_descriptor(header) == rtags::extblock());
        BlockId(heap.record_ref(header, 0).as_fixnum() as u64)
    }

    /// Frees every block whose header was proven inaccessible. Returns
    /// how many were freed.
    ///
    /// # Errors
    ///
    /// Propagates [`ExtMemError`] (cannot happen unless blocks were freed
    /// behind the guardian's back).
    pub fn free_dropped(&mut self, heap: &mut Heap) -> Result<usize, ExtMemError> {
        let mut n = 0;
        while let Some(agent) = self.guardian.poll(heap) {
            let id = BlockId(agent.as_fixnum() as u64);
            self.arena.free(id)?;
            self.auto_freed += 1;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_headers_free_their_blocks() {
        let mut heap = Heap::default();
        let mut ga = GuardedArena::new(&mut heap);
        let kept = ga.alloc(&mut heap, 100);
        let kept_root = heap.root(kept);
        let kept_id = ga.block_of(&heap, kept);
        for _ in 0..10 {
            let _ = ga.alloc(&mut heap, 64); // dropped immediately
        }
        assert_eq!(ga.arena.live_blocks(), 11);

        heap.collect(heap.config().max_generation());
        let freed = ga.free_dropped(&mut heap).unwrap();
        assert_eq!(freed, 10);
        assert_eq!(ga.arena.live_blocks(), 1, "only the kept block survives");
        assert!(ga.arena.is_live(kept_id));
        assert_eq!(ga.block_of(&heap, kept_root.get()), kept_id);
        heap.verify().unwrap();
    }

    #[test]
    fn headers_are_not_preserved_only_agents() {
        let mut heap = Heap::default();
        let mut ga = GuardedArena::new(&mut heap);
        let header = ga.alloc(&mut heap, 8);
        let w = heap.weak_cons(header, Value::NIL);
        let wr = heap.root(w);
        heap.collect(heap.config().max_generation());
        ga.free_dropped(&mut heap).unwrap();
        assert_eq!(
            heap.car(wr.get()),
            Value::FALSE,
            "the header itself was reclaimed"
        );
        assert_eq!(ga.arena.live_blocks(), 0);
    }

    #[test]
    fn no_leaks_under_churn() {
        let mut heap = Heap::default();
        let mut ga = GuardedArena::new(&mut heap);
        for round in 0..20 {
            for _ in 0..50 {
                let _ = ga.alloc(&mut heap, 32);
            }
            if round % 3 == 0 {
                heap.collect(heap.config().max_generation());
            }
        }
        heap.collect(heap.config().max_generation());
        ga.free_dropped(&mut heap).unwrap();
        assert_eq!(ga.arena.live_blocks(), 0, "every block eventually freed");
        assert_eq!(ga.arena.total_allocs, 1000);
        assert_eq!(ga.arena.total_frees, 1000);
    }
}
