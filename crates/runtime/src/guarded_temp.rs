//! Temporary files and subprocesses (paper Section 1): "Similar
//! mechanisms can be used to free other external resources, such as
//! temporary files and subprocesses."
//!
//! Both resources follow the external-memory pattern: a heap handle owns
//! the resource; a guardian with a **fixnum agent** (Section 5) performs
//! the clean-up — deleting the temp file or reaping the subprocess —
//! without preserving the handle itself.

use crate::rtags;
use crate::simos::SimOs;
use guardians_gc::{Guardian, Heap, Value};
use std::collections::HashMap;

/// Temp files that delete themselves after their handles are dropped.
#[derive(Debug)]
pub struct GuardedTempFiles {
    guardian: Guardian,
    /// agent id -> path (the clean-up needs only the path, not the handle).
    paths: HashMap<u64, String>,
    next: u64,
    /// Files deleted by clean-up.
    pub deleted: u64,
}

impl GuardedTempFiles {
    /// Creates the temp-file manager.
    pub fn new(heap: &mut Heap) -> GuardedTempFiles {
        GuardedTempFiles {
            guardian: heap.make_guardian(),
            paths: HashMap::new(),
            next: 0,
            deleted: 0,
        }
    }

    /// Creates a temp file with the given contents; returns the heap
    /// handle that owns it. The path is readable via [`Self::path_of`].
    pub fn create(&mut self, heap: &mut Heap, os: &mut SimOs, contents: &[u8]) -> Value {
        self.clean_dropped(heap, os);
        let id = self.next;
        self.next += 1;
        let path = format!("/tmp/guarded-{id}");
        os.create_file(&path, contents);
        self.paths.insert(id, path.clone());
        let path_v = heap.make_string(&path);
        let handle = heap.make_record(rtags::extblock(), &[Value::fixnum(id as i64), path_v]);
        self.guardian
            .register_with_agent(heap, handle, Value::fixnum(id as i64));
        handle
    }

    /// The path a handle owns.
    pub fn path_of(&self, heap: &Heap, handle: Value) -> String {
        heap.string_value(heap.record_ref(handle, 1))
    }

    /// Deletes every temp file whose handle was proven dropped. Returns
    /// how many were deleted.
    pub fn clean_dropped(&mut self, heap: &mut Heap, os: &mut SimOs) -> usize {
        let mut n = 0;
        while let Some(agent) = self.guardian.poll(heap) {
            let id = agent.as_fixnum() as u64;
            if let Some(path) = self.paths.remove(&id) {
                // The file may have been deleted explicitly already.
                let _ = os.delete_file(&path);
                self.deleted += 1;
                n += 1;
            }
        }
        n
    }

    /// Temp files still owned by live handles.
    pub fn live(&self) -> usize {
        self.paths.len()
    }
}

/// A tiny subprocess simulation: spawn/kill with a live count, standing
/// in for the OS process table.
#[derive(Debug, Default)]
pub struct SimProcs {
    live: HashMap<u64, String>,
    next: u64,
    /// Processes reaped (killed).
    pub reaped: u64,
}

impl SimProcs {
    /// An empty process table.
    pub fn new() -> SimProcs {
        SimProcs::default()
    }

    /// Spawns a process; returns its pid.
    pub fn spawn(&mut self, command: &str) -> u64 {
        let pid = self.next;
        self.next += 1;
        self.live.insert(pid, command.to_string());
        pid
    }

    /// Kills a process. Idempotent.
    pub fn kill(&mut self, pid: u64) {
        if self.live.remove(&pid).is_some() {
            self.reaped += 1;
        }
    }

    /// Whether the pid is running.
    pub fn is_running(&self, pid: u64) -> bool {
        self.live.contains_key(&pid)
    }

    /// Number of running processes — the leak metric.
    pub fn running(&self) -> usize {
        self.live.len()
    }
}

/// Subprocess handles whose processes are reaped once dropped.
#[derive(Debug)]
pub struct GuardedProcs {
    guardian: Guardian,
}

impl GuardedProcs {
    /// Creates the subprocess manager.
    pub fn new(heap: &mut Heap) -> GuardedProcs {
        GuardedProcs {
            guardian: heap.make_guardian(),
        }
    }

    /// Spawns a process and returns the owning heap handle.
    pub fn spawn(&mut self, heap: &mut Heap, procs: &mut SimProcs, command: &str) -> Value {
        let pid = procs.spawn(command);
        let cmd_v = heap.make_string(command);
        let handle = heap.make_record(rtags::extblock(), &[Value::fixnum(pid as i64), cmd_v]);
        // Agent = the pid; the handle itself need not be preserved.
        self.guardian
            .register_with_agent(heap, handle, Value::fixnum(pid as i64));
        handle
    }

    /// The pid a handle owns.
    pub fn pid_of(&self, heap: &Heap, handle: Value) -> u64 {
        heap.record_ref(handle, 0).as_fixnum() as u64
    }

    /// Reaps every process whose handle was proven dropped.
    pub fn reap_dropped(&mut self, heap: &mut Heap, procs: &mut SimProcs) -> usize {
        let mut n = 0;
        while let Some(agent) = self.guardian.poll(heap) {
            procs.kill(agent.as_fixnum() as u64);
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_temp_files_are_deleted() {
        let mut heap = Heap::default();
        let mut os = SimOs::new();
        let mut tf = GuardedTempFiles::new(&mut heap);
        let kept = tf.create(&mut heap, &mut os, b"keep me");
        let kept_root = heap.root(kept);
        let kept_path = tf.path_of(&heap, kept);
        for i in 0..10 {
            let _ = tf.create(&mut heap, &mut os, format!("scratch {i}").as_bytes());
        }
        assert_eq!(tf.live(), 11);

        heap.collect(heap.config().max_generation());
        let deleted = tf.clean_dropped(&mut heap, &mut os);
        assert_eq!(deleted, 10);
        assert_eq!(tf.live(), 1);
        assert!(os.file_exists(&kept_path), "kept handle's file survives");
        assert!(!os.file_exists("/tmp/guarded-1"), "dropped file deleted");
        assert_eq!(tf.path_of(&heap, kept_root.get()), kept_path);
        heap.verify().unwrap();
    }

    #[test]
    fn explicit_deletion_does_not_confuse_cleanup() {
        let mut heap = Heap::default();
        let mut os = SimOs::new();
        let mut tf = GuardedTempFiles::new(&mut heap);
        let h = tf.create(&mut heap, &mut os, b"x");
        let path = tf.path_of(&heap, h);
        os.delete_file(&path).unwrap(); // user beat the guardian to it
        heap.collect(heap.config().max_generation());
        let deleted = tf.clean_dropped(&mut heap, &mut os);
        assert_eq!(deleted, 1, "clean-up still retires the entry");
    }

    #[test]
    fn dropped_subprocesses_are_reaped() {
        let mut heap = Heap::default();
        let mut procs = SimProcs::new();
        let mut gp = GuardedProcs::new(&mut heap);
        let daemon = gp.spawn(&mut heap, &mut procs, "daemon --serve");
        let daemon_root = heap.root(daemon);
        for i in 0..5 {
            let _ = gp.spawn(&mut heap, &mut procs, &format!("worker {i}"));
        }
        assert_eq!(procs.running(), 6);

        heap.collect(heap.config().max_generation());
        let reaped = gp.reap_dropped(&mut heap, &mut procs);
        assert_eq!(reaped, 5);
        assert_eq!(procs.running(), 1);
        assert!(procs.is_running(gp.pid_of(&heap, daemon_root.get())));
        heap.verify().unwrap();
    }

    #[test]
    fn kill_is_idempotent_under_double_reap() {
        let mut heap = Heap::default();
        let mut procs = SimProcs::new();
        let mut gp = GuardedProcs::new(&mut heap);
        let h = gp.spawn(&mut heap, &mut procs, "once");
        let pid = gp.pid_of(&heap, h);
        procs.kill(pid); // killed explicitly first
        heap.collect(heap.config().max_generation());
        gp.reap_dropped(&mut heap, &mut procs);
        assert_eq!(procs.reaped, 1, "no double counting");
    }
}
