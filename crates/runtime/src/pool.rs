//! Guarded object pools (paper Section 1):
//!
//! > "Sometimes it is useful to maintain an internal free list of objects
//! > that are expensive to allocate or initialize. Support for
//! > automatically returning such objects to the free list when they would
//! > otherwise be reclaimed can lead to a simpler, more efficient, and
//! > more robust implementation. This might be true, for example, of a set
//! > of large objects (such as a set of bit maps representing graphical
//! > displays) whose structure and/or contents remain fixed once they are
//! > initialized."
//!
//! [`GuardedPool::acquire`] hands out an object and registers it with the
//! pool's guardian; when the client drops every reference, the next
//! acquire recycles it instead of paying the factory cost again. No
//! explicit release call exists — that is the point.

use guardians_gc::{Guardian, Heap, Rooted, Value};

/// A free list of expensive objects, refilled automatically by a guardian.
pub struct GuardedPool {
    guardian: Guardian,
    /// Heap list of recycled objects awaiting reuse.
    free: Rooted,
    factory: Box<dyn FnMut(&mut Heap) -> Value>,
    /// Objects built from scratch.
    pub created: u64,
    /// Objects recycled from the guardian.
    pub recycled: u64,
}

impl GuardedPool {
    /// Creates a pool whose objects are built by `factory`.
    pub fn new(heap: &mut Heap, factory: impl FnMut(&mut Heap) -> Value + 'static) -> GuardedPool {
        GuardedPool {
            guardian: heap.make_guardian(),
            free: heap.root(Value::NIL),
            factory: Box::new(factory),
            created: 0,
            recycled: 0,
        }
    }

    /// Moves every object the guardian has proven dropped onto the free
    /// list. Returns how many were recycled.
    pub fn recycle_dropped(&mut self, heap: &mut Heap) -> usize {
        let mut n = 0;
        while let Some(obj) = self.guardian.poll(heap) {
            let cell = heap.cons(obj, self.free.get());
            self.free.set(cell);
            self.recycled += 1;
            n += 1;
        }
        n
    }

    /// Hands out an object: recycles dropped ones first, pops the free
    /// list if possible, otherwise runs the factory. The object is
    /// (re-)registered so that dropping it returns it to the pool.
    pub fn acquire(&mut self, heap: &mut Heap) -> Value {
        self.recycle_dropped(heap);
        let free = self.free.get();
        let obj = if free.is_nil() {
            self.created += 1;
            (self.factory)(heap)
        } else {
            let obj = heap.car(free);
            let rest = heap.cdr(free);
            self.free.set(rest);
            obj
        };
        self.guardian.register(heap, obj);
        obj
    }

    /// Objects currently waiting on the free list.
    pub fn free_len(&self, heap: &Heap) -> usize {
        crate::lists::length(heap, self.free.get())
    }
}

impl std::fmt::Debug for GuardedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GuardedPool")
            .field("created", &self.created)
            .field("recycled", &self.recycled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitmap_factory(heap: &mut Heap) -> Value {
        // An "expensive" object: a large zeroed bitmap.
        heap.make_bytevector(4096, 0)
    }

    #[test]
    fn dropped_objects_are_recycled() {
        let mut heap = Heap::default();
        let mut pool = GuardedPool::new(&mut heap, bitmap_factory);

        let a = pool.acquire(&mut heap);
        let addr = heap.address_of(a).unwrap();
        // `a` is never rooted, so the collection proves it dropped.
        heap.collect(heap.config().max_generation());

        let b = pool.acquire(&mut heap);
        assert_eq!(pool.created, 1, "second acquire did not re-create");
        assert_eq!(pool.recycled, 1);
        // Same object (moved by the collection, so compare by contents /
        // subsequent identity rather than address).
        assert_ne!(heap.address_of(b), Some(addr), "it did move");
        assert_eq!(heap.bytevector_len(b), 4096);
    }

    #[test]
    fn live_objects_are_not_stolen() {
        let mut heap = Heap::default();
        let mut pool = GuardedPool::new(&mut heap, bitmap_factory);
        let a = pool.acquire(&mut heap);
        let guard = heap.root(a);
        heap.collect(heap.config().max_generation());
        let b = pool.acquire(&mut heap);
        assert_eq!(pool.created, 2, "a is still alive, so b had to be created");
        assert_ne!(guard.get(), b);
        heap.bytevector_set(guard.get(), 0, 1);
        assert_eq!(heap.bytevector_ref(b, 0), 0, "objects are distinct");
    }

    #[test]
    fn pool_cycles_repeatedly() {
        let mut heap = Heap::default();
        let mut pool = GuardedPool::new(&mut heap, bitmap_factory);
        for round in 0..10 {
            let x = pool.acquire(&mut heap);
            heap.bytevector_set(x, 0, round as u8);
            heap.collect(heap.config().max_generation());
        }
        assert_eq!(pool.created, 1, "one object served all ten rounds");
        assert_eq!(pool.recycled, 9);
        heap.verify().unwrap();
    }

    #[test]
    fn multiple_objects_in_flight() {
        let mut heap = Heap::default();
        let mut pool = GuardedPool::new(&mut heap, bitmap_factory);
        let a = pool.acquire(&mut heap);
        let b = pool.acquire(&mut heap);
        let (ra, _rb) = (heap.root(a), heap.root(b));
        assert_eq!(pool.created, 2);
        drop(ra);
        heap.collect(heap.config().max_generation());
        let c = pool.acquire(&mut heap);
        assert_eq!(pool.created, 2, "c reuses a's storage");
        assert_eq!(pool.recycled, 1);
        let _ = c;
    }
}
