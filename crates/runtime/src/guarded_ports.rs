//! The paper's Section 3 guarded-port library, transliterated:
//!
//! ```scheme
//! (define port-guardian (make-guardian))
//! (define close-dropped-ports
//!   (lambda ()
//!     (let ([p (port-guardian)])
//!       (if p (begin (if (output-port? p)
//!                        (begin (flush-output-port p) (close-output-port p))
//!                        (close-input-port p))
//!                    (close-dropped-ports))))))
//! (define guarded-open-input-file
//!   (lambda (pathname)
//!     (close-dropped-ports)
//!     (let ([p (open-input-file pathname)]) (port-guardian p) p)))
//! ...
//! ```
//!
//! "In this implementation, dropped ports are closed whenever an open
//! operation is performed or upon exit from the system."

use crate::ports;
use crate::simos::{OsError, SimOs};
use guardians_gc::{Guardian, Heap, Value};

/// A port factory whose ports are automatically flushed and closed after
/// they become inaccessible.
#[derive(Debug)]
pub struct GuardedPorts {
    guardian: Guardian,
    /// Ports closed by clean-up so far.
    pub dropped_closed: u64,
    /// Bytes rescued by clean-up flushes of dropped output ports.
    pub bytes_rescued: u64,
}

impl GuardedPorts {
    /// Creates the port guardian.
    pub fn new(heap: &mut Heap) -> GuardedPorts {
        GuardedPorts {
            guardian: heap.make_guardian(),
            dropped_closed: 0,
            bytes_rescued: 0,
        }
    }

    /// `guarded-open-input-file`: closes dropped ports, then opens and
    /// registers a new input port.
    ///
    /// # Errors
    ///
    /// Propagates [`OsError`] (including `TooManyOpen` — which guardians
    /// exist to prevent).
    pub fn open_input(
        &mut self,
        heap: &mut Heap,
        os: &mut SimOs,
        path: &str,
    ) -> Result<Value, OsError> {
        self.close_dropped_ports(heap, os)?;
        let p = ports::open_input_port(heap, os, path)?;
        self.guardian.register(heap, p);
        Ok(p)
    }

    /// `guarded-open-output-file`.
    ///
    /// # Errors
    ///
    /// As for [`GuardedPorts::open_input`].
    pub fn open_output(
        &mut self,
        heap: &mut Heap,
        os: &mut SimOs,
        path: &str,
    ) -> Result<Value, OsError> {
        self.close_dropped_ports(heap, os)?;
        let p = ports::open_output_port(heap, os, path)?;
        self.guardian.register(heap, p);
        Ok(p)
    }

    /// `close-dropped-ports`: drains the guardian, flushing and closing
    /// every port proven inaccessible. Returns how many were closed.
    ///
    /// # Errors
    ///
    /// OS errors while flushing/closing.
    pub fn close_dropped_ports(
        &mut self,
        heap: &mut Heap,
        os: &mut SimOs,
    ) -> Result<usize, OsError> {
        let mut closed = 0;
        while let Some(p) = self.guardian.poll(heap) {
            if ports::is_open(heap, p) {
                self.bytes_rescued += ports::unflushed_bytes(heap, p) as u64;
                ports::close_port(heap, os, p)?;
                closed += 1;
                self.dropped_closed += 1;
                // Application-level marker in the GC event trace: a port
                // proven dead was flushed and closed by clean-up.
                heap.trace_app_event("port.finalized-close");
            }
        }
        Ok(closed)
    }

    /// `guarded-exit`: proves every droppable port inaccessible with a
    /// full collection, then closes the dropped ones. (The paper's
    /// `guarded-exit` relies on collections having already happened; an
    /// embedding must force one.)
    ///
    /// # Errors
    ///
    /// OS errors while flushing/closing.
    pub fn exit(&mut self, heap: &mut Heap, os: &mut SimOs) -> Result<usize, OsError> {
        heap.collect(heap.config().max_generation());
        self.close_dropped_ports(heap, os)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_ports_are_flushed_and_closed() {
        let mut h = Heap::default();
        let mut os = SimOs::new();
        let mut gp = GuardedPorts::new(&mut h);

        {
            let p = gp.open_output(&mut h, &mut os, "/log").unwrap();
            ports::write_string(&mut h, &mut os, p, "important data").unwrap();
            // p goes out of scope unclosed — an exception/nonlocal exit in
            // the paper's story.
        }
        assert_eq!(os.open_count(), 1, "leaked so far");
        assert_eq!(
            os.file_contents("/log").unwrap(),
            b"",
            "data still buffered"
        );

        h.collect(h.config().max_generation());
        let closed = gp.close_dropped_ports(&mut h, &mut os).unwrap();
        assert_eq!(closed, 1);
        assert_eq!(os.open_count(), 0, "descriptor reclaimed");
        assert_eq!(
            os.file_contents("/log").unwrap(),
            b"important data",
            "data rescued"
        );
        assert_eq!(gp.bytes_rescued, 14);
    }

    #[test]
    fn open_ports_are_never_closed() {
        let mut h = Heap::default();
        let mut os = SimOs::new();
        let mut gp = GuardedPorts::new(&mut h);
        let p = gp.open_output(&mut h, &mut os, "/keep").unwrap();
        let root = h.root(p);
        h.collect(h.config().max_generation());
        gp.close_dropped_ports(&mut h, &mut os).unwrap();
        assert!(ports::is_open(&h, root.get()), "referenced port stays open");
        assert_eq!(os.open_count(), 1);
    }

    #[test]
    fn guarded_opens_recover_descriptors_under_pressure() {
        // Without guardians this loop would exhaust the descriptor table;
        // with them, each open first reclaims dropped ports.
        let mut h = Heap::default();
        let mut os = SimOs::with_fd_limit(8);
        let mut gp = GuardedPorts::new(&mut h);
        for i in 0..100 {
            // Trigger collections often enough to prove drops.
            if os.open_count() >= 6 {
                h.collect(h.config().max_generation());
            }
            let p = gp
                .open_output(&mut h, &mut os, &format!("/f{i}"))
                .expect("guarded opens never exhaust descriptors");
            ports::write_string(&mut h, &mut os, p, "x").unwrap();
            // dropped immediately
        }
        gp.exit(&mut h, &mut os).unwrap();
        assert_eq!(os.open_count(), 0);
        assert_eq!(os.stats().rejected_opens, 0, "no open ever failed");
    }

    #[test]
    fn exit_closes_everything_droppable() {
        let mut h = Heap::default();
        let mut os = SimOs::new();
        let mut gp = GuardedPorts::new(&mut h);
        for i in 0..5 {
            let p = gp.open_output(&mut h, &mut os, &format!("/e{i}")).unwrap();
            ports::write_string(&mut h, &mut os, p, "bye").unwrap();
        }
        let closed = gp.exit(&mut h, &mut os).unwrap();
        assert_eq!(closed, 5);
        for i in 0..5 {
            assert_eq!(os.file_contents(&format!("/e{i}")).unwrap(), b"bye");
        }
    }

    #[test]
    fn finalized_closes_appear_in_the_event_trace() {
        use guardians_gc::{GcEvent, TraceConfig};
        let mut h = Heap::default();
        let mut os = SimOs::new();
        let mut gp = GuardedPorts::new(&mut h);
        h.enable_tracing(TraceConfig::default());
        for i in 0..3 {
            let p = gp.open_output(&mut h, &mut os, &format!("/t{i}")).unwrap();
            ports::write_string(&mut h, &mut os, p, "x").unwrap();
        }
        let closed = gp.exit(&mut h, &mut os).unwrap();
        assert_eq!(closed, 3);
        let events = h.disable_tracing();
        let marks = events
            .iter()
            .filter(|e| matches!(e.event, GcEvent::App { name } if name == "port.finalized-close"))
            .count();
        assert_eq!(marks, 3, "one marker per clean-up close");
    }
}
