#![warn(missing_docs)]

//! Runtime library for the guardians reproduction: every worked example
//! and application from the paper, built on [`guardians_gc`], plus the
//! simulated substrates (OS, external memory) the examples need.
//!
//! | Paper artifact | Here |
//! |---|---|
//! | Ports; guarded `open-input-file` / `close-dropped-ports` (§1, §3) | [`ports`], [`guarded_ports::GuardedPorts`], over [`simos::SimOs`] |
//! | External memory clean-up (§1) | [`guarded_extmem::GuardedArena`] over [`extmem::ExtArena`] |
//! | Temp files and subprocesses (§1) | [`guarded_temp::GuardedTempFiles`], [`guarded_temp::GuardedProcs`] |
//! | Figure 1: `make-guarded-hash-table` | [`hashtab::guarded::GuardedHashTable`] |
//! | Weak-pairs-only table needing full scans (§1, §2) | [`hashtab::weak_table::WeakKeyTable`] |
//! | Eq tables rehashed after GC; rehash-only-moved (§3) | [`hashtab::eq`] |
//! | Conservative transport guardians (§3) | [`transport::TransportGuardian`] |
//! | Free lists of expensive objects (§1) | [`pool::GuardedPool`] |
//! | Oblist pruning, Friedman–Wise (§2) | [`symtab::WeakSymbolTable`] |
//! | Shared/cyclic structure printing (§1) | [`printer`] |

pub mod extmem;
pub mod guarded_extmem;
pub mod guarded_ports;
pub mod guarded_temp;
pub mod hashtab;
pub mod lists;
pub mod pool;
pub mod ports;
pub mod printer;
pub mod rtags;
pub mod simos;
pub mod symtab;
pub mod transport;

pub use extmem::{BlockId, ExtArena, ExtMemError};
pub use guarded_extmem::GuardedArena;
pub use guarded_ports::GuardedPorts;
pub use guarded_temp::{GuardedProcs, GuardedTempFiles, SimProcs};
pub use hashtab::eq::{EqHashTable, TransportEqHashTable};
pub use hashtab::guarded::GuardedHashTable;
pub use hashtab::weak_table::WeakKeyTable;
pub use pool::GuardedPool;
pub use printer::{display_value, write_value};
pub use simos::{Fd, OsError, OsStats, SimOs};
pub use symtab::{SymbolTable, WeakSymbolTable};
pub use transport::TransportGuardian;
