//! Property test: Figure 1's guarded hash table against a `HashMap`
//! model under random insert/lookup/drop/collect sequences. Live keys
//! must always resolve to the model's value; dead keys' entries must be
//! gone after a full collection plus one scrub.

use guardians_gc::{GcConfig, Heap, Rooted, Value};
use guardians_runtime::hashtab::content_hash;
use guardians_runtime::GuardedHashTable;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(u16),
    Lookup(usize),
    DropKey(usize),
    Collect(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u16>().prop_map(Op::Insert),
        3 => any::<usize>().prop_map(Op::Lookup),
        2 => any::<usize>().prop_map(Op::DropKey),
        1 => (0u8..4).prop_map(Op::Collect),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn guarded_table_matches_a_hashmap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut heap = Heap::new(GcConfig::new());
        let mut table = GuardedHashTable::new(&mut heap, 16, content_hash);
        // Model: name -> value; live roots keep guarded keys alive.
        let mut model: HashMap<String, i64> = HashMap::new();
        let mut live: HashMap<String, Rooted> = HashMap::new();
        let mut next = 0i64;
        let mut dropped = 0usize;

        for op in ops {
            match op {
                Op::Insert(tag) => {
                    let name = format!("k{:04x}", tag % 512);
                    if model.contains_key(&name) {
                        continue; // same content-name would alias content_hash
                    }
                    let key = heap.make_string(&name);
                    let value = next;
                    next += 1;
                    let got = table.access(&mut heap, key, Value::fixnum(value));
                    prop_assert_eq!(got, Value::fixnum(value), "fresh insert returns the value");
                    model.insert(name.clone(), value);
                    live.insert(name, heap.root(key));
                }
                Op::Lookup(pick) => {
                    let mut names: Vec<&String> = live.keys().collect();
                    names.sort();
                    if names.is_empty() { continue; }
                    let name = names[pick % names.len()].clone();
                    let key = live[&name].get();
                    let got = table.get(&mut heap, key);
                    prop_assert_eq!(got, Some(Value::fixnum(model[&name])), "lookup of {}", name);
                }
                Op::DropKey(pick) => {
                    let mut names: Vec<String> = live.keys().cloned().collect();
                    names.sort();
                    if names.is_empty() { continue; }
                    let name = names[pick % names.len()].clone();
                    live.remove(&name);
                    model.remove(&name);
                    dropped += 1;
                }
                Op::Collect(g) => {
                    let g = g.min(heap.config().max_generation());
                    heap.collect(g);
                    heap.verify().expect("valid after collection");
                }
            }
        }

        // Finale: prove every dropped key dead, scrub, and compare.
        heap.collect(heap.config().max_generation());
        heap.verify().expect("valid after final collection");
        table.scrub(&mut heap);
        prop_assert_eq!(table.len(), model.len(), "table size equals live population");
        prop_assert_eq!(table.removals as usize, dropped, "one removal per dropped key");
        for (name, value) in &model {
            let key = live[name].get();
            prop_assert_eq!(table.get(&mut heap, key), Some(Value::fixnum(*value)));
        }
    }
}
