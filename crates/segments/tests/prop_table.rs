//! Property test: the segment table against a simple ownership model
//! under random allocate/free/write sequences.

use guardians_segments::{SegIndex, SegmentTable, Space, SEGMENT_WORDS};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Alloc {
        space: u8,
        gen: u8,
    },
    AllocRun {
        space: u8,
        gen: u8,
        len: u8,
    },
    Free {
        pick: usize,
    },
    Write {
        pick: usize,
        offset: u16,
        value: u64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..3, 0u8..4).prop_map(|(space, gen)| Op::Alloc { space, gen }),
        1 => (0u8..3, 0u8..4, 2u8..5).prop_map(|(space, gen, len)| Op::AllocRun { space, gen, len }),
        3 => any::<usize>().prop_map(|pick| Op::Free { pick }),
        3 => (any::<usize>(), any::<u16>(), any::<u64>())
            .prop_map(|(pick, offset, value)| Op::Write { pick, offset, value }),
    ]
}

fn space_of(code: u8) -> Space {
    match code {
        0 => Space::Pair,
        1 => Space::WeakPair,
        _ => Space::Typed,
    }
}

#[derive(Clone, Debug)]
struct Owned {
    space: Space,
    gen: u8,
    run: usize,
    /// Our mirror of written words: (global offset) -> value.
    writes: HashMap<usize, u64>,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn table_matches_ownership_model(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let mut table = SegmentTable::new();
        let mut owned: HashMap<SegIndex, Owned> = HashMap::new();
        for op in ops {
            match op {
                Op::Alloc { space, gen } => {
                    let space = space_of(space);
                    let seg = table.allocate(space, gen);
                    prop_assert!(!owned.contains_key(&seg), "issued a segment twice");
                    owned.insert(seg, Owned { space, gen, run: 1, writes: HashMap::new() });
                }
                Op::AllocRun { space, gen, len } => {
                    let space = space_of(space);
                    let head = table.allocate_run(space, gen, len as usize);
                    prop_assert!(!owned.contains_key(&head));
                    prop_assert_eq!(table.run_len(head), len as usize);
                    owned.insert(head, Owned { space, gen, run: len as usize, writes: HashMap::new() });
                }
                Op::Free { pick } => {
                    let mut keys: Vec<SegIndex> = owned.keys().copied().collect();
                    keys.sort_unstable();
                    if keys.is_empty() { continue; }
                    let seg = keys[pick % keys.len()];
                    table.free(seg);
                    owned.remove(&seg);
                    prop_assert!(table.try_info(seg).is_none(), "freed segment still has info");
                }
                Op::Write { pick, offset, value } => {
                    let mut keys: Vec<SegIndex> = owned.keys().copied().collect();
                    keys.sort_unstable();
                    if keys.is_empty() { continue; }
                    let seg = keys[pick % keys.len()];
                    let entry = owned.get_mut(&seg).expect("model entry");
                    let span = entry.run * SEGMENT_WORDS;
                    let off = offset as usize % span;
                    let addr = table.base_addr(seg).add(off);
                    table.set_word(addr, value);
                    entry.writes.insert(off, value);
                }
            }
            // Invariants after every step.
            let live: usize = owned.values().map(|o| o.run).sum();
            prop_assert_eq!(table.segments_allocated(), live, "allocation count diverged");
            for (seg, o) in &owned {
                let info = table.info(*seg);
                prop_assert_eq!(info.space, o.space);
                prop_assert_eq!(info.gen_tuple(), (o.gen,), "generation diverged");
            }
        }
        // Every recorded write is still readable.
        for (seg, o) in &owned {
            for (off, value) in &o.writes {
                let addr = table.base_addr(*seg).add(*off);
                prop_assert_eq!(table.word(addr), *value, "written word lost");
            }
        }
    }
}

/// Small extension trait so the proptest can compare generations without
/// exposing internals.
trait GenTuple {
    fn gen_tuple(&self) -> (u8,);
}

impl GenTuple for guardians_segments::SegInfo {
    fn gen_tuple(&self) -> (u8,) {
        (self.generation,)
    }
}
