//! The segment table: owns all segment storage plus the segment
//! information table, hands out (and recycles) segments tagged with a
//! space and generation, and resolves [`WordAddr`]s to storage.

use crate::addr::{SegIndex, WordAddr, SEGMENT_WORDS};
use crate::info::{SegInfo, SegKind, Space};
use crate::seg::{Segment, POISON};

/// Owner of all heap segments and their metadata.
///
/// Segment indices are stable for the lifetime of the table; freed
/// segments keep their storage and are reissued by later allocations (the
/// recycling the paper relies on when from-space segments are returned
/// after a collection).
pub struct SegmentTable {
    segs: Vec<Segment>,
    info: Vec<Option<SegInfo>>,
    free: Vec<SegIndex>,
    allocated: usize,
}

impl SegmentTable {
    /// An empty table with no segments.
    pub fn new() -> Self {
        SegmentTable { segs: Vec::new(), info: Vec::new(), free: Vec::new(), allocated: 0 }
    }

    /// Allocates one segment belonging to `space` / `generation`.
    pub fn allocate(&mut self, space: Space, generation: u8) -> SegIndex {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.segs[idx.index()].fill(0);
                idx
            }
            None => {
                let idx = SegIndex(self.segs.len() as u32);
                self.segs.push(Segment::new());
                self.info.push(None);
                idx
            }
        };
        self.info[idx.index()] = Some(SegInfo::head(space, generation));
        self.allocated += 1;
        idx
    }

    /// Allocates `n` *contiguous* segments (a run) for a large object. The
    /// first is the head, the rest tails. Returns the head index.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate_run(&mut self, space: Space, generation: u8, n: usize) -> SegIndex {
        assert!(n > 0, "empty run requested");
        if n == 1 {
            return self.allocate(space, generation);
        }
        // Contiguity in index space is required, so runs always come from
        // fresh indices at the end of the table; singleton free segments
        // cannot be stitched together.
        let head = SegIndex(self.segs.len() as u32);
        for i in 0..n {
            self.segs.push(Segment::new());
            let info = if i == 0 {
                SegInfo::head(space, generation)
            } else {
                SegInfo::tail(space, generation, head)
            };
            self.info.push(Some(info));
        }
        self.allocated += n;
        head
    }

    /// Returns a segment (single or run head) to the free pool.
    ///
    /// Freeing a run head frees the whole run. In debug builds the storage
    /// is poisoned so stale pointers are detected.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is not currently allocated or is a tail segment.
    pub fn free(&mut self, seg: SegIndex) {
        let info = self.info[seg.index()].expect("freeing unallocated segment");
        assert!(info.is_head(), "cannot free a tail segment directly");
        let run = self.run_len(seg);
        for i in 0..run {
            let idx = SegIndex(seg.0 + i as u32);
            self.info[idx.index()] = None;
            if cfg!(debug_assertions) {
                self.segs[idx.index()].fill(POISON);
            }
            // Tails are only usable as part of their run; recycling them as
            // singles is fine since runs never come from the free pool.
            self.free.push(idx);
        }
        self.allocated -= run;
    }

    /// Number of segments (including tails) in the run headed by `seg`.
    pub fn run_len(&self, seg: SegIndex) -> usize {
        let mut n = 1;
        while let Some(Some(info)) = self.info.get(seg.index() + n) {
            match info.kind {
                SegKind::Tail { head } if head == seg => n += 1,
                _ => break,
            }
        }
        n
    }

    /// Metadata for an allocated segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment is not allocated.
    #[inline]
    pub fn info(&self, seg: SegIndex) -> &SegInfo {
        self.info[seg.index()].as_ref().expect("segment not allocated")
    }

    /// Mutable metadata for an allocated segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment is not allocated.
    #[inline]
    pub fn info_mut(&mut self, seg: SegIndex) -> &mut SegInfo {
        self.info[seg.index()].as_mut().expect("segment not allocated")
    }

    /// Metadata if the segment is allocated, else `None`. Also returns
    /// `None` for indices beyond the table.
    #[inline]
    pub fn try_info(&self, seg: SegIndex) -> Option<&SegInfo> {
        self.info.get(seg.index()).and_then(|i| i.as_ref())
    }

    /// The address of the first word of a segment.
    #[inline]
    pub fn base_addr(&self, seg: SegIndex) -> WordAddr {
        WordAddr::new(seg, 0)
    }

    /// Reads the word at `addr`.
    #[inline]
    pub fn word(&self, addr: WordAddr) -> u64 {
        self.segs[addr.seg().index()].word(addr.offset())
    }

    /// Writes the word at `addr`.
    #[inline]
    pub fn set_word(&mut self, addr: WordAddr, value: u64) {
        self.segs[addr.seg().index()].set_word(addr.offset(), value);
    }

    /// Whether `addr` falls inside an allocated segment.
    pub fn contains(&self, addr: WordAddr) -> bool {
        self.try_info(addr.seg()).is_some()
    }

    /// Iterates over all allocated segments with their metadata.
    pub fn iter(&self) -> impl Iterator<Item = (SegIndex, &SegInfo)> {
        self.info
            .iter()
            .enumerate()
            .filter_map(|(i, info)| info.as_ref().map(|info| (SegIndex(i as u32), info)))
    }

    /// All allocated head segments in `space` whose generation satisfies
    /// `pred`, in index order.
    pub fn heads_in(&self, space: Space, mut pred: impl FnMut(u8) -> bool) -> Vec<SegIndex> {
        self.iter()
            .filter(|(_, info)| info.space == space && info.is_head() && pred(info.generation))
            .map(|(idx, _)| idx)
            .collect()
    }

    /// Number of currently allocated segments (including run tails).
    pub fn segments_allocated(&self) -> usize {
        self.allocated
    }

    /// Number of currently allocated words of capacity.
    pub fn words_allocated(&self) -> usize {
        self.allocated * SEGMENT_WORDS
    }

    /// Total segments ever created (allocated + free pool).
    pub fn segments_total(&self) -> usize {
        self.segs.len()
    }
}

impl Default for SegmentTable {
    fn default() -> Self {
        SegmentTable::new()
    }
}

impl std::fmt::Debug for SegmentTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentTable")
            .field("allocated", &self.allocated)
            .field("total", &self.segs.len())
            .field("free", &self.free.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_tags_space_and_generation() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        let b = t.allocate(Space::WeakPair, 3);
        assert_eq!(t.info(a).space, Space::Pair);
        assert_eq!(t.info(b).space, Space::WeakPair);
        assert_eq!(t.info(b).generation, 3);
        assert_eq!(t.segments_allocated(), 2);
    }

    #[test]
    fn freed_segments_are_recycled() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        t.free(a);
        assert_eq!(t.segments_allocated(), 0);
        let b = t.allocate(Space::Typed, 1);
        assert_eq!(a, b, "storage should be reissued");
        assert_eq!(t.segments_total(), 1);
        // Recycled segments come back zeroed.
        assert_eq!(t.word(t.base_addr(b)), 0);
    }

    #[test]
    fn words_read_back() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        let addr = t.base_addr(a).add(17);
        t.set_word(addr, 0xFEED);
        assert_eq!(t.word(addr), 0xFEED);
    }

    #[test]
    fn runs_are_contiguous_and_freed_together() {
        let mut t = SegmentTable::new();
        let _pad = t.allocate(Space::Pair, 0);
        let head = t.allocate_run(Space::Typed, 2, 3);
        assert_eq!(t.run_len(head), 3);
        assert_eq!(t.segments_allocated(), 4);
        // Words are addressable across the run.
        let far = t.base_addr(head).add(SEGMENT_WORDS + 5);
        t.set_word(far, 99);
        assert_eq!(t.word(far), 99);
        // Tail metadata points back at the head.
        let tail = SegIndex(head.0 + 1);
        assert_eq!(t.info(tail).kind, SegKind::Tail { head });
        t.free(head);
        assert_eq!(t.segments_allocated(), 1);
    }

    #[test]
    fn run_len_stops_at_foreign_tail() {
        let mut t = SegmentTable::new();
        let r1 = t.allocate_run(Space::Typed, 0, 2);
        let r2 = t.allocate_run(Space::Typed, 0, 2);
        assert_eq!(t.run_len(r1), 2);
        assert_eq!(t.run_len(r2), 2);
    }

    #[test]
    fn heads_in_filters_by_space_and_generation() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        let _b = t.allocate(Space::Pair, 2);
        let _c = t.allocate(Space::Typed, 0);
        let young_pairs = t.heads_in(Space::Pair, |g| g == 0);
        assert_eq!(young_pairs, vec![a]);
    }

    #[test]
    fn contains_rejects_freed_and_out_of_range() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        let addr = t.base_addr(a);
        assert!(t.contains(addr));
        t.free(a);
        assert!(!t.contains(addr));
        assert!(!t.contains(WordAddr::new(SegIndex(400), 0)));
    }

    #[test]
    #[should_panic(expected = "freeing unallocated segment")]
    fn double_free_panics() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        t.free(a);
        t.free(a);
    }

    #[test]
    #[should_panic(expected = "tail segment")]
    fn freeing_tail_panics() {
        let mut t = SegmentTable::new();
        let head = t.allocate_run(Space::Typed, 0, 2);
        t.free(SegIndex(head.0 + 1));
    }
}
