//! The segment table: owns all segment storage plus the segment
//! information table, hands out (and recycles) segments tagged with a
//! space and generation, and resolves [`WordAddr`]s to storage.

use crate::addr::{SegIndex, WordAddr, SEGMENT_WORDS};
use crate::info::{SegInfo, Space};
use crate::pool::SegmentPool;
use crate::seg::{Segment, POISON};
use std::sync::Arc;

/// Owner of all heap segments and their metadata.
///
/// Segment indices are stable for the lifetime of the table; freed
/// segments keep their storage and are reissued by later allocations (the
/// recycling the paper relies on when from-space segments are returned
/// after a collection).
pub struct SegmentTable {
    segs: Vec<Segment>,
    info: Vec<Option<SegInfo>>,
    free: Vec<SegIndex>,
    allocated: usize,
    /// Index of dirty segments: exactly the allocated segments whose
    /// `SegInfo::dirty` flag is set (plus possibly-stale entries for
    /// segments freed or cleaned since — consumers re-check the flag).
    /// Lets the remembered-set scan visit dirty segments without walking
    /// the whole table.
    dirty_list: Vec<SegIndex>,
    /// Per-generation segment lists (heads *and* tails), appended on
    /// allocation and drained by the collector's flip so building the
    /// from-space does not walk the whole table. Entries go stale when a
    /// segment is freed or recycled into another generation;
    /// [`SegmentTable::drain_generation`] filters them out.
    by_gen: Vec<Vec<SegIndex>>,
    /// Shared capacity source: when attached, fresh storage comes from the
    /// pool (and all storage goes back on drop) instead of being created
    /// privately. The local `free` list still recycles within the table —
    /// pool traffic happens only on growth and teardown.
    pool: Option<Arc<SegmentPool>>,
    /// Per-table watermark on `allocated` (run tails included): the
    /// zone-level quota that keeps one tenant from draining a shared pool.
    max_segments: Option<usize>,
}

impl SegmentTable {
    /// An empty table with no segments, backed by process-private storage.
    pub fn new() -> Self {
        SegmentTable {
            segs: Vec::new(),
            info: Vec::new(),
            free: Vec::new(),
            allocated: 0,
            dirty_list: Vec::new(),
            by_gen: Vec::new(),
            pool: None,
            max_segments: None,
        }
    }

    /// An empty table drawing fresh storage from `pool`, optionally capped
    /// at `max_segments` allocated segments (the per-zone watermark).
    ///
    /// Allocation behaviour is byte-identical to a private table: fresh
    /// pool storage is zeroed exactly as `Segment::new()` is, indices are
    /// assigned in the same order, and the local free list recycles
    /// identically. Only where the bytes come from — and where they go on
    /// drop — differs.
    pub fn with_pool(pool: Arc<SegmentPool>, max_segments: Option<usize>) -> Self {
        pool.attach();
        let mut table = SegmentTable::new();
        table.pool = Some(pool);
        table.max_segments = max_segments;
        table
    }

    /// Fresh storage for a segment index about to be created: from the
    /// shared pool when attached, else private.
    ///
    /// # Panics
    ///
    /// Panics if an attached pool is at capacity — the same tripwire
    /// discipline as the heap's acquisition budget: infallible allocation
    /// entry points must be preflighted via [`SegmentTable::acquirable`].
    fn fresh_storage(&mut self) -> Segment {
        match &self.pool {
            None => Segment::new(),
            Some(pool) => pool.try_acquire().unwrap_or_else(|| {
                panic!(
                    "shared segment pool exhausted on an infallible allocation path \
                     (preflight with a try_* entry point)"
                )
            }),
        }
    }

    /// Watermark tripwire: about to raise `allocated` by `n`.
    ///
    /// # Panics
    ///
    /// Panics if the table's `max_segments` watermark would be exceeded —
    /// again, infallible paths must be preflighted.
    fn charge_watermark(&self, n: usize) {
        if let Some(max) = self.max_segments {
            assert!(
                self.allocated + n <= max,
                "zone watermark of {max} segments exceeded on an infallible allocation \
                 path (preflight with a try_* entry point)"
            );
        }
    }

    /// Segments this table can still acquire before hitting its watermark
    /// or the shared pool's capacity; `u64::MAX` when neither bounds it.
    ///
    /// Deliberately conservative on the pool side: the local free list is
    /// not credited (multi-segment runs can never use it), so a demand of
    /// `n <= acquirable()` segments is guaranteed not to trip either
    /// tripwire — the soundness contract `Heap::check_budget` relies on.
    /// Under concurrent tenants the pool figure is a snapshot; zones that
    /// need a hard guarantee carry a `max_segments` watermark sized so the
    /// fleet's watermarks sum to at most the pool capacity.
    pub fn acquirable(&self) -> u64 {
        let watermark = self
            .max_segments
            .map_or(u64::MAX, |max| max.saturating_sub(self.allocated) as u64);
        let pool = self.pool.as_ref().map_or(u64::MAX, |p| p.remaining());
        watermark.min(pool)
    }

    /// The shared pool this table draws from, if any.
    pub fn pool(&self) -> Option<&Arc<SegmentPool>> {
        self.pool.as_ref()
    }

    /// The table's `max_segments` watermark, if any.
    pub fn max_segments(&self) -> Option<usize> {
        self.max_segments
    }

    /// Resets the `max_segments` watermark — the zone layer's quota
    /// rebalancing actuator.
    ///
    /// # Panics
    ///
    /// Panics if the new watermark is below the segments already
    /// allocated: a quota the table is already past would make every
    /// earlier `acquirable()` preflight retroactively unsound, so
    /// rebalancers must never shrink below occupancy.
    pub fn set_max_segments(&mut self, max: Option<usize>) {
        if let Some(max) = max {
            assert!(
                self.allocated <= max,
                "cannot set a watermark of {max} segments below the {} already allocated",
                self.allocated
            );
        }
        self.max_segments = max;
    }

    fn note_generation(&mut self, seg: SegIndex, generation: u8) {
        let g = generation as usize;
        if self.by_gen.len() <= g {
            self.by_gen.resize_with(g + 1, Vec::new);
        }
        self.by_gen[g].push(seg);
    }

    /// Allocates one segment belonging to `space` / `generation`.
    pub fn allocate(&mut self, space: Space, generation: u8) -> SegIndex {
        self.charge_watermark(1);
        let idx = match self.free.pop() {
            Some(idx) => {
                self.segs[idx.index()].fill(0);
                idx
            }
            None => {
                let idx = SegIndex(self.segs.len() as u32);
                let storage = self.fresh_storage();
                self.segs.push(storage);
                self.info.push(None);
                idx
            }
        };
        self.info[idx.index()] = Some(SegInfo::head(space, generation));
        self.allocated += 1;
        self.note_generation(idx, generation);
        idx
    }

    /// Allocates `n` *contiguous* segments (a run) for a large object. The
    /// first is the head, the rest tails. Returns the head index.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn allocate_run(&mut self, space: Space, generation: u8, n: usize) -> SegIndex {
        assert!(n > 0, "empty run requested");
        if n == 1 {
            return self.allocate(space, generation);
        }
        // Contiguity in index space is required, so runs always come from
        // fresh indices at the end of the table; singleton free segments
        // cannot be stitched together.
        self.charge_watermark(n);
        let head = SegIndex(self.segs.len() as u32);
        for i in 0..n {
            let idx = SegIndex(head.0 + i as u32);
            let storage = self.fresh_storage();
            self.segs.push(storage);
            let info = if i == 0 {
                let mut info = SegInfo::head(space, generation);
                info.run = n as u32;
                info
            } else {
                SegInfo::tail(space, generation, head)
            };
            self.info.push(Some(info));
            self.note_generation(idx, generation);
        }
        self.allocated += n;
        head
    }

    /// Returns a segment (single or run head) to the free pool.
    ///
    /// Freeing a run head frees the whole run. In debug builds the storage
    /// is poisoned so stale pointers are detected.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is not currently allocated or is a tail segment.
    pub fn free(&mut self, seg: SegIndex) {
        let info = self.info[seg.index()].expect("freeing unallocated segment");
        assert!(info.is_head(), "cannot free a tail segment directly");
        let run = self.run_len(seg);
        for i in 0..run {
            let idx = SegIndex(seg.0 + i as u32);
            self.info[idx.index()] = None;
            if cfg!(debug_assertions) {
                self.segs[idx.index()].fill(POISON);
            }
            // Tails are only usable as part of their run; recycling them as
            // singles is fine since runs never come from the free pool.
            self.free.push(idx);
        }
        self.allocated -= run;
    }

    /// Number of segments (including tails) in the run headed by `seg`.
    /// O(1): the length is stored in the head's [`SegInfo`].
    ///
    /// # Panics
    ///
    /// Panics if `seg` is not an allocated head segment.
    pub fn run_len(&self, seg: SegIndex) -> usize {
        let info = self.info(seg);
        debug_assert!(info.is_head(), "run_len of a tail segment");
        info.run as usize
    }

    /// Metadata for an allocated segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment is not allocated.
    #[inline]
    pub fn info(&self, seg: SegIndex) -> &SegInfo {
        self.info[seg.index()]
            .as_ref()
            .expect("segment not allocated")
    }

    /// Mutable metadata for an allocated segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment is not allocated.
    #[inline]
    pub fn info_mut(&mut self, seg: SegIndex) -> &mut SegInfo {
        self.info[seg.index()]
            .as_mut()
            .expect("segment not allocated")
    }

    /// Metadata if the segment is allocated, else `None`. Also returns
    /// `None` for indices beyond the table.
    #[inline]
    pub fn try_info(&self, seg: SegIndex) -> Option<&SegInfo> {
        self.info.get(seg.index()).and_then(|i| i.as_ref())
    }

    /// The address of the first word of a segment.
    #[inline]
    pub fn base_addr(&self, seg: SegIndex) -> WordAddr {
        WordAddr::new(seg, 0)
    }

    /// Reads the word at `addr`.
    #[inline]
    pub fn word(&self, addr: WordAddr) -> u64 {
        self.segs[addr.seg().index()].word(addr.offset())
    }

    /// Writes the word at `addr`.
    #[inline]
    pub fn set_word(&mut self, addr: WordAddr, value: u64) {
        self.segs[addr.seg().index()].set_word(addr.offset(), value);
    }

    /// The words of one segment, for bulk read-only scanning. For a
    /// multi-segment run, call once per segment of the run.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is beyond the table.
    #[inline]
    pub fn words(&self, seg: SegIndex) -> &[u64; SEGMENT_WORDS] {
        self.segs[seg.index()].words()
    }

    /// The words of one segment, mutably, for batched write-back.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is beyond the table.
    #[inline]
    pub fn words_mut(&mut self, seg: SegIndex) -> &mut [u64; SEGMENT_WORDS] {
        self.segs[seg.index()].words_mut()
    }

    /// The raw base address of a segment's word array, for the parallel
    /// collector's per-worker copy regions. Stays valid until the table is
    /// dropped; see [`Segment::base_ptr`] for the access contract.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is beyond the table.
    #[inline]
    pub fn base_ptr(&self, seg: SegIndex) -> *mut u64 {
        self.segs[seg.index()].base_ptr()
    }

    /// Copies `n` words from `src` to `dst` as bulk word moves, chunked at
    /// segment boundaries so both intra-segment copies and copies between
    /// (or across) multi-segment runs work. Within one segment the regions
    /// may overlap (`copy_within` semantics).
    pub fn copy_words(&mut self, mut src: WordAddr, mut dst: WordAddr, mut n: usize) {
        while n > 0 {
            let chunk = n
                .min(SEGMENT_WORDS - src.offset())
                .min(SEGMENT_WORDS - dst.offset());
            // SAFETY: this is the single raw-pointer contract for the copy
            // hot path. Both ranges lie inside their segments' allocations:
            // `chunk` is clamped to the words remaining in each segment, and
            // indexing `self.segs` bounds-checks the segment indices.
            // `ptr::copy` has memmove semantics, preserving the documented
            // `copy_within` behaviour when source and destination overlap
            // within one segment. No references into the word arrays are
            // live here (base_ptr reads only the segment's pointer field),
            // and `&mut self` rules out concurrent table access on this
            // path; the parallel collector instead calls this under its
            // table lock or on thread-private regions per the
            // [`Segment::base_ptr`] contract.
            unsafe {
                let s = self.segs[src.seg().index()].base_ptr().add(src.offset());
                let d = self.segs[dst.seg().index()].base_ptr().add(dst.offset());
                std::ptr::copy(s, d, chunk);
            }
            src = src.add(chunk);
            dst = dst.add(chunk);
            n -= chunk;
        }
    }

    /// Whether `addr` falls inside an allocated segment.
    pub fn contains(&self, addr: WordAddr) -> bool {
        self.try_info(addr.seg()).is_some()
    }

    // ------------------------------------------------------------------
    // Dirty-segment index
    // ------------------------------------------------------------------

    /// Sets the segment's dirty flag and records it in the dirty index.
    /// Idempotent: an already-dirty segment is not recorded twice.
    ///
    /// # Panics
    ///
    /// Panics if the segment is not allocated.
    #[inline]
    pub fn mark_dirty(&mut self, seg: SegIndex) {
        let info = self.info[seg.index()]
            .as_mut()
            .expect("segment not allocated");
        if !info.dirty {
            info.dirty = true;
            self.dirty_list.push(seg);
        }
    }

    /// Clears the segment's dirty flag. The index entry (if any) goes
    /// stale and is skipped by consumers that re-check the flag.
    ///
    /// # Panics
    ///
    /// Panics if the segment is not allocated.
    #[inline]
    pub fn clear_dirty(&mut self, seg: SegIndex) {
        self.info[seg.index()]
            .as_mut()
            .expect("segment not allocated")
            .dirty = false;
    }

    /// Takes the dirty index. Entries may be stale (freed, recycled, or
    /// cleaned segments): the caller must skip entries whose current
    /// [`SegInfo::dirty`] flag is unset, and must either re-[`mark_dirty`]
    /// or [`clear_dirty`] every live entry it keeps, since taking the list
    /// removes them from the index.
    ///
    /// [`mark_dirty`]: SegmentTable::mark_dirty
    /// [`clear_dirty`]: SegmentTable::clear_dirty
    pub fn take_dirty(&mut self) -> Vec<SegIndex> {
        std::mem::take(&mut self.dirty_list)
    }

    /// The current dirty index (for invariant checks): a superset of the
    /// allocated segments whose dirty flag is set.
    pub fn dirty_index(&self) -> &[SegIndex] {
        &self.dirty_list
    }

    // ------------------------------------------------------------------
    // Per-generation lists
    // ------------------------------------------------------------------

    /// Drains the recorded segments of `generation`, filtering out stale
    /// entries (freed segments, or segments recycled into a different
    /// generation). The same live segment can appear more than once if it
    /// was freed and recycled back into the same generation; callers
    /// dedup (the collector's from-space map does this for free).
    ///
    /// After the drain the generation's list is empty; segments allocated
    /// afterwards re-populate it.
    pub fn drain_generation(&mut self, generation: u8) -> Vec<SegIndex> {
        let g = generation as usize;
        if g >= self.by_gen.len() {
            return Vec::new();
        }
        let raw = std::mem::take(&mut self.by_gen[g]);
        raw.into_iter()
            .filter(|&seg| {
                self.info
                    .get(seg.index())
                    .and_then(|i| i.as_ref())
                    .is_some_and(|info| info.generation == generation)
            })
            .collect()
    }

    /// Iterates over all allocated segments with their metadata.
    pub fn iter(&self) -> impl Iterator<Item = (SegIndex, &SegInfo)> {
        self.info
            .iter()
            .enumerate()
            .filter_map(|(i, info)| info.as_ref().map(|info| (SegIndex(i as u32), info)))
    }

    /// All allocated head segments in `space` whose generation satisfies
    /// `pred`, in index order.
    pub fn heads_in(&self, space: Space, mut pred: impl FnMut(u8) -> bool) -> Vec<SegIndex> {
        self.iter()
            .filter(|(_, info)| info.space == space && info.is_head() && pred(info.generation))
            .map(|(idx, _)| idx)
            .collect()
    }

    /// Number of currently allocated segments (including run tails).
    pub fn segments_allocated(&self) -> usize {
        self.allocated
    }

    /// Number of currently allocated words of capacity.
    pub fn words_allocated(&self) -> usize {
        self.allocated * SEGMENT_WORDS
    }

    /// Total segments ever created (allocated + free pool).
    pub fn segments_total(&self) -> usize {
        self.segs.len()
    }
}

impl Default for SegmentTable {
    fn default() -> Self {
        SegmentTable::new()
    }
}

impl Drop for SegmentTable {
    /// Teardown returns *all* storage — allocated segments and the local
    /// free list alike — to the shared pool, so a zone's capacity is fully
    /// reusable the moment its heap drops. Private tables free storage as
    /// before.
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.release_all(self.segs.drain(..));
            pool.detach();
        }
    }
}

impl std::fmt::Debug for SegmentTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentTable")
            .field("allocated", &self.allocated)
            .field("total", &self.segs.len())
            .field("free", &self.free.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::SegKind;

    #[test]
    fn allocate_tags_space_and_generation() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        let b = t.allocate(Space::WeakPair, 3);
        assert_eq!(t.info(a).space, Space::Pair);
        assert_eq!(t.info(b).space, Space::WeakPair);
        assert_eq!(t.info(b).generation, 3);
        assert_eq!(t.segments_allocated(), 2);
    }

    #[test]
    fn freed_segments_are_recycled() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        t.free(a);
        assert_eq!(t.segments_allocated(), 0);
        let b = t.allocate(Space::Typed, 1);
        assert_eq!(a, b, "storage should be reissued");
        assert_eq!(t.segments_total(), 1);
        // Recycled segments come back zeroed.
        assert_eq!(t.word(t.base_addr(b)), 0);
    }

    #[test]
    fn words_read_back() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        let addr = t.base_addr(a).add(17);
        t.set_word(addr, 0xFEED);
        assert_eq!(t.word(addr), 0xFEED);
    }

    #[test]
    fn runs_are_contiguous_and_freed_together() {
        let mut t = SegmentTable::new();
        let _pad = t.allocate(Space::Pair, 0);
        let head = t.allocate_run(Space::Typed, 2, 3);
        assert_eq!(t.run_len(head), 3);
        assert_eq!(t.segments_allocated(), 4);
        // Words are addressable across the run.
        let far = t.base_addr(head).add(SEGMENT_WORDS + 5);
        t.set_word(far, 99);
        assert_eq!(t.word(far), 99);
        // Tail metadata points back at the head.
        let tail = SegIndex(head.0 + 1);
        assert_eq!(t.info(tail).kind, SegKind::Tail { head });
        t.free(head);
        assert_eq!(t.segments_allocated(), 1);
    }

    #[test]
    fn run_len_stops_at_foreign_tail() {
        let mut t = SegmentTable::new();
        let r1 = t.allocate_run(Space::Typed, 0, 2);
        let r2 = t.allocate_run(Space::Typed, 0, 2);
        assert_eq!(t.run_len(r1), 2);
        assert_eq!(t.run_len(r2), 2);
    }

    #[test]
    fn heads_in_filters_by_space_and_generation() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        let _b = t.allocate(Space::Pair, 2);
        let _c = t.allocate(Space::Typed, 0);
        let young_pairs = t.heads_in(Space::Pair, |g| g == 0);
        assert_eq!(young_pairs, vec![a]);
    }

    #[test]
    fn contains_rejects_freed_and_out_of_range() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        let addr = t.base_addr(a);
        assert!(t.contains(addr));
        t.free(a);
        assert!(!t.contains(addr));
        assert!(!t.contains(WordAddr::new(SegIndex(400), 0)));
    }

    #[test]
    #[should_panic(expected = "freeing unallocated segment")]
    fn double_free_panics() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        t.free(a);
        t.free(a);
    }

    #[test]
    #[should_panic(expected = "tail segment")]
    fn freeing_tail_panics() {
        let mut t = SegmentTable::new();
        let head = t.allocate_run(Space::Typed, 0, 2);
        t.free(SegIndex(head.0 + 1));
    }

    #[test]
    fn copy_words_within_one_segment() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        for i in 0..8 {
            t.set_word(t.base_addr(a).add(i), 100 + i as u64);
        }
        t.copy_words(t.base_addr(a), t.base_addr(a).add(20), 8);
        for i in 0..8 {
            assert_eq!(t.word(t.base_addr(a).add(20 + i)), 100 + i as u64);
        }
        // Overlapping forward copy keeps copy_within semantics.
        t.copy_words(t.base_addr(a).add(20), t.base_addr(a).add(22), 8);
        assert_eq!(t.word(t.base_addr(a).add(22)), 100);
        assert_eq!(t.word(t.base_addr(a).add(29)), 107);
    }

    #[test]
    fn copy_words_between_segments_both_directions() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Typed, 0);
        let b = t.allocate(Space::Typed, 0);
        for i in 0..5 {
            t.set_word(t.base_addr(a).add(i), i as u64 + 1);
        }
        t.copy_words(t.base_addr(a), t.base_addr(b).add(3), 5);
        assert_eq!(t.word(t.base_addr(b).add(3)), 1);
        assert_eq!(t.word(t.base_addr(b).add(7)), 5);
        // And back, higher index to lower.
        t.copy_words(t.base_addr(b).add(3), t.base_addr(a).add(100), 5);
        assert_eq!(t.word(t.base_addr(a).add(104)), 5);
    }

    #[test]
    fn copy_words_across_run_boundaries() {
        let mut t = SegmentTable::new();
        let src = t.allocate_run(Space::Typed, 0, 3);
        let dst = t.allocate_run(Space::Typed, 1, 3);
        let n = 2 * SEGMENT_WORDS + 17;
        for i in 0..n {
            t.set_word(t.base_addr(src).add(i), (i * 3 + 1) as u64);
        }
        // Misaligned so chunks split differently in source and target.
        t.copy_words(t.base_addr(src), t.base_addr(dst).add(9), n - 9);
        for i in 0..n - 9 {
            assert_eq!(
                t.word(t.base_addr(dst).add(9 + i)),
                (i * 3 + 1) as u64,
                "word {i}"
            );
        }
    }

    #[test]
    fn dirty_index_tracks_marks_and_skips_stale() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 1);
        let b = t.allocate(Space::Pair, 2);
        t.mark_dirty(a);
        t.mark_dirty(a); // idempotent
        t.mark_dirty(b);
        assert_eq!(t.dirty_index(), &[a, b]);
        t.clear_dirty(a);
        assert!(!t.info(a).dirty);
        // The stale entry remains until taken; flags tell live from stale.
        let drained = t.take_dirty();
        assert_eq!(drained, vec![a, b]);
        assert!(t.dirty_index().is_empty());
        let live: Vec<SegIndex> = drained.into_iter().filter(|&s| t.info(s).dirty).collect();
        assert_eq!(live, vec![b]);
    }

    #[test]
    fn drain_generation_filters_freed_and_recycled() {
        let mut t = SegmentTable::new();
        let a = t.allocate(Space::Pair, 0);
        let b = t.allocate(Space::Typed, 0);
        let c = t.allocate(Space::Pair, 1);
        t.free(a);
        // `a`'s storage is recycled into generation 1: the generation-0
        // entry is stale, and generation 1 now lists it.
        let a2 = t.allocate(Space::Pair, 1);
        assert_eq!(a2, a);
        assert_eq!(t.drain_generation(0), vec![b]);
        assert_eq!(t.drain_generation(0), Vec::<SegIndex>::new(), "drained");
        assert_eq!(t.drain_generation(1), vec![c, a2]);
        assert_eq!(t.drain_generation(9), Vec::<SegIndex>::new());
    }

    #[test]
    fn pooled_table_matches_private_allocation_behaviour() {
        let pool = SegmentPool::unbounded();
        let mut pooled = SegmentTable::with_pool(pool.clone(), None);
        let mut private = SegmentTable::new();
        for t in [&mut pooled, &mut private] {
            let a = t.allocate(Space::Pair, 0);
            let b = t.allocate(Space::Typed, 1);
            t.set_word(t.base_addr(a).add(3), 7);
            t.free(b);
            let c = t.allocate(Space::WeakPair, 0);
            assert_eq!(c, b, "free-list recycling identical");
            assert_eq!(t.word(t.base_addr(c)), 0, "recycled storage zeroed");
            let run = t.allocate_run(Space::Typed, 2, 3);
            assert_eq!(t.run_len(run), 3);
        }
        assert_eq!(pool.outstanding(), pooled.segments_total());
        assert_eq!(pool.attached_tables(), 1);
    }

    #[test]
    fn dropping_a_pooled_table_returns_every_segment() {
        let pool = SegmentPool::with_capacity(16);
        {
            let mut t = SegmentTable::with_pool(pool.clone(), None);
            let a = t.allocate(Space::Pair, 0);
            let _b = t.allocate_run(Space::Typed, 1, 3);
            t.free(a); // free-listed storage must come back too
            assert_eq!(pool.outstanding(), 4);
        }
        assert_eq!(pool.outstanding(), 0, "teardown returns all storage");
        assert_eq!(pool.attached_tables(), 0, "no lingering owners");
        assert_eq!(pool.stats().releases, 4);
    }

    #[test]
    fn acquirable_reflects_watermark_and_pool() {
        let pool = SegmentPool::with_capacity(8);
        let mut a = SegmentTable::with_pool(pool.clone(), Some(3));
        let mut b = SegmentTable::with_pool(pool.clone(), None);
        assert_eq!(a.acquirable(), 3, "watermark binds before pool");
        a.allocate(Space::Pair, 0);
        a.allocate(Space::Pair, 0);
        assert_eq!(a.acquirable(), 1);
        for _ in 0..5 {
            b.allocate(Space::Typed, 0);
        }
        assert_eq!(pool.remaining(), 1);
        assert_eq!(a.acquirable(), 1, "min(watermark 1, pool 1)");
        assert_eq!(b.acquirable(), 1, "pool binds the unmarked sibling");
        b.allocate(Space::Typed, 0);
        assert_eq!(a.acquirable(), 0, "pool drained by the sibling");
        // Freeing locally restores watermark headroom but (deliberately)
        // not pool-side credit: the free list is not counted.
        let first = SegIndex(0);
        a.free(first);
        assert_eq!(a.acquirable(), 0);
        assert!(SegmentTable::new().acquirable() == u64::MAX);
    }

    #[test]
    #[should_panic(expected = "watermark of 2 segments exceeded")]
    fn watermark_tripwire_fires_on_unpreflighted_allocation() {
        let pool = SegmentPool::unbounded();
        let mut t = SegmentTable::with_pool(pool, Some(2));
        t.allocate(Space::Pair, 0);
        t.allocate(Space::Pair, 0);
        t.allocate(Space::Pair, 0);
    }

    #[test]
    #[should_panic(expected = "pool exhausted")]
    fn pool_tripwire_fires_on_unpreflighted_allocation() {
        let pool = SegmentPool::with_capacity(1);
        let mut t = SegmentTable::with_pool(pool, None);
        t.allocate(Space::Pair, 0);
        t.allocate(Space::Pair, 0);
    }

    #[test]
    fn drain_generation_includes_run_tails() {
        let mut t = SegmentTable::new();
        let head = t.allocate_run(Space::Typed, 2, 3);
        let drained = t.drain_generation(2);
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0], head);
        assert_eq!(t.run_len(head), 3);
    }
}
