#![warn(missing_docs)]

//! Segmented heap substrate, modelled on the memory system the paper
//! attributes to Chez Scheme (Section 4):
//!
//! > "Chez Scheme employs a segmented memory system in which the heap is
//! > structured as a set of segments (each currently 4K bytes in size).
//! > Each segment belongs to a specific space and generation; the space and
//! > generation to which each segment belongs is maintained in a segment
//! > information table with one entry per segment."
//!
//! This crate provides exactly that: fixed-size segments of 64-bit words, a
//! segment information table tagging each segment with a [`Space`] and a
//! generation, a free pool so segment storage is recycled across
//! collections, and contiguous multi-segment *runs* for objects larger than
//! one segment. It knows nothing about value representation; the
//! `guardians-gc` crate builds the object model on top.
//!
//! # Example
//!
//! ```
//! use guardians_segments::{SegmentTable, Space, SEGMENT_WORDS};
//!
//! let mut table = SegmentTable::new();
//! let seg = table.allocate(Space::Pair, 0);
//! let addr = table.base_addr(seg);
//! table.set_word(addr, 42);
//! assert_eq!(table.word(addr), 42);
//! assert_eq!(table.info(seg).space, Space::Pair);
//! assert_eq!(table.info(seg).generation, 0);
//! assert!(table.words_allocated() >= SEGMENT_WORDS);
//! ```

mod addr;
mod info;
mod pool;
mod seg;
mod table;

pub use addr::{SegIndex, WordAddr, SEGMENT_BYTES, SEGMENT_WORDS, SEGMENT_WORDS_LOG2};
pub use info::{SegInfo, SegKind, Space, NO_OWNER};
pub use pool::{PoolStats, SegmentPool};
pub use seg::Segment;
pub use table::SegmentTable;
