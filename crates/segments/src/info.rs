//! The segment information table entries: one [`SegInfo`] per segment,
//! recording the *space* and *generation* the segment belongs to, exactly
//! as the paper describes for Chez Scheme's heap. The `dirty` flag is the
//! hook the collector's remembered set uses (a dirty old segment may
//! contain pointers into younger generations).

use crate::addr::SegIndex;

/// The space a segment belongs to.
///
/// The paper's implementation section keys behaviour off the space: weak
/// pairs "are always placed in a distinct weak-pair space" so the collector
/// can give their car fields weak treatment without per-object tags.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Space {
    /// Ordinary pairs: two words, both traced.
    Pair,
    /// Weak pairs: two words; car weak, cdr traced.
    WeakPair,
    /// Header-prefixed objects with traced fields (vectors, symbols,
    /// boxes, records).
    Typed,
    /// Header-prefixed objects with **no pointers at all** (strings,
    /// bytevectors, flonums). Segregating them lets the collector copy
    /// without scanning — the benefit the paper cites from Chez Scheme's
    /// segmented heap ("the ability to segregate objects based on their
    /// characteristics, such as ... whether they contain pointers").
    Pure,
}

impl Space {
    /// All spaces, for iteration in tests and in the collector.
    pub const ALL: [Space; 4] = [Space::Pair, Space::WeakPair, Space::Typed, Space::Pure];

    /// Dense index of this space in [`Space::ALL`], for flat
    /// space-by-generation tables (e.g. the heap's allocation cursors).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Space::Pair => 0,
            Space::WeakPair => 1,
            Space::Typed => 2,
            Space::Pure => 3,
        }
    }
}

/// Whether a segment starts objects or continues a large object.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SegKind {
    /// First (or only) segment of an allocation area; objects are packed
    /// from offset 0 up to `SegInfo::used`.
    Head,
    /// Continuation of a multi-segment object; `head` is the run's first
    /// segment.
    Tail {
        /// The run's head segment.
        head: SegIndex,
    },
}

/// Sentinel for [`SegInfo::owner`]: the segment is not a worker-owned
/// allocation region.
pub const NO_OWNER: u8 = u8::MAX;

/// Per-segment metadata held in the segment information table.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SegInfo {
    /// The space this segment belongs to.
    pub space: Space,
    /// The generation this segment belongs to.
    pub generation: u8,
    /// Head/tail discriminator for multi-segment runs.
    pub kind: SegKind,
    /// Number of words in use (meaningful on head segments; for a
    /// multi-segment run this counts the whole run's words and may exceed
    /// one segment).
    pub used: u32,
    /// Remembered-set hook: set by the mutator's write barrier when a
    /// pointer is stored into this segment. Maintain it through
    /// [`SegmentTable::mark_dirty`](crate::SegmentTable::mark_dirty) /
    /// [`SegmentTable::clear_dirty`](crate::SegmentTable::clear_dirty) so
    /// the table's dirty-segment index stays coherent.
    pub dirty: bool,
    /// Number of segments in the run this head starts (1 for a standalone
    /// segment), making `run_len` O(1). Zero on tail segments.
    pub run: u32,
    /// Whether this segment is an open allocation cursor for its
    /// (space, generation). Maintained by the heap's allocator so the
    /// Cheney sweep's park/requeue decision is an O(1) flag test instead
    /// of a scan over the cursor table.
    pub open_cursor: bool,
    /// Which parallel-collection worker currently owns this segment as an
    /// open bump-allocation region, or [`NO_OWNER`]. Distinct from
    /// `open_cursor`: worker regions live outside the heap's cursor table,
    /// and the verifier's cursor-coherence check must not see them as
    /// cursors. Only meaningful during a parallel collection; cleared when
    /// the owning worker's region is closed.
    pub owner: u8,
}

impl SegInfo {
    /// Fresh metadata for a newly allocated head segment.
    pub fn head(space: Space, generation: u8) -> Self {
        SegInfo {
            space,
            generation,
            kind: SegKind::Head,
            used: 0,
            dirty: false,
            run: 1,
            open_cursor: false,
            owner: NO_OWNER,
        }
    }

    /// Fresh metadata for a tail segment of a run starting at `head`.
    pub fn tail(space: Space, generation: u8, head: SegIndex) -> Self {
        SegInfo {
            space,
            generation,
            kind: SegKind::Tail { head },
            used: 0,
            dirty: false,
            run: 0,
            open_cursor: false,
            owner: NO_OWNER,
        }
    }

    /// Whether this segment is the head of its run (or a standalone head).
    pub fn is_head(&self) -> bool {
        matches!(self.kind, SegKind::Head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_starts_empty_and_clean() {
        let info = SegInfo::head(Space::Pair, 2);
        assert!(info.is_head());
        assert_eq!(info.used, 0);
        assert!(!info.dirty);
        assert_eq!(info.generation, 2);
        assert_eq!(info.owner, NO_OWNER);
    }

    #[test]
    fn tail_points_back_to_head() {
        let info = SegInfo::tail(Space::Typed, 0, SegIndex(9));
        assert!(!info.is_head());
        assert_eq!(info.kind, SegKind::Tail { head: SegIndex(9) });
    }
}
