//! Raw segment storage: a heap-allocated word array behind a stable
//! raw pointer.

use crate::addr::SEGMENT_WORDS;
use std::ptr::NonNull;

/// Poison pattern written into freed segments in debug builds so dangling
/// pointers are caught loudly rather than silently reading stale data.
pub(crate) const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

/// A single heap segment: [`SEGMENT_WORDS`] 64-bit words.
///
/// Storage sits behind a raw pointer rather than an inline `Box` field so
/// the word array's address is independent of where the `Segment` value
/// itself lives: moving a `Segment` (for example when the segment table's
/// `Vec<Segment>` grows) never changes the address of its words. The
/// parallel collector relies on this to hold raw per-worker copy regions
/// across table growth.
pub struct Segment {
    words: NonNull<u64>,
}

// SAFETY: a `Segment` exclusively owns its word allocation and contains no
// interior mutability or thread-affine state; it is a plain word array.
// Concurrent raw-pointer access from the parallel collector is governed by
// the disjoint-region contract documented on [`Segment::base_ptr`].
unsafe impl Send for Segment {}
unsafe impl Sync for Segment {}

impl Segment {
    /// A zero-filled segment.
    pub fn new() -> Self {
        let boxed: Box<[u64; SEGMENT_WORDS]> = Box::new([0; SEGMENT_WORDS]);
        Segment {
            // SAFETY: `Box::into_raw` never returns null.
            words: unsafe { NonNull::new_unchecked(Box::into_raw(boxed).cast::<u64>()) },
        }
    }

    /// Reads the word at `offset`.
    #[inline]
    pub fn word(&self, offset: usize) -> u64 {
        assert!(offset < SEGMENT_WORDS, "word offset out of range");
        // SAFETY: the allocation holds SEGMENT_WORDS words and `offset` was
        // just bounds-checked.
        unsafe { self.words.as_ptr().add(offset).read() }
    }

    /// Writes the word at `offset`.
    #[inline]
    pub fn set_word(&mut self, offset: usize, value: u64) {
        assert!(offset < SEGMENT_WORDS, "word offset out of range");
        // SAFETY: in bounds (checked above), and `&mut self` rules out
        // concurrent access through safe APIs.
        unsafe { self.words.as_ptr().add(offset).write(value) }
    }

    /// The whole segment as a word slice, for bulk scanning.
    #[inline]
    pub fn words(&self) -> &[u64; SEGMENT_WORDS] {
        // SAFETY: the allocation is exactly one [u64; SEGMENT_WORDS] and
        // lives as long as `self`.
        unsafe { &*self.words.as_ptr().cast::<[u64; SEGMENT_WORDS]>() }
    }

    /// The whole segment as a mutable word slice, for bulk copying.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64; SEGMENT_WORDS] {
        // SAFETY: as above, with `&mut self` guaranteeing uniqueness.
        unsafe { &mut *self.words.as_ptr().cast::<[u64; SEGMENT_WORDS]>() }
    }

    /// The raw base address of this segment's word array.
    ///
    /// The pointer stays valid (and stable) until the `Segment` is dropped,
    /// even if the `Segment` value itself is moved.
    ///
    /// # Contract for unsafe callers
    ///
    /// Dereferencing the returned pointer is `unsafe`; callers must ensure
    /// that every concurrently accessed word range is touched by at most
    /// one thread unless all concurrent accesses are reads, and that no
    /// `&`/`&mut` reference overlapping the range is live across the raw
    /// access. The parallel collector upholds this by carving to-space into
    /// per-worker regions and claiming from-space objects via CAS before
    /// copying them.
    #[inline]
    pub fn base_ptr(&self) -> *mut u64 {
        self.words.as_ptr()
    }

    /// Fills the whole segment with `value`.
    pub fn fill(&mut self, value: u64) {
        self.words_mut().fill(value);
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        // SAFETY: `words` came from `Box::into_raw` of exactly this type in
        // `Segment::new` and is dropped exactly once.
        unsafe {
            drop(Box::from_raw(
                self.words.as_ptr().cast::<[u64; SEGMENT_WORDS]>(),
            ))
        }
    }
}

impl Default for Segment {
    fn default() -> Self {
        Segment::new()
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Segment[{} words]", SEGMENT_WORDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed_and_is_writable() {
        let mut s = Segment::new();
        assert_eq!(s.word(0), 0);
        assert_eq!(s.word(SEGMENT_WORDS - 1), 0);
        s.set_word(100, 7);
        assert_eq!(s.word(100), 7);
    }

    #[test]
    fn fill_overwrites_everything() {
        let mut s = Segment::new();
        s.fill(POISON);
        assert_eq!(s.word(0), POISON);
        assert_eq!(s.word(SEGMENT_WORDS / 2), POISON);
    }

    #[test]
    fn base_ptr_is_stable_across_moves() {
        let s = Segment::new();
        let before = s.base_ptr();
        let mut held = vec![s];
        held[0].set_word(3, 42);
        // Move the segment (e.g. the Vec growing/relocating it).
        let moved = held.pop().unwrap();
        assert_eq!(moved.base_ptr(), before, "word storage must not move");
        assert_eq!(moved.word(3), 42);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let s = Segment::new();
        let _ = s.word(SEGMENT_WORDS);
    }
}
