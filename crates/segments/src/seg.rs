//! Raw segment storage: a boxed array of words.

use crate::addr::SEGMENT_WORDS;

/// Poison pattern written into freed segments in debug builds so dangling
/// pointers are caught loudly rather than silently reading stale data.
pub(crate) const POISON: u64 = 0xDEAD_BEEF_DEAD_BEEF;

/// A single heap segment: [`SEGMENT_WORDS`] 64-bit words.
pub struct Segment {
    words: Box<[u64; SEGMENT_WORDS]>,
}

impl Segment {
    /// A zero-filled segment.
    pub fn new() -> Self {
        Segment {
            words: Box::new([0; SEGMENT_WORDS]),
        }
    }

    /// Reads the word at `offset`.
    #[inline]
    pub fn word(&self, offset: usize) -> u64 {
        self.words[offset]
    }

    /// Writes the word at `offset`.
    #[inline]
    pub fn set_word(&mut self, offset: usize, value: u64) {
        self.words[offset] = value;
    }

    /// The whole segment as a word slice, for bulk scanning.
    #[inline]
    pub fn words(&self) -> &[u64; SEGMENT_WORDS] {
        &self.words
    }

    /// The whole segment as a mutable word slice, for bulk copying.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [u64; SEGMENT_WORDS] {
        &mut self.words
    }

    /// Fills the whole segment with `value`.
    pub fn fill(&mut self, value: u64) {
        self.words.fill(value);
    }
}

impl Default for Segment {
    fn default() -> Self {
        Segment::new()
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Segment[{} words]", SEGMENT_WORDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_zeroed_and_is_writable() {
        let mut s = Segment::new();
        assert_eq!(s.word(0), 0);
        assert_eq!(s.word(SEGMENT_WORDS - 1), 0);
        s.set_word(100, 7);
        assert_eq!(s.word(100), 7);
    }

    #[test]
    fn fill_overwrites_everything() {
        let mut s = Segment::new();
        s.fill(POISON);
        assert_eq!(s.word(0), POISON);
        assert_eq!(s.word(SEGMENT_WORDS / 2), POISON);
    }
}
