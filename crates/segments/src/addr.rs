//! Word-granular addressing of the segmented heap.
//!
//! A [`WordAddr`] is a global index into a flat space of 64-bit words. The
//! high bits select the segment (a [`SegIndex`]) and the low
//! [`SEGMENT_WORDS_LOG2`] bits select the word within the segment. Because
//! multi-segment runs occupy consecutive segment indices, word addresses
//! within a large object are consecutive integers even though the backing
//! storage is per-segment.

use std::fmt;

/// Base-2 logarithm of [`SEGMENT_WORDS`].
pub const SEGMENT_WORDS_LOG2: u32 = 9;

/// Number of 64-bit words per segment (512 words = 4 KB, the size the paper
/// reports for Chez Scheme's segments).
pub const SEGMENT_WORDS: usize = 1 << SEGMENT_WORDS_LOG2;

/// Number of bytes per segment.
pub const SEGMENT_BYTES: usize = SEGMENT_WORDS * 8;

/// Index of a segment in the segment information table.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegIndex(pub u32);

impl SegIndex {
    /// The segment index as a `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SegIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg#{}", self.0)
    }
}

/// Global word address: `segment_index * SEGMENT_WORDS + offset`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WordAddr(pub u64);

impl WordAddr {
    /// Builds an address from a segment index and an in-segment offset.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= SEGMENT_WORDS`.
    #[inline]
    pub fn new(seg: SegIndex, offset: usize) -> Self {
        assert!(offset < SEGMENT_WORDS, "offset {offset} out of segment");
        WordAddr(((seg.0 as u64) << SEGMENT_WORDS_LOG2) | offset as u64)
    }

    /// The segment this address falls in.
    #[inline]
    pub fn seg(self) -> SegIndex {
        SegIndex((self.0 >> SEGMENT_WORDS_LOG2) as u32)
    }

    /// The word offset within the segment.
    #[inline]
    pub fn offset(self) -> usize {
        (self.0 & (SEGMENT_WORDS as u64 - 1)) as usize
    }

    /// The raw global word index.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The address `n` words past this one (crossing segments within a run).
    ///
    /// Not `std::ops::Add`: the operands are deliberately asymmetric
    /// (address + word count), and implementing the trait would invite
    /// adding two addresses.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, n: usize) -> WordAddr {
        WordAddr(self.0 + n as u64)
    }
}

impl fmt::Debug for WordAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w@{}+{}", self.seg().0, self.offset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_seg_and_offset() {
        let a = WordAddr::new(SegIndex(7), 13);
        assert_eq!(a.seg(), SegIndex(7));
        assert_eq!(a.offset(), 13);
    }

    #[test]
    fn add_crosses_segment_boundary() {
        let a = WordAddr::new(SegIndex(2), SEGMENT_WORDS - 1);
        let b = a.add(2);
        assert_eq!(b.seg(), SegIndex(3));
        assert_eq!(b.offset(), 1);
    }

    #[test]
    #[should_panic(expected = "out of segment")]
    fn rejects_oversized_offset() {
        let _ = WordAddr::new(SegIndex(0), SEGMENT_WORDS);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", WordAddr::new(SegIndex(0), 0)).is_empty());
        assert!(!format!("{:?}", SegIndex(4)).is_empty());
    }
}
