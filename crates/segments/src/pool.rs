//! A shared free-segment pool: the capacity source multiple
//! [`SegmentTable`](crate::SegmentTable)s (and therefore multiple heaps)
//! draw from when they coexist in one process.
//!
//! The multi-tenant zone layer gives every tenant an isolated heap but
//! wants fleet-level capacity management: one budget of segments, drawn
//! on demand, returned in full when a zone is torn down. The pool is that
//! budget. It hands out raw [`Segment`] storage (zeroed, exactly as
//! `Segment::new()` would be), recycles returned storage, and enforces an
//! optional capacity cap on *outstanding* segments — storage is created
//! lazily, so an idle pool with a large cap costs nothing.
//!
//! Lock order: the pool's internal mutex is a leaf lock. It is taken only
//! inside [`SegmentPool`] methods, which never call back into a table or
//! heap, so any caller may hold heap-side state while acquiring or
//! releasing. Tables cache nothing about the pool between calls; the
//! mutex is the single source of truth for capacity accounting.

use crate::seg::Segment;
use std::sync::{Arc, Mutex};

/// Accounting snapshot of a pool, for fleet dashboards and tests.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Maximum outstanding segments, or `None` for an unbounded pool.
    pub capacity: Option<usize>,
    /// Segments currently checked out to tables.
    pub outstanding: usize,
    /// Returned segments held for reuse.
    pub free: usize,
    /// High-water mark of `outstanding`.
    pub peak_outstanding: usize,
    /// Total acquisitions served.
    pub acquires: u64,
    /// Total segments returned.
    pub releases: u64,
    /// Tables currently attached to the pool.
    pub attached_tables: usize,
}

#[derive(Default)]
struct PoolInner {
    free: Vec<Segment>,
    capacity: Option<usize>,
    outstanding: usize,
    peak_outstanding: usize,
    acquires: u64,
    releases: u64,
    attached_tables: usize,
}

/// A shared, thread-safe pool of segment storage.
///
/// `Segment` is `Send + Sync` raw storage, so the pool is safely shared
/// across the router's worker threads; each worker's heaps draw from and
/// return to the same budget.
pub struct SegmentPool {
    inner: Mutex<PoolInner>,
}

impl SegmentPool {
    /// A pool with no capacity cap: acquisitions always succeed (fresh
    /// storage is created on demand), but teardown accounting and reuse
    /// still apply.
    pub fn unbounded() -> Arc<SegmentPool> {
        Arc::new(SegmentPool {
            inner: Mutex::new(PoolInner::default()),
        })
    }

    /// A pool capped at `capacity` outstanding segments. Storage is
    /// created lazily up to the cap.
    pub fn with_capacity(capacity: usize) -> Arc<SegmentPool> {
        Arc::new(SegmentPool {
            inner: Mutex::new(PoolInner {
                capacity: Some(capacity),
                ..PoolInner::default()
            }),
        })
    }

    /// Acquires one segment of zeroed storage, or `None` if the pool is
    /// at capacity. Recycled storage is re-zeroed here, so an acquired
    /// segment is indistinguishable from `Segment::new()`.
    pub fn try_acquire(&self) -> Option<Segment> {
        let mut inner = self.inner.lock().expect("segment pool poisoned");
        if let Some(cap) = inner.capacity {
            if inner.outstanding >= cap {
                return None;
            }
        }
        let seg = match inner.free.pop() {
            Some(mut seg) => {
                seg.fill(0);
                seg
            }
            None => Segment::new(),
        };
        inner.outstanding += 1;
        inner.peak_outstanding = inner.peak_outstanding.max(inner.outstanding);
        inner.acquires += 1;
        Some(seg)
    }

    /// Returns one segment's storage to the pool.
    pub fn release(&self, seg: Segment) {
        self.release_all(std::iter::once(seg));
    }

    /// Returns a batch of segments (a table tearing down) to the pool.
    ///
    /// # Panics
    ///
    /// Panics if more segments are returned than are outstanding — a
    /// double-release, which would corrupt capacity accounting.
    pub fn release_all(&self, segs: impl IntoIterator<Item = Segment>) {
        let mut inner = self.inner.lock().expect("segment pool poisoned");
        for seg in segs {
            assert!(
                inner.outstanding > 0,
                "segment released to a pool with none outstanding"
            );
            inner.outstanding -= 1;
            inner.releases += 1;
            inner.free.push(seg);
        }
    }

    /// Segments still acquirable before the cap: `u64::MAX` when
    /// unbounded. This is the headroom heaps fold into their
    /// `try_*`-preflight budget.
    pub fn remaining(&self) -> u64 {
        let inner = self.inner.lock().expect("segment pool poisoned");
        match inner.capacity {
            None => u64::MAX,
            Some(cap) => (cap - inner.outstanding) as u64,
        }
    }

    /// Segments currently checked out.
    pub fn outstanding(&self) -> usize {
        self.inner
            .lock()
            .expect("segment pool poisoned")
            .outstanding
    }

    /// Tables currently attached (created with this pool and not yet
    /// dropped) — the teardown tests' "no lingering owners" check.
    pub fn attached_tables(&self) -> usize {
        self.inner
            .lock()
            .expect("segment pool poisoned")
            .attached_tables
    }

    /// Full accounting snapshot.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().expect("segment pool poisoned");
        PoolStats {
            capacity: inner.capacity,
            outstanding: inner.outstanding,
            free: inner.free.len(),
            peak_outstanding: inner.peak_outstanding,
            acquires: inner.acquires,
            releases: inner.releases,
            attached_tables: inner.attached_tables,
        }
    }

    pub(crate) fn attach(&self) {
        self.inner
            .lock()
            .expect("segment pool poisoned")
            .attached_tables += 1;
    }

    pub(crate) fn detach(&self) {
        let mut inner = self.inner.lock().expect("segment pool poisoned");
        assert!(inner.attached_tables > 0, "detach without attach");
        inner.attached_tables -= 1;
    }
}

impl std::fmt::Debug for SegmentPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("SegmentPool")
            .field("capacity", &s.capacity)
            .field("outstanding", &s.outstanding)
            .field("free", &s.free)
            .field("attached_tables", &s.attached_tables)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_always_acquires() {
        let p = SegmentPool::unbounded();
        assert_eq!(p.remaining(), u64::MAX);
        let a = p.try_acquire().expect("unbounded");
        let b = p.try_acquire().expect("unbounded");
        assert_eq!(p.outstanding(), 2);
        p.release(a);
        p.release(b);
        assert_eq!(p.outstanding(), 0);
        assert_eq!(p.stats().free, 2);
    }

    #[test]
    fn capacity_caps_outstanding_not_total_traffic() {
        let p = SegmentPool::with_capacity(2);
        let a = p.try_acquire().expect("1 of 2");
        let _b = p.try_acquire().expect("2 of 2");
        assert!(p.try_acquire().is_none(), "at capacity");
        assert_eq!(p.remaining(), 0);
        p.release(a);
        assert_eq!(p.remaining(), 1);
        assert!(p.try_acquire().is_some(), "freed capacity is reusable");
    }

    #[test]
    fn recycled_storage_is_rezeroed() {
        let p = SegmentPool::unbounded();
        let mut seg = p.try_acquire().expect("acquire");
        seg.fill(0xDEAD);
        p.release(seg);
        let seg = p.try_acquire().expect("reacquire");
        assert!(seg.words().iter().all(|&w| w == 0));
        p.release(seg);
    }

    #[test]
    fn peak_and_traffic_counters_track() {
        let p = SegmentPool::with_capacity(8);
        let segs: Vec<Segment> = (0..3)
            .map(|_| p.try_acquire().expect("under cap"))
            .collect();
        p.release_all(segs);
        let s = p.stats();
        assert_eq!(s.peak_outstanding, 3);
        assert_eq!(s.acquires, 3);
        assert_eq!(s.releases, 3);
        assert_eq!(s.outstanding, 0);
    }

    #[test]
    #[should_panic(expected = "none outstanding")]
    fn over_release_panics() {
        let p = SegmentPool::unbounded();
        p.release(Segment::new());
    }
}
