//! Plain-text tables for the `experiments` binary — the "same rows the
//! paper reports" renderer (our paper reports claims; the rows are the
//! counters that check them).

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// A table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a footnote line.
    pub fn note(&mut self, text: impl Into<String>) -> &mut Table {
        self.notes.push(text.into());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The footnotes.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Renders the table as a JSON object
    /// (`{"title", "headers", "rows", "notes"}`) for machine-readable
    /// output (`experiments --json`). No external serializer: cells are
    /// strings, so escaping is all that is needed. Key order is fixed by
    /// construction, so identical measurements give byte-identical JSON —
    /// the property the bench-gate diffing relies on.
    pub fn to_json(&self) -> String {
        let arr = |items: &[String]| {
            let cells: Vec<String> = items
                .iter()
                .map(|s| format!("\"{}\"", json_escape(s)))
                .collect();
            format!("[{}]", cells.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"title\":\"{}\",\"headers\":{},\"rows\":[{}],\"notes\":{}}}",
            json_escape(&self.title),
            arr(&self.headers),
            rows.join(","),
            arr(&self.notes)
        )
    }

    /// [`Table::to_json`] with a leading stable `"name"` key (e.g.
    /// `"e11"`), so consumers can key tables by experiment id instead of
    /// matching display titles.
    pub fn to_json_named(&self, name: &str) -> String {
        format!(
            "{{\"name\":\"{}\",{}",
            json_escape(name),
            &self.to_json()[1..]
        )
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let mut s = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{cell:>width$}", width = widths[i]);
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a ratio with two decimals, or "inf" for division by zero.
pub fn fmt_ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        return "inf".to_string();
    }
    format!("{:.2}", num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "count"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["much-longer-name".into(), "1000".into()]);
        t.note("a footnote");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("much-longer-name"));
        assert!(s.contains("note: a footnote"));
        // Columns align: both rows end at the same width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len().max(lines[2].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_output_is_escaped_and_structured() {
        let mut t = Table::new("quotes \"here\"", &["a", "b"]);
        t.row(&["x\n".into(), "1".into()]);
        t.note("50% of \\ cases");
        let j = t.to_json();
        assert_eq!(
            j,
            "{\"title\":\"quotes \\\"here\\\"\",\"headers\":[\"a\",\"b\"],\
             \"rows\":[[\"x\\n\",\"1\"]],\"notes\":[\"50% of \\\\ cases\"]}"
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_ratio(3.0, 2.0), "1.50");
        assert_eq!(fmt_ratio(1.0, 0.0), "inf");
    }
}
