//! Hash-table churn scripts: a deterministic stream of inserts, key
//! drops, lookups, and collections, replayed identically against every
//! table implementation under comparison (experiments E1 and E4).

use crate::keys::KeyGen;

/// Parameters for a table-churn script.
#[derive(Clone, Debug)]
pub struct ChurnParams {
    /// Total operations to generate.
    pub ops: usize,
    /// Steady-state number of live keys.
    pub live_target: usize,
    /// Probability an operation is a lookup (vs. an insert).
    pub lookup_fraction: f64,
    /// Probability that an insert is paired with dropping one live key
    /// once the live target is reached (1.0 = strict steady state).
    pub death_rate: f64,
    /// Insert a `Collect` op every this many operations (0 = never).
    pub collect_every: usize,
    /// Generation to collect (paper schedule if you vary it externally).
    pub collect_generation: u8,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            ops: 10_000,
            live_target: 1_000,
            lookup_fraction: 0.6,
            death_rate: 1.0,
            collect_every: 500,
            collect_generation: 0,
            seed: 0xD17B,
        }
    }
}

/// One scripted operation. Key ids are abstract; the replayer maps them
/// to heap keys.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TableOp {
    /// Create key `id` and insert it.
    Insert(u64),
    /// Drop every reference to key `id` (making it collectable).
    DropKey(u64),
    /// Look up live key `id`.
    Lookup(u64),
    /// Run a collection of the given generation.
    Collect(u8),
}

/// Generates the churn script for `params`. Deterministic in the seed.
pub fn table_script(params: &ChurnParams) -> Vec<TableOp> {
    let mut ops = Vec::with_capacity(params.ops + params.ops / params.collect_every.max(1));
    let mut gen = KeyGen::new(params.seed, 0.6);
    let mut live: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    for i in 0..params.ops {
        if params.collect_every > 0 && i > 0 && i % params.collect_every == 0 {
            ops.push(TableOp::Collect(params.collect_generation));
        }
        let do_lookup = !live.is_empty() && gen.flip(params.lookup_fraction);
        if do_lookup {
            let idx = gen.pick(live.len());
            ops.push(TableOp::Lookup(live[idx]));
            continue;
        }
        let id = next_id;
        next_id += 1;
        ops.push(TableOp::Insert(id));
        live.push(id);
        if live.len() > params.live_target && gen.flip(params.death_rate) {
            let idx = gen.uniform(live.len());
            let dead = live.swap_remove(idx);
            ops.push(TableOp::DropKey(dead));
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn scripts_are_deterministic() {
        let p = ChurnParams::default();
        assert_eq!(table_script(&p), table_script(&p));
        let p2 = ChurnParams { seed: 1, ..p };
        assert_ne!(table_script(&p2), table_script(&ChurnParams::default()));
    }

    #[test]
    fn script_is_well_formed() {
        let p = ChurnParams {
            ops: 2_000,
            live_target: 100,
            ..ChurnParams::default()
        };
        let script = table_script(&p);
        let mut live: HashSet<u64> = HashSet::new();
        let mut inserted: HashSet<u64> = HashSet::new();
        let mut collects = 0;
        for op in &script {
            match op {
                TableOp::Insert(id) => {
                    assert!(inserted.insert(*id), "ids are never reused");
                    live.insert(*id);
                }
                TableOp::DropKey(id) => {
                    assert!(live.remove(id), "only live keys are dropped");
                }
                TableOp::Lookup(id) => {
                    assert!(live.contains(id), "only live keys are looked up");
                }
                TableOp::Collect(_) => collects += 1,
            }
        }
        assert!(collects > 0);
        // Steady state: live population close to the target.
        assert!(live.len() <= p.live_target + 1, "live = {}", live.len());
    }

    #[test]
    fn no_collects_when_disabled() {
        let p = ChurnParams {
            collect_every: 0,
            ops: 500,
            ..ChurnParams::default()
        };
        assert!(!table_script(&p)
            .iter()
            .any(|o| matches!(o, TableOp::Collect(_))));
    }
}
