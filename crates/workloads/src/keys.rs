//! Key-stream generation with skewed (approximately Zipfian) popularity,
//! the shape real symbol tables and caches see.

use rand::rngs::SmallRng;
use rand::Rng;

/// Generates string keys and skewed choices among live keys.
#[derive(Debug)]
pub struct KeyGen {
    rng: SmallRng,
    /// Zipf skew: 0.0 = uniform, ~1.0 = strongly skewed.
    pub skew: f64,
}

impl KeyGen {
    /// A key generator with the given seed and skew.
    pub fn new(seed: u64, skew: f64) -> KeyGen {
        KeyGen {
            rng: crate::rng(seed),
            skew,
        }
    }

    /// The canonical name of key `id`.
    pub fn name(id: u64) -> String {
        format!("key-{id:08x}")
    }

    /// Picks an index in `0..n` with the configured skew toward low
    /// indices (the "popular" keys).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty population");
        if self.skew <= 0.0 {
            return self.rng.gen_range(0..n);
        }
        // Inverse-power sampling: u^(1/(1-s)) concentrates near 0.
        let u: f64 = self.rng.gen_range(0.0f64..1.0);
        let exponent = 1.0 / (1.0 - self.skew.min(0.99));
        let idx = (u.powf(exponent) * n as f64) as usize;
        idx.min(n - 1)
    }

    /// Uniform random boolean with probability `p`.
    pub fn flip(&mut self, p: f64) -> bool {
        self.rng.gen_range(0.0f64..1.0) < p
    }

    /// Uniform integer in `0..n`.
    pub fn uniform(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct_and_stable() {
        assert_eq!(KeyGen::name(1), KeyGen::name(1));
        assert_ne!(KeyGen::name(1), KeyGen::name(2));
    }

    #[test]
    fn skewed_picks_prefer_low_indices() {
        let mut g = KeyGen::new(42, 0.9);
        let mut low = 0;
        for _ in 0..1000 {
            if g.pick(1000) < 100 {
                low += 1;
            }
        }
        assert!(
            low > 500,
            "90% skew should send most picks to the low decile, got {low}"
        );
    }

    #[test]
    fn uniform_picks_spread_out() {
        let mut g = KeyGen::new(42, 0.0);
        let mut low = 0;
        for _ in 0..1000 {
            if g.pick(1000) < 100 {
                low += 1;
            }
        }
        assert!((50..200).contains(&low), "roughly 10% expected, got {low}");
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn pick_from_empty_panics() {
        KeyGen::new(1, 0.0).pick(0);
    }
}
