//! Three adversarial mutators for the E22 policy-autotuner study, each
//! engineered to punish a different default-policy assumption:
//!
//! * [`run_cache_workload`] — a large, stable cache with slow turnover.
//!   Old-generation collections keep recopying live data that never
//!   dies; the frequency-ladder knob is the one that matters.
//! * [`run_burst_workload`] — request bursts whose objects all live for
//!   the duration of the burst and die together. A small nursery trigger
//!   collects mid-burst and copies the whole in-flight batch; the
//!   trigger knob is the one that matters.
//! * [`run_pool_workload`] — a guardian-managed resource pool whose
//!   sessions live long enough to tenure before dying. Under the
//!   paper's advance-by-one promotion, dead sessions park in old
//!   generations awaiting finalization; the tenure-cap knob is the one
//!   that matters.
//!
//! Every workload reports the same [`PolicyStats`], including a
//! *liveness drag* measurement: dropped objects are watched through
//! weak pairs (the same mechanism the torture rig's weak trackers use),
//! and at each post-collection sample the workload counts watched
//! objects that are dead in truth but whose weak reference is still
//! intact — reachability lagging true liveness (floating garbage and
//! guardian-preserved corpses).

use crate::keys::KeyGen;
use guardians_gc::{Heap, Value};

/// What a policy workload observed. All fields are deterministic
/// functions of the heap configuration and the workload parameters —
/// no wall-clock anywhere — so E22 comparisons are bit-reproducible.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PolicyStats {
    /// Collections that ran during the workload.
    pub collections: u64,
    /// Words copied by those collections.
    pub words_copied: u64,
    /// Guardian protected-list entries visited by those collections.
    pub guardian_visited: u64,
    /// Peak count of watched objects that were dead in truth but still
    /// weakly reachable at a post-collection sample.
    pub drag_peak: u64,
    /// The same count at the final sample.
    pub drag_final: u64,
    /// Post-collection drag samples taken.
    pub drag_samples: u64,
    /// Guardian entries polled back by the mutator (pool workload).
    pub reclaimed: u64,
    /// Heap capacity in bytes when the workload finished (footprint the
    /// policy bought its speed with).
    pub final_capacity_bytes: u64,
}

impl PolicyStats {
    /// The machine-independent GC-time proxy: words copied plus guardian
    /// entries visited. Both scale linearly with collection pause time
    /// and neither depends on the host, so gates on this number are
    /// noise-free.
    pub fn gc_work(&self) -> u64 {
        self.words_copied + self.guardian_visited
    }
}

/// A ring of weak pairs watching recently dropped objects. Strongly
/// rooted pairs whose *car* is the weak edge: while the collector has
/// not yet proven the object dead the car still points at it; once
/// reclaimed the car breaks to `#f`. Counting intact cars therefore
/// measures the reachability-vs-true-liveness lag.
struct DragRing {
    slots: guardians_gc::RootedVec,
    cap: usize,
    next: usize,
}

impl DragRing {
    fn new(heap: &mut Heap, cap: usize) -> DragRing {
        DragRing {
            slots: heap.root_vec(),
            cap: cap.max(1),
            next: 0,
        }
    }

    /// Starts watching `v` (call while `v` is still reachable, just
    /// before the last strong reference is dropped).
    fn watch(&mut self, heap: &mut Heap, v: Value) {
        let w = heap.weak_cons(v, Value::NIL);
        if self.slots.len() < self.cap {
            self.slots.push(w);
        } else {
            self.slots.set(self.next, w);
        }
        self.next = (self.next + 1) % self.cap;
    }

    /// Watched objects whose weak edge is still intact — dead in truth,
    /// not yet observed dead by the collector.
    fn intact(&self, heap: &Heap) -> u64 {
        let mut n = 0;
        for i in 0..self.slots.len() {
            if heap.car(self.slots.get(i)).is_ptr() {
                n += 1;
            }
        }
        n
    }
}

/// Book-keeping shared by the three workloads: baseline counters plus
/// the drag ring, folded into [`PolicyStats`] at the end.
struct Meter {
    base_collections: u64,
    base_words: u64,
    base_visited: u64,
    drag: DragRing,
    stats: PolicyStats,
}

impl Meter {
    fn new(heap: &mut Heap, drag_cap: usize) -> Meter {
        Meter {
            base_collections: heap.collection_count(),
            base_words: heap.stats().total_words_copied,
            base_visited: heap.stats().total_guardian_entries_visited,
            drag: DragRing::new(heap, drag_cap),
            stats: PolicyStats::default(),
        }
    }

    /// A safe point: offers the heap a collection and, if one ran,
    /// samples the drag ring.
    fn safe_point(&mut self, heap: &mut Heap) {
        if heap.maybe_collect().is_some() {
            self.sample(heap);
        }
    }

    fn sample(&mut self, heap: &Heap) {
        let intact = self.drag.intact(heap);
        self.stats.drag_peak = self.stats.drag_peak.max(intact);
        self.stats.drag_final = intact;
        self.stats.drag_samples += 1;
    }

    fn finish(mut self, heap: &mut Heap) -> PolicyStats {
        self.sample(heap);
        self.stats.collections = heap.collection_count() - self.base_collections;
        self.stats.words_copied = heap.stats().total_words_copied - self.base_words;
        self.stats.guardian_visited =
            heap.stats().total_guardian_entries_visited - self.base_visited;
        self.stats.final_capacity_bytes = heap.capacity_bytes() as u64;
        self.stats
    }
}

/// Builds a list of `len` pairs (2 words each) carrying `tag`-derived
/// fixnums.
fn list(heap: &mut Heap, len: usize, tag: usize) -> Value {
    let mut l = Value::NIL;
    for k in 0..len {
        l = heap.cons(Value::fixnum((tag.wrapping_mul(31) + k) as i64), l);
    }
    l
}

// ----------------------------------------------------------------------
// Workload 1: long-lived cache
// ----------------------------------------------------------------------

/// Parameters for [`run_cache_workload`].
#[derive(Clone, Debug)]
pub struct CacheParams {
    /// Permanent cache slots (each holds a [`CacheParams::list_len`]-pair
    /// list that lives for the entire run).
    pub slots: usize,
    /// Pairs per permanent cache entry.
    pub list_len: usize,
    /// Mutator rounds.
    pub rounds: usize,
    /// Short-lived bytevector allocations per round.
    pub churn_per_round: usize,
    /// Bytes per churn bytevector.
    pub churn_bytes: usize,
    /// Working-set slots: recently accessed entries that survive
    /// infancy but die within a few collection periods.
    pub window_slots: usize,
    /// Pairs per working-set entry.
    pub window_len: usize,
    /// Working-set slots replaced (evicted and refilled) per round.
    pub replace_per_round: usize,
    /// Drag-ring capacity (evicted entries watched).
    pub drag_cap: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams {
            slots: 16384,
            list_len: 8,
            rounds: 4000,
            churn_per_round: 16,
            churn_bytes: 1024,
            window_slots: 1536,
            window_len: 16,
            replace_per_round: 14,
            drag_cap: 2048,
            seed: 0xCAC4E,
        }
    }
}

/// The long-lived-cache mutator: a large permanent resident set, a
/// medium-lived working set with steady turnover, and heavy short-lived
/// churn. Everything an old-generation collection copies out of the
/// resident set is still live afterwards, so a fixed frequency ladder
/// recopies the cache for nothing, and a nursery trigger smaller than
/// the working set's survivor flux collects entries that were about to
/// die anyway.
pub fn run_cache_workload(heap: &mut Heap, p: &CacheParams) -> PolicyStats {
    let mut gen = KeyGen::new(p.seed, 0.0);
    let cache = heap.root_vec();
    for i in 0..p.slots {
        let l = list(heap, p.list_len, i);
        cache.push(l);
    }
    let window = heap.root_vec();
    for i in 0..p.window_slots {
        let l = list(heap, p.window_len, i);
        window.push(l);
    }
    let mut m = Meter::new(heap, p.drag_cap);
    for round in 0..p.rounds {
        for _ in 0..p.churn_per_round {
            let _ = heap.make_bytevector(p.churn_bytes, 0);
        }
        if p.window_slots > 0 {
            for r in 0..p.replace_per_round {
                let slot = gen.uniform(p.window_slots);
                let old = window.get(slot);
                if old.is_ptr() {
                    m.drag.watch(heap, old);
                }
                let fresh = list(heap, p.window_len, round.wrapping_mul(16) + r);
                window.set(slot, fresh);
            }
        }
        m.safe_point(heap);
    }
    m.finish(heap)
}

// ----------------------------------------------------------------------
// Workload 2: bursty request churn
// ----------------------------------------------------------------------

/// Parameters for [`run_burst_workload`].
#[derive(Clone, Debug)]
pub struct BurstParams {
    /// Request bursts.
    pub bursts: usize,
    /// Requests allocated (and kept live) per burst.
    pub requests_per_burst: usize,
    /// Pairs per request.
    pub request_len: usize,
    /// Safe point every this many requests within a burst.
    pub safe_point_every: usize,
    /// Short-lived bytevector allocations in the quiet phase between
    /// bursts.
    pub quiet_allocs: usize,
    /// Bytes per quiet-phase bytevector.
    pub quiet_bytes: usize,
    /// Every this-many-th request is drag-watched when the burst ends.
    pub watch_every: usize,
    /// Drag-ring capacity.
    pub drag_cap: usize,
}

impl Default for BurstParams {
    fn default() -> Self {
        BurstParams {
            bursts: 120,
            requests_per_burst: 1024,
            request_len: 8,
            safe_point_every: 128,
            quiet_allocs: 32,
            quiet_bytes: 512,
            watch_every: 64,
            drag_cap: 512,
        }
    }
}

/// The bursty-churn mutator: every burst's requests are live until the
/// burst completes, then all die at once. A nursery trigger smaller
/// than a burst guarantees collections land mid-burst and copy the
/// whole in-flight batch; a trigger wider than a burst lets the batch
/// die before it is ever copied.
pub fn run_burst_workload(heap: &mut Heap, p: &BurstParams) -> PolicyStats {
    let mut m = Meter::new(heap, p.drag_cap);
    let inflight = heap.root_vec();
    for burst in 0..p.bursts {
        for r in 0..p.requests_per_burst {
            let req = list(heap, p.request_len, burst.wrapping_mul(4093) + r);
            inflight.push(req);
            if p.safe_point_every > 0 && (r + 1) % p.safe_point_every == 0 {
                m.safe_point(heap);
            }
        }
        // The burst completes: watch a sample, then drop every request.
        for r in (0..inflight.len()).step_by(p.watch_every.max(1)) {
            let v = inflight.get(r);
            m.drag.watch(heap, v);
        }
        inflight.truncate(0);
        for _ in 0..p.quiet_allocs {
            let _ = heap.make_bytevector(p.quiet_bytes, 0);
        }
        m.safe_point(heap);
    }
    m.finish(heap)
}

// ----------------------------------------------------------------------
// Workload 3: guardian-heavy resource pool
// ----------------------------------------------------------------------

/// Parameters for [`run_pool_workload`].
#[derive(Clone, Debug)]
pub struct PoolParams {
    /// Live sessions in the pool (FIFO: the oldest are closed first).
    pub sessions: usize,
    /// Pairs per session payload.
    pub session_len: usize,
    /// Mutator rounds.
    pub rounds: usize,
    /// Sessions closed (and opened) per round.
    pub turnover: usize,
    /// Short-lived bytevector allocations per round.
    pub churn_per_round: usize,
    /// Bytes per churn bytevector.
    pub churn_bytes: usize,
    /// Drag-ring capacity (closed sessions watched).
    pub drag_cap: usize,
}

impl Default for PoolParams {
    fn default() -> Self {
        PoolParams {
            sessions: 2048,
            session_len: 16,
            rounds: 6000,
            turnover: 8,
            churn_per_round: 8,
            churn_bytes: 1024,
            drag_cap: 32768,
        }
    }
}

/// The resource-pool mutator: every session is registered with a
/// guardian at open and must be polled back after death to "release its
/// descriptor". Sessions live long enough to tenure, so under
/// advance-by-one promotion their corpses park in rarely-collected old
/// generations and finalization (and the drag ring) lags far behind
/// true death.
pub fn run_pool_workload(heap: &mut Heap, p: &PoolParams) -> PolicyStats {
    let mut m = Meter::new(heap, p.drag_cap);
    let guardian = heap.make_guardian();
    let pool = heap.root_vec();
    let mut oldest = 0usize; // ring index of the oldest live session
    for i in 0..p.sessions {
        let s = list(heap, p.session_len, i);
        guardian.register(heap, s);
        pool.push(s);
    }
    for round in 0..p.rounds {
        for _ in 0..p.churn_per_round {
            let _ = heap.make_bytevector(p.churn_bytes, 0);
        }
        for t in 0..p.turnover {
            let dying = pool.get(oldest);
            if dying.is_ptr() {
                m.drag.watch(heap, dying);
            }
            let fresh = list(heap, p.session_len, round.wrapping_mul(16) + t);
            guardian.register(heap, fresh);
            pool.set(oldest, fresh);
            oldest = (oldest + 1) % p.sessions.max(1);
        }
        // Drain finalized sessions: each poll releases one descriptor.
        while guardian.poll(heap).is_some() {
            m.stats.reclaimed += 1;
        }
        m.safe_point(heap);
    }
    m.finish(heap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardians_gc::GcConfig;

    fn small_heap() -> Heap {
        Heap::new(GcConfig {
            trigger_bytes: 128 * 1024,
            ..GcConfig::new()
        })
    }

    #[test]
    fn cache_workload_collects_and_measures_drag() {
        let mut heap = small_heap();
        let stats = run_cache_workload(
            &mut heap,
            &CacheParams {
                slots: 256,
                rounds: 400,
                ..CacheParams::default()
            },
        );
        assert!(stats.collections > 0, "the trigger fired");
        assert!(stats.words_copied > 0, "the cache was copied");
        assert!(stats.drag_samples > 0, "drag was sampled");
        heap.verify().expect("heap valid after the workload");
    }

    #[test]
    fn burst_workload_copies_in_flight_requests_under_a_small_trigger() {
        let mut heap = small_heap();
        let stats = run_burst_workload(
            &mut heap,
            &BurstParams {
                bursts: 12,
                requests_per_burst: 512,
                ..BurstParams::default()
            },
        );
        assert!(stats.collections > 0);
        assert!(
            stats.words_copied > 0,
            "a sub-burst trigger copies live requests"
        );
        heap.verify().expect("heap valid after the workload");
    }

    #[test]
    fn pool_workload_reclaims_sessions_through_the_guardian() {
        let mut heap = small_heap();
        let stats = run_pool_workload(
            &mut heap,
            &PoolParams {
                sessions: 128,
                rounds: 1500,
                ..PoolParams::default()
            },
        );
        assert!(stats.collections > 0);
        assert!(stats.reclaimed > 0, "dead sessions were polled back");
        assert!(stats.guardian_visited > 0, "guardian entries were visited");
        heap.verify().expect("heap valid after the workload");
    }

    #[test]
    fn workloads_are_deterministic() {
        let run = || {
            let mut heap = small_heap();
            let s = run_pool_workload(
                &mut heap,
                &PoolParams {
                    sessions: 64,
                    rounds: 600,
                    ..PoolParams::default()
                },
            );
            (
                s.collections,
                s.words_copied,
                s.guardian_visited,
                s.reclaimed,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn drag_ring_sees_guardian_preserved_corpses() {
        // With a pool whose sessions tenure before dying, at least one
        // post-collection sample must catch a session that is dead in
        // truth but still weakly reachable (awaiting finalization).
        let mut heap = small_heap();
        let stats = run_pool_workload(
            &mut heap,
            &PoolParams {
                sessions: 256,
                rounds: 2000,
                ..PoolParams::default()
            },
        );
        assert!(stats.drag_peak > 0, "liveness lag was observed");
    }
}
