//! A generational-hypothesis mutator: most objects die young, some
//! survive to middle age, a few live (nearly) forever. Used to
//! characterise the whole collector (experiment E11) and as background
//! load in other experiments.

use crate::keys::KeyGen;
use guardians_gc::{Heap, PhaseTimes, Rooted, Value};

/// Parameters for the lifetime workload.
#[derive(Clone, Debug)]
pub struct LifetimeParams {
    /// Objects to allocate.
    pub allocations: usize,
    /// Fraction that survives infancy (roots held for a while).
    pub survivor_fraction: f64,
    /// Fraction of survivors that become effectively permanent.
    pub long_lived_fraction: f64,
    /// Number of root slots for the temporary-survivor window.
    pub window: usize,
    /// Payload size: list length per allocation unit.
    pub list_len: usize,
    /// Call `maybe_collect` every this many allocations.
    pub safe_point_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LifetimeParams {
    fn default() -> Self {
        LifetimeParams {
            allocations: 20_000,
            survivor_fraction: 0.1,
            long_lived_fraction: 0.05,
            window: 256,
            list_len: 4,
            safe_point_every: 64,
            seed: 0x11FE,
        }
    }
}

/// What the workload observed.
#[derive(Clone, Debug, Default)]
pub struct LifetimeStats {
    /// Collections that ran.
    pub collections: u64,
    /// Total words copied by those collections.
    pub words_copied: u64,
    /// Maximum single-collection duration, in nanoseconds.
    pub max_pause_ns: u128,
    /// Total GC time, nanoseconds.
    pub total_gc_ns: u128,
    /// Cumulative per-phase pause breakdown across all collections.
    pub phase_times: PhaseTimes,
    /// Permanent objects retained at the end.
    pub permanent: usize,
}

/// Runs the workload on `heap`, driving `maybe_collect` at safe points.
/// Returns observed statistics; the permanent roots are dropped on exit.
pub fn run_lifetime_workload(heap: &mut Heap, params: &LifetimeParams) -> LifetimeStats {
    let mut gen = KeyGen::new(params.seed, 0.0);
    let mut window: Vec<Option<Rooted>> = (0..params.window).map(|_| None).collect();
    let mut permanent: Vec<Rooted> = Vec::new();
    let mut stats = LifetimeStats::default();
    let start_collections = heap.collection_count();

    for i in 0..params.allocations {
        // Build a small list payload.
        let mut list = Value::NIL;
        for k in 0..params.list_len {
            list = heap.cons(Value::fixnum((i * 31 + k) as i64), list);
        }
        if gen.flip(params.survivor_fraction) {
            if gen.flip(params.long_lived_fraction) {
                permanent.push(heap.root(list));
            } else {
                // Occupy a window slot, evicting (killing) its tenant.
                let slot = gen.uniform(window.len().max(1));
                window[slot] = Some(heap.root(list));
            }
        }
        if params.safe_point_every > 0 && i % params.safe_point_every == 0 {
            if let Some(report) = heap.maybe_collect() {
                stats.max_pause_ns = stats.max_pause_ns.max(report.duration.as_nanos());
            }
        }
    }
    stats.collections = heap.collection_count() - start_collections;
    stats.words_copied = heap.stats().total_words_copied;
    stats.total_gc_ns = heap.stats().total_gc_time.as_nanos();
    stats.phase_times = heap.stats().total_phase_times;
    stats.permanent = permanent.len();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardians_gc::GcConfig;

    #[test]
    fn workload_drives_collections_and_stays_valid() {
        let mut heap = Heap::new(GcConfig {
            trigger_bytes: 64 * 1024,
            ..GcConfig::new()
        });
        let params = LifetimeParams {
            allocations: 5_000,
            ..LifetimeParams::default()
        };
        let stats = run_lifetime_workload(&mut heap, &params);
        assert!(stats.collections > 0, "the trigger fired");
        assert!(stats.words_copied > 0, "survivors were copied");
        heap.verify().expect("heap valid after the workload");
    }

    #[test]
    fn workload_is_deterministic_in_allocation_counts() {
        let run = || {
            let mut heap = Heap::new(GcConfig {
                trigger_bytes: 64 * 1024,
                ..GcConfig::new()
            });
            let params = LifetimeParams {
                allocations: 3_000,
                ..LifetimeParams::default()
            };
            run_lifetime_workload(&mut heap, &params);
            (heap.stats().pairs_allocated, heap.collection_count())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn higher_survival_copies_more() {
        let run = |survivor_fraction: f64| {
            let mut heap = Heap::new(GcConfig {
                trigger_bytes: 64 * 1024,
                ..GcConfig::new()
            });
            let params = LifetimeParams {
                allocations: 5_000,
                survivor_fraction,
                ..LifetimeParams::default()
            };
            run_lifetime_workload(&mut heap, &params).words_copied
        };
        assert!(run(0.5) > run(0.01) * 2, "survival drives copying cost");
    }
}
