#![warn(missing_docs)]

//! Deterministic workload generators and reporting helpers for the
//! benchmark harness.
//!
//! The paper's claims are about *shapes* — overhead proportional to work
//! done, to clean-ups performed, to entries moved — so every generator
//! here is seeded and replayable: the same parameters always produce the
//! same operation stream, letting the benchmarks compare mechanisms on
//! identical inputs.

pub mod churn;
pub mod keys;
pub mod lifetime;
pub mod policy;
pub mod report;

pub use churn::{table_script, ChurnParams, TableOp};
pub use keys::KeyGen;
pub use lifetime::{run_lifetime_workload, LifetimeParams, LifetimeStats};
pub use policy::{
    run_burst_workload, run_cache_workload, run_pool_workload, BurstParams, CacheParams,
    PolicyStats, PoolParams,
};
pub use report::Table;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A seeded RNG for reproducible workloads.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    #[test]
    fn rng_is_deterministic() {
        use rand::Rng;
        let mut a = super::rng(7);
        let mut b = super::rng(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
