//! Delta-debugging shrinker: replays a failing trace with chunks of ops
//! removed until no single-op removal keeps it failing, then emits the
//! minimal trace as ready-to-commit regression text.

use crate::ops::Trace;
use crate::rig::{quiet_panics, run_trace};

/// Shrinks `trace` (which must fail) to a locally minimal failing trace:
/// removing any single remaining op makes the failure disappear. The
/// failure criterion is "any divergence" — the shrunk trace may fail
/// differently from the original, which is fine for a regression corpus.
pub fn shrink(trace: &Trace) -> Trace {
    quiet_panics(|| shrink_with(trace, |t| run_trace(t).is_err()))
}

/// [`shrink`] with an explicit failure predicate (used by the shrinker's
/// own tests; `fails` must hold for `trace` itself).
pub fn shrink_with(trace: &Trace, fails: impl Fn(&Trace) -> bool) -> Trace {
    let candidate = |ops: &[crate::ops::Op]| Trace {
        seed: trace.seed,
        config: trace.config.clone(),
        ops: ops.to_vec(),
    };
    let ops = ddmin(&trace.ops, |ops| fails(&candidate(ops)));
    candidate(&ops)
}

/// The generic delta-debugging core: shrinks any failing op sequence to a
/// locally minimal failing subsequence (removing any single remaining
/// element makes `fails` return false). `fails` must hold for `items`
/// itself. Shared by [`shrink_with`] and by other schedule-driven rigs
/// (the multi-zone soak) whose op types are not this crate's [`Trace`].
pub fn ddmin<T: Clone>(items: &[T], fails: impl Fn(&[T]) -> bool) -> Vec<T> {
    assert!(fails(items), "ddmin called on a passing sequence");
    let mut ops = items.to_vec();
    let mut chunk = (ops.len() / 2).max(1);
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < ops.len() {
            let mut attempt = ops.clone();
            attempt.drain(i..(i + chunk).min(attempt.len()));
            if fails(&attempt) {
                ops = attempt;
                progressed = true;
                // Re-test from the same index: the next chunk slid down.
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            if !progressed {
                break;
            }
        } else if !progressed {
            chunk = (chunk / 2).max(1);
        }
    }
    ops
}

/// Formats a failure as a committable artifact: the one-line failure
/// followed by the minimal trace (shrunk from `trace`), ready to be
/// written under `crates/torture/regressions/`.
pub fn explain(trace: &Trace, failure: &crate::rig::Failure) -> String {
    let minimal = shrink(trace);
    let refailure = quiet_panics(|| run_trace(&minimal).expect_err("shrunk trace still fails"));
    format!(
        "{failure}\n\
         shrunk to {} of {} ops, failing with:\n{refailure}\n\
         --- minimal trace (commit under crates/torture/regressions/) ---\n{}",
        minimal.ops.len(),
        trace.ops.len(),
        minimal.to_text()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::ops::Op;

    #[test]
    fn shrinks_to_the_single_poison_op() {
        // Synthetic failure criterion: "the trace contains a Collect of
        // generation 3" — shrinking must isolate exactly that op.
        let t = generate(4242, 400);
        let poison = |t: &Trace| t.ops.iter().any(|o| matches!(o, Op::Collect { gen: 3 }));
        if !poison(&t) {
            // Make sure the poison is present somewhere in the middle.
            let mut t = t;
            t.ops.insert(200, Op::Collect { gen: 3 });
            let min = shrink_with(&t, poison);
            assert_eq!(min.ops, vec![Op::Collect { gen: 3 }]);
            return;
        }
        let min = shrink_with(&t, poison);
        assert_eq!(min.ops, vec![Op::Collect { gen: 3 }]);
    }
}
