//! Model-based torture rig for the guardians collector.
//!
//! The rig interprets a randomly generated (but fully deterministic)
//! sequence of heap operations — allocation, mutation, rooting, guardian
//! registration and polling, weak pairs, forced collections — against two
//! implementations at once: the real [`guardians_gc::Heap`] and a
//! shadow-heap oracle ([`model::Model`]) that implements the paper's
//! semantics directly over plain Rust collections. After every collection
//! the rig compares every observable: poll results and their FIFO order,
//! weak-car liveness, the live object graph's shape, per-generation
//! occupancy, and the collector's own guardian counters.
//!
//! On top of the oracle sits segment-exhaustion fault injection
//! ([`GcConfig::fail_acquisition_at`](guardians_gc::GcConfig)): a sweep
//! re-runs a trace with the heap's Nth segment acquisition failing, for
//! every N, asserting each failure point is clean — the op either
//! completes or errors with the heap still `verify()`-valid, never
//! corrupted.
//!
//! Failures print a one-line seed + op locator; [`shrink()`] replays with
//! ops removed until locally minimal and emits the result as a
//! ready-to-commit regression trace (see `regressions/README.md`).

#![warn(missing_docs)]

pub mod gen;
pub mod model;
pub mod ops;
pub mod rig;
pub mod scheme_diff;
pub mod shrink;

pub use gen::{config_for_seed, generate};
pub use ops::{InterpMode, NodeKind, Op, Ref, TortureConfig, Trace};
pub use rig::{quiet_panics, run_trace, run_trace_traced, Failure, RunStats};
pub use scheme_diff::{run_scheme_differential, SchemeDiffStats};
pub use shrink::{ddmin, explain, shrink};

/// Generates and runs one seed: the basic unit of a torture campaign.
pub fn check_seed(seed: u64, nops: usize) -> Result<RunStats, Failure> {
    run_trace(&generate(seed, nops))
}

/// [`check_seed`] under `workers` collector threads: the unit of the
/// parallel campaign. The shadow oracle is engine-agnostic, so a pass
/// here *is* the parallel engine's model-equivalence check (same live
/// graph, same weak-car outcomes, same guardian queue contents in the
/// same FIFO order).
pub fn check_seed_parallel(seed: u64, nops: usize, workers: usize) -> Result<RunStats, Failure> {
    let mut trace = generate(seed, nops);
    trace.config.workers = workers;
    run_trace(&trace)
}

/// [`check_seed`] under a bounded-pause budget (in microseconds): the
/// unit of the incremental campaign. Like the parallel leg, the shadow
/// oracle is engine-agnostic, so a pass here is the incremental engine's
/// model-equivalence check — and because the event trace is checked per
/// collection when enabled, guardian/weak observables must match the
/// serial engine's exactly, whatever the budget slices the work into.
pub fn check_seed_budget(seed: u64, nops: usize, budget_us: u64) -> Result<RunStats, Failure> {
    let mut trace = generate(seed, nops);
    trace.config.pause_budget = Some(budget_us);
    run_trace(&trace)
}

/// Runs one seed's scheme-differential leg: the seed's guardian-heavy
/// Scheme workload under the staged anchor and under `interp`, on the
/// seed's rotated heap configuration (see [`config_for_seed`]) —
/// observables byte-identical, and for the VM tier the deterministic
/// heap counters too.
pub fn check_seed_scheme(
    seed: u64,
    nforms: usize,
    interp: InterpMode,
) -> Result<SchemeDiffStats, Failure> {
    let mut cfg = config_for_seed(seed);
    cfg.interp = interp;
    run_scheme_differential(seed, nforms, &cfg)
}

/// [`check_seed`] with the GC event trace enabled and cross-checked
/// against the shadow model after every collection; returns the full
/// event stream for export (e.g. as a Chrome trace).
pub fn check_seed_traced(
    seed: u64,
    nops: usize,
) -> Result<(RunStats, Vec<guardians_gc::TracedEvent>), Failure> {
    run_trace_traced(&generate(seed, nops))
}

/// Generates and runs one seed, then re-runs it with the
/// segment-acquisition fault placed at every `stride`-th offset of the
/// lifetime acquisition count the fault-free run needed (`stride = 1` is
/// the exhaustive sweep of the acceptance criteria). Returns
/// `(fault_runs, faults_fired)` on success or the first divergence.
pub fn fault_sweep(seed: u64, nops: usize, stride: u64) -> Result<(u64, u64), Failure> {
    assert!(stride > 0);
    let trace = generate(seed, nops);
    let base = run_trace(&trace)?;
    let mut runs = 0;
    let mut fired = 0;
    let mut offset = 0;
    while offset <= base.acquisitions {
        let mut t = trace.clone();
        t.config.fail_acquisition_at = Some(offset);
        let stats = run_trace(&t)?;
        runs += 1;
        fired += stats.faults_hit;
        offset += stride;
    }
    Ok((runs, fired))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_seed_agrees() {
        let stats = check_seed(1, 200).unwrap_or_else(|f| panic!("{f}"));
        assert!(stats.collections > 0, "trace exercised the collector");
        assert!(stats.checks > 0);
    }

    #[test]
    fn traced_runs_agree_and_return_events() {
        let (stats, events) = check_seed_traced(1, 200).unwrap_or_else(|f| panic!("{f}"));
        assert!(stats.collections > 0);
        let ends = events
            .iter()
            .filter(|e| matches!(e.event, guardians_gc::GcEvent::CollectionEnd { .. }))
            .count() as u64;
        assert_eq!(ends, stats.collections, "one CollectionEnd per collection");
        // Tracing must not change behaviour: same oracle outcomes.
        let plain = check_seed(1, 200).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(plain.finalized, stats.finalized);
        assert_eq!(plain.polled, stats.polled);
        assert_eq!(plain.applied, stats.applied);
    }
}
