//! The shadow-heap oracle: a plain-`Vec`/`HashMap` model of the paper's
//! semantics, independent of the real collector's representation.
//!
//! The model deliberately re-derives everything from first principles —
//! reachability is a BFS over id-edges, guardian queues are `VecDeque`s
//! keyed by registration order, weak cars break by a set-membership test —
//! so that agreement with the real heap is evidence, not tautology.
//!
//! One point deserves spelling out because the whole oracle leans on it:
//! **the collector's floating-garbage behaviour is exact, not fuzzy**.
//! When generations `0..=g` are collected, every object physically residing
//! in a generation `> g` survives verbatim — reachable or not — and the
//! remembered-set scan walks *entire* dirty old segments, so the young
//! objects such floating garbage points at are retained too. Any old
//! object holding an old→young edge is guaranteed to sit in a dirty
//! segment (the write barrier dirties it at the store, and the weak/remset
//! scans re-mark segments that still point younger). The model therefore
//! seeds its survivor closure with *all* physical objects of generations
//! `> g`, and that is precisely — not conservatively — what the real
//! collector retains.

use crate::ops::{NodeKind, Ref, TortureConfig};
use std::collections::{HashMap, HashSet, VecDeque};

/// Shadow image of one rig-allocated node.
#[derive(Clone, Debug)]
pub struct MNode {
    /// Object shape.
    pub kind: NodeKind,
    /// Current generation.
    pub gen: u8,
    /// First strong edge (pairs and vectors; `Null` on leaves).
    pub left: Ref,
    /// Second strong edge.
    pub right: Ref,
    /// The attached weak pair's car (vectors only); `Null` models `#f`.
    pub weak_car: Ref,
    /// Vector extra slots / bytevector length (0 otherwise).
    pub payload: u32,
}

/// Shadow image of one guardian's tconc.
#[derive(Clone, Debug)]
pub struct MTconc {
    /// Current generation.
    pub gen: u8,
    /// The inaccessible group, in exact FIFO append order.
    pub queue: VecDeque<Ref>,
    /// Whether the rig still holds the (rooting) guardian handle.
    pub handle: bool,
}

/// Shadow image of one standalone weak pair.
#[derive(Clone, Debug)]
pub struct MWeak {
    /// Current generation.
    pub gen: u8,
    /// The watched object; `Null` models a broken car (`#f`).
    pub target: Ref,
    /// Whether the rig still roots it. An unrooted weak pair lingers as
    /// floating garbage until its generation is collected.
    pub rooted: bool,
}

/// One protected-list entry: (obj, rep, tconc) by id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MEntry {
    /// Guardian index of the watching tconc.
    pub tconc: u32,
    /// The watched object.
    pub obj: Ref,
    /// The representative enqueued when `obj` proves inaccessible.
    pub rep: Ref,
}

/// What the model predicts one collection did — compared field-for-field
/// against the real [`CollectionReport`](guardians_gc::CollectionReport).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MReport {
    /// Protected entries examined (paper block 1).
    pub visited: u64,
    /// Entries whose rep was salvaged into its tconc (block 2).
    pub finalized: u64,
    /// Entries re-parked because their object stayed accessible (block 3).
    pub held: u64,
    /// Entries discarded because their guardian was unreachable.
    pub dropped: u64,
    /// Fixpoint rounds, counting the final empty round.
    pub loop_iterations: u64,
    /// Weak cars the post-guardian weak pass breaks to `#f` — trackers
    /// included, since they are ordinary weak pairs of the heap under
    /// test. Exact under the paper's pass ordering (not the ablation).
    pub weak_cars_broken: u64,
    /// Weak cars the pass forwards to a copied referent (ditto).
    pub weak_cars_forwarded: u64,
    /// Node ids reclaimed by this collection (trackers must break).
    pub reclaimed_nodes: Vec<u32>,
    /// Guardian indices whose tconc was reclaimed.
    pub reclaimed_tconcs: Vec<u32>,
    /// Standalone weak-pair ids reclaimed.
    pub reclaimed_weaks: Vec<u32>,
}

/// The shadow heap.
#[derive(Clone, Debug)]
pub struct Model {
    /// The configuration the paired real heap runs under.
    pub cfg: TortureConfig,
    /// Physical nodes by id (reclaimed nodes are removed).
    pub nodes: HashMap<u32, MNode>,
    /// Physical tconcs by guardian index.
    pub tconcs: HashMap<u32, MTconc>,
    /// Physical standalone weak pairs by id.
    pub weaks: HashMap<u32, MWeak>,
    /// Node-tracker generations (trackers are immortal rooted weak pairs,
    /// one per node ever allocated).
    pub node_tracker_gen: HashMap<u32, u8>,
    /// Tconc-tracker generations.
    pub tconc_tracker_gen: HashMap<u32, u8>,
    /// Strongly rooted node ids.
    pub roots: HashSet<u32>,
    /// Protected lists, one per generation (flat ablation uses only `[0]`).
    pub protected: Vec<Vec<MEntry>>,
}

impl Model {
    /// An empty shadow heap for `cfg`.
    pub fn new(cfg: TortureConfig) -> Model {
        let gens = cfg.generations as usize;
        Model {
            cfg,
            nodes: HashMap::new(),
            tconcs: HashMap::new(),
            weaks: HashMap::new(),
            node_tracker_gen: HashMap::new(),
            tconc_tracker_gen: HashMap::new(),
            roots: HashSet::new(),
            protected: vec![Vec::new(); gens],
        }
    }

    /// Whether `r` names a currently physical object (`Null` is not).
    pub fn physical(&self, r: Ref) -> bool {
        match r {
            Ref::Null => false,
            Ref::Node(id) => self.nodes.contains_key(&id),
            Ref::Tconc(g) => self.tconcs.contains_key(&g),
        }
    }

    /// Degrades a reference to `Null` when its object no longer exists,
    /// making every op total (and shrinking safe: removing the allocation
    /// an op depends on turns the op into a no-op, on both sides).
    pub fn normalize(&self, r: Ref) -> Ref {
        if self.physical(r) {
            r
        } else {
            Ref::Null
        }
    }

    /// Registrations currently watching guardian `g`'s tconc, across all
    /// protected lists (mirrors `Heap::guardian_watched`).
    pub fn watched(&self, g: u32) -> usize {
        self.protected
            .iter()
            .flatten()
            .filter(|e| e.tconc == g)
            .count()
    }

    /// Physical weak pairs residing in `gen`: node trackers, tconc
    /// trackers, standalone weak pairs, and the weak pair attached to each
    /// vector node. Each is 2 words in the real heap's weak-pair space.
    pub fn weak_pairs_in_gen(&self, gen: u8) -> usize {
        self.node_tracker_gen
            .values()
            .filter(|g| **g == gen)
            .count()
            + self
                .tconc_tracker_gen
                .values()
                .filter(|g| **g == gen)
                .count()
            + self.weaks.values().filter(|w| w.gen == gen).count()
            + self
                .nodes
                .values()
                .filter(|n| n.kind == NodeKind::Vector && n.gen == gen)
                .count()
    }

    /// Collects generations `0..=g`, mutating the shadow heap and
    /// returning the predicted observables.
    pub fn collect(&mut self, g: u8) -> MReport {
        let max_gen = self.cfg.generations - 1;
        let target = self.cfg.promotion.target(g, max_gen);
        let mut report = MReport::default();

        // ---- Strong survivor closure ------------------------------------
        // Seeds: rig roots, guardian handles (they root their tconc), and
        // every physical object already in an uncollected generation (see
        // the module doc for why the last is exact).
        let mut live_n: HashSet<u32> = HashSet::new();
        let mut live_t: HashSet<u32> = HashSet::new();
        let mut work: VecDeque<Ref> = VecDeque::new();
        for &id in &self.roots {
            work.push_back(Ref::Node(id));
        }
        for (&gi, tc) in &self.tconcs {
            if tc.handle || tc.gen > g {
                work.push_back(Ref::Tconc(gi));
            }
        }
        for (&id, n) in &self.nodes {
            if n.gen > g {
                work.push_back(Ref::Node(id));
            }
        }
        self.close(&mut live_n, &mut live_t, work);

        // ---- Guardian pass (paper Section 4 pseudo-code) ----------------
        // Block 1: drain the protected lists of the collected generations,
        // partitioning on the accessibility of each watched object.
        let lists: Vec<usize> = if self.cfg.flat_protected {
            vec![0]
        } else {
            (0..=(g as usize).min(self.protected.len() - 1)).collect()
        };
        let mut pend_hold: Vec<MEntry> = Vec::new();
        let mut pend_final: Vec<MEntry> = Vec::new();
        for i in lists {
            for e in std::mem::take(&mut self.protected[i]) {
                report.visited += 1;
                if accessible(&live_n, &live_t, e.obj) {
                    pend_hold.push(e);
                } else {
                    pend_final.push(e);
                }
            }
        }

        // Block 2: the fixpoint loop. Round membership is decided from the
        // liveness state at the start of the round; the reps salvaged in a
        // round (and everything they reach) only join the live set after
        // the whole round, mirroring the collector's end-of-round
        // kleene-sweep. The final empty round is counted, as in the real
        // pass.
        loop {
            report.loop_iterations += 1;
            let (round, rest): (Vec<MEntry>, Vec<MEntry>) = pend_final
                .into_iter()
                .partition(|e| live_t.contains(&e.tconc));
            pend_final = rest;
            if round.is_empty() {
                break;
            }
            let mut salvaged: VecDeque<Ref> = VecDeque::new();
            for e in round {
                report.finalized += 1;
                self.tconcs
                    .get_mut(&e.tconc)
                    .expect("live tconc is physical")
                    .queue
                    .push_back(e.rep);
                salvaged.push_back(e.rep);
            }
            self.close(&mut live_n, &mut live_t, salvaged);
        }
        report.dropped += pend_final.len() as u64;

        // Block 3: held entries migrate to the target generation's list if
        // their guardian survived. A distinct agent is forwarded on the
        // spot — which can resurrect the tconc of a *later* entry in the
        // same loop (`forward` marks the object immediately; only its
        // children wait for the closing sweep), so liveness is updated
        // object-by-object and the reachability closure runs after.
        let dest = if self.cfg.flat_protected {
            0
        } else {
            target as usize
        };
        let mut held: Vec<MEntry> = Vec::new();
        let mut agents: VecDeque<Ref> = VecDeque::new();
        for e in pend_hold {
            if live_t.contains(&e.tconc) {
                report.held += 1;
                if e.rep != e.obj && !accessible(&live_n, &live_t, e.rep) {
                    // Mark the agent live immediately (it is "forwarded"
                    // on the spot) but queue its *children* for the
                    // deferred closure — `close` skips already-live
                    // objects, and the fields are immutable mid-pass.
                    match e.rep {
                        Ref::Node(id) => {
                            live_n.insert(id);
                            let n = &self.nodes[&id];
                            agents.push_back(n.left);
                            agents.push_back(n.right);
                        }
                        Ref::Tconc(gi) => {
                            live_t.insert(gi);
                            agents.extend(self.tconcs[&gi].queue.iter().copied());
                        }
                        Ref::Null => {}
                    }
                }
                held.push(e);
            } else {
                report.dropped += 1;
            }
        }
        self.close(&mut live_n, &mut live_t, agents);
        self.protected[dest].extend(held);

        // ---- Weak-pair pass (after the guardian pass: §4) ---------------
        // Every weak slot still physical after this collection has its car
        // forwarded (target survived — by roots or by salvage) or broken to
        // #f (target was in from-space and died). Targets outside
        // from-space are untouched.
        let broken = |r: Ref, nodes: &HashMap<u32, MNode>, tconcs: &HashMap<u32, MTconc>| -> bool {
            match r {
                Ref::Null => false,
                Ref::Node(id) => nodes[&id].gen <= g && !live_n.contains(&id),
                Ref::Tconc(gi) => tconcs[&gi].gen <= g && !live_t.contains(&gi),
            }
        };
        // A car counts as *forwarded* when it points into from-space at an
        // object that was copied out (the pass rewrites it to the new
        // address); only from-space cars are ever touched, and every weak
        // pair holding one is provably scanned: it was either copied this
        // collection or sits in a dirty old segment (old→young pointer).
        let in_from =
            |r: Ref, nodes: &HashMap<u32, MNode>, tconcs: &HashMap<u32, MTconc>| -> bool {
                match r {
                    Ref::Null => false,
                    Ref::Node(id) => nodes[&id].gen <= g,
                    Ref::Tconc(gi) => tconcs[&gi].gen <= g,
                }
            };
        let survives_weak: Vec<u32> = self
            .weaks
            .iter()
            .filter(|(_, w)| w.rooted || w.gen > g)
            .map(|(&id, _)| id)
            .collect();
        for id in survives_weak {
            let t = self.weaks[&id].target;
            if broken(t, &self.nodes, &self.tconcs) {
                report.weak_cars_broken += 1;
                self.weaks.get_mut(&id).expect("surviving weak").target = Ref::Null;
            } else if in_from(t, &self.nodes, &self.tconcs) {
                report.weak_cars_forwarded += 1;
            }
        }
        let surviving_vectors: Vec<u32> = self
            .nodes
            .iter()
            .filter(|(&id, n)| n.kind == NodeKind::Vector && (n.gen > g || live_n.contains(&id)))
            .map(|(&id, _)| id)
            .collect();
        for id in surviving_vectors {
            let t = self.nodes[&id].weak_car;
            if broken(t, &self.nodes, &self.tconcs) {
                report.weak_cars_broken += 1;
                self.nodes.get_mut(&id).expect("surviving vector").weak_car = Ref::Null;
            } else if in_from(t, &self.nodes, &self.tconcs) {
                report.weak_cars_forwarded += 1;
            }
        }
        // Trackers: one immortal rooted weak pair per object ever
        // allocated, in lockstep generation with its referent while the
        // referent lives. A physical from-space referent's tracker car is
        // forwarded if it survived and broken if it did not; trackers of
        // already-reclaimed objects hold `#f` and are never touched.
        for (&id, n) in &self.nodes {
            if n.gen <= g {
                if live_n.contains(&id) {
                    report.weak_cars_forwarded += 1;
                } else {
                    report.weak_cars_broken += 1;
                }
            }
        }
        for (&gi, tc) in &self.tconcs {
            if tc.gen <= g {
                if live_t.contains(&gi) {
                    report.weak_cars_forwarded += 1;
                } else {
                    report.weak_cars_broken += 1;
                }
            }
        }

        // ---- Reclaim and promote ----------------------------------------
        self.nodes.retain(|&id, n| {
            if n.gen > g {
                return true;
            }
            if live_n.contains(&id) {
                n.gen = target;
                true
            } else {
                report.reclaimed_nodes.push(id);
                false
            }
        });
        self.tconcs.retain(|&gi, tc| {
            if tc.gen > g {
                return true;
            }
            if live_t.contains(&gi) {
                tc.gen = target;
                true
            } else {
                report.reclaimed_tconcs.push(gi);
                false
            }
        });
        self.weaks.retain(|&id, w| {
            if w.gen > g {
                return true;
            }
            if w.rooted {
                w.gen = target;
                true
            } else {
                report.reclaimed_weaks.push(id);
                false
            }
        });
        for gen in self
            .node_tracker_gen
            .values_mut()
            .chain(self.tconc_tracker_gen.values_mut())
        {
            if *gen <= g {
                *gen = target;
            }
        }
        report.reclaimed_nodes.sort_unstable();
        report.reclaimed_tconcs.sort_unstable();
        report.reclaimed_weaks.sort_unstable();
        report
    }

    /// Closes `live_n`/`live_t` over strong edges starting from `work`:
    /// node left/right edges and tconc queue contents. Weak cars are not
    /// strong and are never followed.
    fn close(&self, live_n: &mut HashSet<u32>, live_t: &mut HashSet<u32>, mut work: VecDeque<Ref>) {
        while let Some(r) = work.pop_front() {
            match r {
                Ref::Null => {}
                Ref::Node(id) => {
                    if !live_n.insert(id) {
                        continue;
                    }
                    let n = self.nodes.get(&id).unwrap_or_else(|| {
                        panic!("strong edge to non-physical node n{id} — model invariant broken")
                    });
                    work.push_back(n.left);
                    work.push_back(n.right);
                }
                Ref::Tconc(gi) => {
                    if !live_t.insert(gi) {
                        continue;
                    }
                    let tc = self.tconcs.get(&gi).unwrap_or_else(|| {
                        panic!("strong edge to non-physical tconc t{gi} — model invariant broken")
                    });
                    for &item in &tc.queue {
                        work.push_back(item);
                    }
                }
            }
        }
    }
}

fn accessible(live_n: &HashSet<u32>, live_t: &HashSet<u32>, r: Ref) -> bool {
    match r {
        Ref::Null => true,
        Ref::Node(id) => live_n.contains(&id),
        Ref::Tconc(gi) => live_t.contains(&gi),
    }
}
