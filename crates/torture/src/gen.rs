//! Seed-driven trace generation. One `u64` seed determines the heap
//! configuration *and* the full op sequence, via the vendored
//! xoshiro256++ `SmallRng` — deterministic across runs and builds, so a
//! seed printed by a failing run reproduces the failure anywhere.

use crate::ops::{Op, Ref, TortureConfig, Trace};
use guardians_gc::Promotion;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives the heap configuration a seed runs under: the promotion policy
/// and the flat-protected ablation are rotated so the fleet of seeds
/// covers every combination. The weak-ordering ablation is never enabled
/// here — the model implements the paper's correct ordering, so that
/// ablation is exercised by a dedicated regression trace instead.
pub fn config_for_seed(seed: u64) -> TortureConfig {
    TortureConfig {
        promotion: match seed % 3 {
            0 => Promotion::NextGeneration,
            1 => Promotion::Capped(2),
            _ => Promotion::SameGeneration,
        },
        flat_protected: seed % 4 == 3,
        ..TortureConfig::default()
    }
}

/// Generates a trace of `nops` ops from `seed`.
pub fn generate(seed: u64, nops: usize) -> Trace {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Gen {
        ops: Vec::with_capacity(nops),
        next_id: 0,
        next_gi: 0,
        next_wid: 0,
        nodes: Vec::new(),
        typed: Vec::new(),
        guardians: Vec::new(),
        weaks: Vec::new(),
        typed_weaks: Vec::new(),
        rooted: Vec::new(),
    };
    // Seed the heap with a few rooted nodes so early ops have referents.
    for _ in 0..4 {
        g.alloc(&mut rng);
        g.root_last();
    }
    while g.ops.len() < nops {
        g.step(&mut rng);
    }
    g.ops.truncate(nops);
    Trace {
        seed: Some(seed),
        config: config_for_seed(seed),
        ops: g.ops,
    }
}

struct Gen {
    ops: Vec<Op>,
    next_id: u32,
    next_gi: u32,
    next_wid: u32,
    nodes: Vec<u32>,
    /// The subset of `nodes` allocated through the typed API (typed edges
    /// and typed weaks may only reference these).
    typed: Vec<u32>,
    guardians: Vec<u32>,
    weaks: Vec<u32>,
    /// The subset of `weaks` that are typed `Weak<T>`s (`tupgrade` picks
    /// from these).
    typed_weaks: Vec<u32>,
    rooted: Vec<u32>,
}

impl Gen {
    /// Picks a node id, biased toward recent allocations (recency keeps
    /// the generated graph's wavefront busy without abandoning old-gen
    /// objects entirely).
    fn pick_node(&self, rng: &mut SmallRng) -> Option<u32> {
        if self.nodes.is_empty() {
            return None;
        }
        let n = self.nodes.len();
        let i = if n > 20 && rng.gen_range(0..100) < 60 {
            rng.gen_range(n - 20..n)
        } else {
            rng.gen_range(0..n)
        };
        Some(self.nodes[i])
    }

    fn pick_ref(&self, rng: &mut SmallRng) -> Ref {
        let roll = rng.gen_range(0..100);
        if roll < 15 {
            Ref::Null
        } else if roll < 25 && !self.guardians.is_empty() {
            Ref::Tconc(self.guardians[rng.gen_range(0..self.guardians.len())])
        } else {
            self.pick_node(rng).map_or(Ref::Null, Ref::Node)
        }
    }

    /// Picks a typed-node operand: `Null` sometimes, else a random typed
    /// node (edges and weaks of typed nodes may only reference typed
    /// nodes).
    fn pick_typed_ref(&self, rng: &mut SmallRng) -> Ref {
        if self.typed.is_empty() || rng.gen_range(0..4) == 0 {
            Ref::Null
        } else {
            Ref::Node(self.typed[rng.gen_range(0..self.typed.len())])
        }
    }

    fn alloc(&mut self, rng: &mut SmallRng) {
        let id = self.next_id;
        self.next_id += 1;
        let op = match rng.gen_range(0..100) {
            0..=47 => Op::AllocPair {
                id,
                left: self.pick_ref(rng),
                right: self.pick_ref(rng),
            },
            48..=55 => {
                self.typed.push(id);
                Op::AllocTyped {
                    id,
                    left: self.pick_typed_ref(rng),
                    right: self.pick_typed_ref(rng),
                }
            }
            56..=79 => {
                // Mostly small vectors; 1-in-12 is a multi-segment run.
                let payload = if rng.gen_range(0..12) == 0 {
                    rng.gen_range(600..1400)
                } else {
                    rng.gen_range(0..8)
                };
                Op::AllocVector {
                    id,
                    payload,
                    left: self.pick_ref(rng),
                    right: self.pick_ref(rng),
                }
            }
            80..=89 => Op::AllocBytevector {
                id,
                len: if rng.gen_range(0..10) == 0 {
                    rng.gen_range(5000..9000)
                } else {
                    rng.gen_range(0..64)
                },
            },
            _ => Op::AllocString { id },
        };
        self.ops.push(op);
        self.nodes.push(id);
    }

    fn root_last(&mut self) {
        let id = *self.nodes.last().expect("just allocated");
        self.ops.push(Op::AddRoot { node: id });
        self.rooted.push(id);
    }

    fn step(&mut self, rng: &mut SmallRng) {
        match rng.gen_range(0..100) {
            0..=24 => {
                self.alloc(rng);
                // Keep about half of fresh allocations reachable: root
                // some, hang others off an existing node.
                match rng.gen_range(0..10) {
                    0..=2 => self.root_last(),
                    3..=5 => {
                        let fresh = *self.nodes.last().expect("just allocated");
                        if let Some(host) = self.pick_node(rng) {
                            self.ops.push(Op::SetEdge {
                                node: host,
                                slot: rng.gen_range(0..2),
                                to: Ref::Node(fresh),
                            });
                        }
                    }
                    _ => {}
                }
            }
            25..=42 => {
                if let Some(node) = self.pick_node(rng) {
                    self.ops.push(Op::SetEdge {
                        node,
                        slot: rng.gen_range(0..2),
                        to: self.pick_ref(rng),
                    });
                }
            }
            43..=47 => {
                if let Some(node) = self.pick_node(rng) {
                    self.ops.push(Op::SetWeak {
                        node,
                        to: self.pick_ref(rng),
                    });
                }
            }
            48..=50 => {
                if let Some(node) = self.pick_node(rng) {
                    self.ops.push(Op::AddRoot { node });
                    self.rooted.push(node);
                }
            }
            51..=52 => {
                if !self.typed.is_empty() {
                    let node = self.typed[rng.gen_range(0..self.typed.len())];
                    self.ops.push(Op::AddTypedRoot { node });
                    self.rooted.push(node);
                }
            }
            53..=59 => {
                if !self.rooted.is_empty() {
                    let node = self.rooted.swap_remove(rng.gen_range(0..self.rooted.len()));
                    self.ops.push(Op::DropRoot { node });
                }
            }
            60..=62 => {
                let g = self.next_gi;
                self.next_gi += 1;
                self.ops.push(Op::MakeGuardian { g });
                self.guardians.push(g);
            }
            63..=69 => {
                if !self.guardians.is_empty() {
                    let g = self.guardians[rng.gen_range(0..self.guardians.len())];
                    let target = self.pick_ref(rng);
                    // 1-in-5 registrations use a distinct agent (§5).
                    let agent = (rng.gen_range(0..5) == 0).then(|| self.pick_ref(rng));
                    self.ops.push(Op::Register { g, target, agent });
                }
            }
            70..=71 => {
                if !self.guardians.is_empty() && !self.typed.is_empty() {
                    let g = self.guardians[rng.gen_range(0..self.guardians.len())];
                    let node = self.typed[rng.gen_range(0..self.typed.len())];
                    self.ops.push(Op::RegisterTyped { g, node });
                }
            }
            72..=75 => {
                if !self.guardians.is_empty() {
                    let g = self.guardians[rng.gen_range(0..self.guardians.len())];
                    self.ops.push(Op::Poll { g });
                }
            }
            76..=77 => {
                if !self.guardians.is_empty() {
                    let g = self.guardians[rng.gen_range(0..self.guardians.len())];
                    self.ops.push(Op::PollTyped { g });
                }
            }
            78 => {
                if !self.guardians.is_empty() {
                    let g = self.guardians[rng.gen_range(0..self.guardians.len())];
                    self.ops.push(Op::DropGuardian { g });
                }
            }
            79..=81 => {
                let wid = self.next_wid;
                self.next_wid += 1;
                self.ops.push(Op::AllocWeakPair {
                    wid,
                    target: self.pick_ref(rng),
                });
                self.weaks.push(wid);
            }
            82 => {
                if !self.typed.is_empty() {
                    let wid = self.next_wid;
                    self.next_wid += 1;
                    let node = self.typed[rng.gen_range(0..self.typed.len())];
                    self.ops.push(Op::AllocTypedWeak { wid, node });
                    self.weaks.push(wid);
                    self.typed_weaks.push(wid);
                }
            }
            83 => {
                if !self.weaks.is_empty() {
                    let wid = self.weaks[rng.gen_range(0..self.weaks.len())];
                    self.ops.push(Op::SetWeakPair {
                        wid,
                        target: self.pick_ref(rng),
                    });
                }
            }
            84 => {
                if !self.typed_weaks.is_empty() {
                    let wid = self.typed_weaks[rng.gen_range(0..self.typed_weaks.len())];
                    self.ops.push(Op::UpgradeTypedWeak { wid });
                }
            }
            85..=86 => {
                if !self.weaks.is_empty() {
                    let wid = self.weaks.swap_remove(rng.gen_range(0..self.weaks.len()));
                    self.ops.push(Op::DropWeakPair { wid });
                }
            }
            87..=93 => {
                // Young collections dominate, as in real schedules.
                let gen = *[0, 0, 0, 0, 1, 1, 2, 3]
                    .get(rng.gen_range(0..8usize))
                    .expect("in range");
                self.ops.push(Op::Collect { gen });
            }
            94 => {
                // An occasional mid-trace promotion retune: the same
                // between-collections path the autotuner's tenure knob
                // uses, here exercised against the oracle with all four
                // policies.
                let promotion = *[
                    Promotion::NextGeneration,
                    Promotion::Capped(1),
                    Promotion::Capped(2),
                    Promotion::SameGeneration,
                ]
                .get(rng.gen_range(0..4usize))
                .expect("in range");
                self.ops.push(Op::SetPromotion { promotion });
            }
            95..=97 => {
                self.ops.push(Op::Churn {
                    n: rng.gen_range(20..400),
                });
            }
            _ => {
                self.ops.push(Op::Grow {
                    bytes: rng.gen_range(100..9000),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(12345, 500);
        let b = generate(12345, 500);
        assert_eq!(a, b);
        let c = generate(12346, 500);
        assert_ne!(a.ops, c.ops, "different seeds give different traces");
    }

    #[test]
    fn generated_traces_round_trip() {
        let t = generate(777, 300);
        assert_eq!(Trace::parse(&t.to_text()).expect("parses"), t);
        assert!(t.ops.iter().any(|o| matches!(o, Op::Collect { .. })));
        assert!(t.ops.iter().any(|o| matches!(o, Op::Register { .. })));
        assert!(t.ops.iter().any(|o| matches!(o, Op::AllocTyped { .. })));
    }
}
