//! The torture rig's heap-operation language.
//!
//! A trace is a [`TortureConfig`] plus a sequence of [`Op`]s. Ops name
//! objects by the small integer ids the trace itself assigned at
//! allocation time — never by heap address — so a trace replays
//! identically on the real heap and on the shadow model, survives
//! shrinking (an op whose referents no longer exist degrades to a no-op
//! on *both* sides), and round-trips through a line-oriented text format
//! ready to be committed as a regression test.

use guardians_gc::{AutotuneMode, Promotion};
use std::fmt;
use std::str::FromStr;

/// The textual form of a promotion policy, shared by the config line's
/// mandatory second token and the `setpromo` op.
fn promotion_text(p: Promotion) -> String {
    match p {
        Promotion::NextGeneration => "next".to_string(),
        Promotion::Capped(c) => format!("cap{c}"),
        Promotion::SameGeneration => "same".to_string(),
    }
}

fn parse_promotion(s: &str) -> Result<Promotion, String> {
    match s {
        "next" => Ok(Promotion::NextGeneration),
        "same" => Ok(Promotion::SameGeneration),
        s if s.starts_with("cap") => Ok(Promotion::Capped(
            s[3..]
                .parse()
                .map_err(|e| format!("bad promotion cap: {e}"))?,
        )),
        other => Err(format!("bad promotion {other:?}")),
    }
}

/// A reference operand: nothing, a node by id, or a guardian's tconc by
/// guardian index.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Ref {
    /// The empty reference (heap `'()` in edge slots, `#f` in weak cars).
    Null,
    /// The node allocated with this id.
    Node(u32),
    /// The tconc of the guardian with this index — letting traces store
    /// guardian queues into the object graph and register guardians with
    /// other guardians (the paper's `(G H)` example).
    Tconc(u32),
}

impl fmt::Display for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ref::Null => write!(f, "null"),
            Ref::Node(id) => write!(f, "n{id}"),
            Ref::Tconc(g) => write!(f, "t{g}"),
        }
    }
}

impl FromStr for Ref {
    type Err = String;
    fn from_str(s: &str) -> Result<Ref, String> {
        if s == "null" {
            return Ok(Ref::Null);
        }
        let parse = |digits: &str| {
            digits
                .parse::<u32>()
                .map_err(|e| format!("bad ref {s:?}: {e}"))
        };
        match s.as_bytes().first() {
            Some(b'n') => Ok(Ref::Node(parse(&s[1..])?)),
            Some(b't') => Ok(Ref::Tconc(parse(&s[1..])?)),
            _ => Err(format!("bad ref {s:?}")),
        }
    }
}

/// The kind of heap object a node id denotes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Two pairs: `(id . (left . right))` — two mutable edge slots.
    Pair,
    /// A vector `[id, left, right, weak-pair, payload…]` — two mutable
    /// edge slots plus an attached weak pair whose car is settable.
    Vector,
    /// A pointer-free bytevector (pure space): id in the first 8 bytes,
    /// pattern fill after. Large lengths exercise multi-segment runs.
    Bytevector,
    /// An immutable string `"node-<id>"` plus deterministic padding.
    String,
    /// A record `{id, left, right}` allocated and mutated through the
    /// typed `guardians-gc-api` layer (`Gc<T>`/`Root<T>`): same two-edge
    /// shape as [`NodeKind::Pair`], but every access goes through the
    /// typed front-end's accessors and write barrier. Typed edges can
    /// only reference typed nodes (the field type is `Option<Root<T>>`).
    Typed,
}

/// One step of a torture trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Allocate a pair node.
    AllocPair {
        /// Fresh node id.
        id: u32,
        /// Initial left edge.
        left: Ref,
        /// Initial right edge.
        right: Ref,
    },
    /// Allocate a vector node with `payload` extra pattern-filled slots.
    AllocVector {
        /// Fresh node id.
        id: u32,
        /// Extra slots beyond the 4 structural ones; large values force
        /// multi-segment runs.
        payload: u32,
        /// Initial left edge.
        left: Ref,
        /// Initial right edge.
        right: Ref,
    },
    /// Allocate a bytevector node of `len` bytes.
    AllocBytevector {
        /// Fresh node id.
        id: u32,
        /// Length in bytes.
        len: u32,
    },
    /// Allocate a string node.
    AllocString {
        /// Fresh node id.
        id: u32,
    },
    /// Store `to` into edge `slot` (0 = left, 1 = right) of `node`.
    /// No-op on leaf nodes or if any referent is gone.
    SetEdge {
        /// The mutated node.
        node: u32,
        /// 0 = left, 1 = right.
        slot: u8,
        /// New edge target.
        to: Ref,
    },
    /// Point the attached weak car of vector node `node` at `to`
    /// (`Null` stores `#f`). No-op on non-vector nodes.
    SetWeak {
        /// The mutated vector node.
        node: u32,
        /// New weak target.
        to: Ref,
    },
    /// Strongly root `node`.
    AddRoot {
        /// The node to root.
        node: u32,
    },
    /// Drop the strong root of `node` (the node may then die at the next
    /// collection that reaches its generation).
    DropRoot {
        /// The node to unroot.
        node: u32,
    },
    /// Create guardian number `g` (indices are assigned in order).
    MakeGuardian {
        /// Fresh guardian index.
        g: u32,
    },
    /// Register `target` with guardian `g`; with `agent`, the paper's
    /// Section 5 generalisation (the agent is enqueued in the target's
    /// place).
    Register {
        /// The guardian to register with.
        g: u32,
        /// The watched object.
        target: Ref,
        /// Optional distinct representative.
        agent: Option<Ref>,
    },
    /// Poll guardian `g`; a delivered node is re-rooted (a
    /// finalizer-revived reference).
    Poll {
        /// The polled guardian.
        g: u32,
    },
    /// Drop guardian `g`'s handle: its tconc stays alive only through
    /// heap references, and pending registrations are cancelled once it
    /// is proven inaccessible.
    DropGuardian {
        /// The dropped guardian.
        g: u32,
    },
    /// Allocate a rooted standalone weak pair `wid` watching `target`.
    AllocWeakPair {
        /// Fresh weak-pair id.
        wid: u32,
        /// The watched object.
        target: Ref,
    },
    /// Re-aim standalone weak pair `wid` at `target`.
    SetWeakPair {
        /// The mutated weak pair.
        wid: u32,
        /// New weak target.
        target: Ref,
    },
    /// Unroot standalone weak pair `wid` (it becomes floating garbage
    /// until its generation is collected).
    DropWeakPair {
        /// The unrooted weak pair.
        wid: u32,
    },
    /// Allocate a typed node (a `{id, left, right}` record) through the
    /// `guardians-gc-api` layer; edges are wired afterwards via
    /// `set_field`, exercising the typed write-barrier path. Edge
    /// operands that are not live typed nodes degrade to `Null` (the
    /// field type is `Option<Root<T>>`).
    AllocTyped {
        /// Fresh node id.
        id: u32,
        /// Initial left edge (typed nodes only).
        left: Ref,
        /// Initial right edge (typed nodes only).
        right: Ref,
    },
    /// Root typed node `node` through a typed `Root<T>` on the shadow
    /// stack (the typed counterpart of `root`); dropped by the ordinary
    /// `unroot` op. No-op on non-typed nodes.
    AddTypedRoot {
        /// The typed node to root.
        node: u32,
    },
    /// Register typed node `node` with guardian `g` through the typed
    /// `Guardian<T>` view. No-op if the rig no longer holds `g`'s handle
    /// or `node` is not a live typed node.
    RegisterTyped {
        /// The guardian to register with.
        g: u32,
        /// The watched typed node.
        node: u32,
    },
    /// Poll guardian `g` through the typed view: delivers (and re-roots,
    /// via a typed `Root<T>`) when the queue front is a typed node;
    /// checks emptiness when the queue is empty; degrades to a no-op when
    /// the front is an untyped object (typed poll would reject it by
    /// descriptor).
    PollTyped {
        /// The polled guardian.
        g: u32,
    },
    /// Allocate typed weak reference `wid` (a `Weak<T>` over the weak-pair
    /// machinery) watching typed node `node`. Shares the `wid` space with
    /// raw weak pairs and is dropped by the ordinary `dropweak` op, but
    /// cannot be re-aimed (`Weak<T>` has no re-aim API).
    AllocTypedWeak {
        /// Fresh weak id.
        wid: u32,
        /// The watched typed node.
        node: u32,
    },
    /// Upgrade typed weak `wid` and check the result against the model:
    /// `Some` with the right referent exactly when the model says the
    /// target is still physical. No-op on raw weak ids.
    UpgradeTypedWeak {
        /// The upgraded weak.
        wid: u32,
    },
    /// Retune the survivor promotion policy mid-trace through the heap's
    /// between-collections reconfiguration path ([`guardians_gc::Heap::
    /// set_promotion`]). The shadow model switches in lockstep, so the
    /// oracle checks that a policy change is exactly a policy change —
    /// survivor placement follows the new rule, nothing else moves.
    SetPromotion {
        /// The policy every later collection promotes under.
        promotion: Promotion,
    },
    /// Collect generations `0..=gen`.
    Collect {
        /// Highest generation collected.
        gen: u8,
    },
    /// Allocate `n` garbage pairs (allocation pressure in the pair space).
    Churn {
        /// Number of garbage pairs.
        n: u32,
    },
    /// Allocate one garbage bytevector of `bytes` bytes (pure-space and
    /// large-run pressure).
    Grow {
        /// Garbage bytevector length.
        bytes: u32,
    },
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::AllocPair { id, left, right } => write!(f, "pair {id} {left} {right}"),
            Op::AllocVector {
                id,
                payload,
                left,
                right,
            } => write!(f, "vec {id} {payload} {left} {right}"),
            Op::AllocBytevector { id, len } => write!(f, "bytes {id} {len}"),
            Op::AllocString { id } => write!(f, "str {id}"),
            Op::SetEdge { node, slot, to } => write!(f, "edge {node} {slot} {to}"),
            Op::SetWeak { node, to } => write!(f, "weakset {node} {to}"),
            Op::AddRoot { node } => write!(f, "root {node}"),
            Op::DropRoot { node } => write!(f, "unroot {node}"),
            Op::MakeGuardian { g } => write!(f, "guardian {g}"),
            Op::Register {
                g,
                target,
                agent: None,
            } => write!(f, "register {g} {target}"),
            Op::Register {
                g,
                target,
                agent: Some(a),
            } => write!(f, "register {g} {target} {a}"),
            Op::Poll { g } => write!(f, "poll {g}"),
            Op::DropGuardian { g } => write!(f, "dropg {g}"),
            Op::AllocWeakPair { wid, target } => write!(f, "weak {wid} {target}"),
            Op::SetWeakPair { wid, target } => write!(f, "reweak {wid} {target}"),
            Op::DropWeakPair { wid } => write!(f, "dropweak {wid}"),
            Op::AllocTyped { id, left, right } => write!(f, "tnode {id} {left} {right}"),
            Op::AddTypedRoot { node } => write!(f, "troot {node}"),
            Op::RegisterTyped { g, node } => write!(f, "tregister {g} {node}"),
            Op::PollTyped { g } => write!(f, "tpoll {g}"),
            Op::AllocTypedWeak { wid, node } => write!(f, "tweak {wid} {node}"),
            Op::UpgradeTypedWeak { wid } => write!(f, "tupgrade {wid}"),
            Op::SetPromotion { promotion } => write!(f, "setpromo {}", promotion_text(*promotion)),
            Op::Collect { gen } => write!(f, "collect {gen}"),
            Op::Churn { n } => write!(f, "churn {n}"),
            Op::Grow { bytes } => write!(f, "grow {bytes}"),
        }
    }
}

impl FromStr for Op {
    type Err = String;
    fn from_str(line: &str) -> Result<Op, String> {
        let mut it = line.split_whitespace();
        let head = it.next().ok_or("empty op line")?;
        let mut num = |what: &str| -> Result<u32, String> {
            it.next()
                .ok_or_else(|| format!("{head}: missing {what}"))?
                .parse::<u32>()
                .map_err(|e| format!("{head}: bad {what}: {e}"))
        };
        let op = match head {
            "pair" => {
                let id = num("id")?;
                let left: Ref = it.next().ok_or("pair: missing left")?.parse()?;
                let right: Ref = it.next().ok_or("pair: missing right")?.parse()?;
                Op::AllocPair { id, left, right }
            }
            "vec" => {
                let id = num("id")?;
                let payload = num("payload")?;
                let left: Ref = it.next().ok_or("vec: missing left")?.parse()?;
                let right: Ref = it.next().ok_or("vec: missing right")?.parse()?;
                Op::AllocVector {
                    id,
                    payload,
                    left,
                    right,
                }
            }
            "bytes" => Op::AllocBytevector {
                id: num("id")?,
                len: num("len")?,
            },
            "str" => Op::AllocString { id: num("id")? },
            "edge" => {
                let node = num("node")?;
                let slot = num("slot")? as u8;
                let to: Ref = it.next().ok_or("edge: missing target")?.parse()?;
                Op::SetEdge { node, slot, to }
            }
            "weakset" => {
                let node = num("node")?;
                let to: Ref = it.next().ok_or("weakset: missing target")?.parse()?;
                Op::SetWeak { node, to }
            }
            "root" => Op::AddRoot { node: num("node")? },
            "unroot" => Op::DropRoot { node: num("node")? },
            "guardian" => Op::MakeGuardian { g: num("g")? },
            "register" => {
                let g = num("g")?;
                let target: Ref = it.next().ok_or("register: missing target")?.parse()?;
                let agent = it.next().map(Ref::from_str).transpose()?;
                Op::Register { g, target, agent }
            }
            "poll" => Op::Poll { g: num("g")? },
            "dropg" => Op::DropGuardian { g: num("g")? },
            "weak" => {
                let wid = num("wid")?;
                let target: Ref = it.next().ok_or("weak: missing target")?.parse()?;
                Op::AllocWeakPair { wid, target }
            }
            "reweak" => {
                let wid = num("wid")?;
                let target: Ref = it.next().ok_or("reweak: missing target")?.parse()?;
                Op::SetWeakPair { wid, target }
            }
            "dropweak" => Op::DropWeakPair { wid: num("wid")? },
            "tnode" => {
                let id = num("id")?;
                let left: Ref = it.next().ok_or("tnode: missing left")?.parse()?;
                let right: Ref = it.next().ok_or("tnode: missing right")?.parse()?;
                Op::AllocTyped { id, left, right }
            }
            "troot" => Op::AddTypedRoot { node: num("node")? },
            "tregister" => Op::RegisterTyped {
                g: num("g")?,
                node: num("node")?,
            },
            "tpoll" => Op::PollTyped { g: num("g")? },
            "tweak" => Op::AllocTypedWeak {
                wid: num("wid")?,
                node: num("node")?,
            },
            "tupgrade" => Op::UpgradeTypedWeak { wid: num("wid")? },
            "setpromo" => Op::SetPromotion {
                promotion: parse_promotion(it.next().ok_or("setpromo: missing promotion")?)
                    .map_err(|e| format!("setpromo: {e}"))?,
            },
            "collect" => Op::Collect {
                gen: num("gen")? as u8,
            },
            "churn" => Op::Churn { n: num("n")? },
            "grow" => Op::Grow {
                bytes: num("bytes")?,
            },
            other => return Err(format!("unknown op {other:?}")),
        };
        if let Some(extra) = it.next() {
            return Err(format!("{head}: trailing token {extra:?}"));
        }
        Ok(op)
    }
}

/// Which interpreter tier a scheme-differential campaign leg runs the
/// trace's companion program under (see `scheme_diff`). The heap-op rig
/// itself never consults it — heap ops have no evaluator — but carrying
/// it in the trace keeps a scheme-leg failure replayable from its text.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum InterpMode {
    /// The cons-walking reference evaluator.
    Naive,
    /// The staged (analyzed opcode tree) evaluator — the differential
    /// anchor, and the default so old traces keep their meaning.
    #[default]
    Staged,
    /// The bytecode VM tier.
    Vm,
}

impl fmt::Display for InterpMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterpMode::Naive => "naive",
            InterpMode::Staged => "staged",
            InterpMode::Vm => "vm",
        })
    }
}

impl FromStr for InterpMode {
    type Err = String;
    fn from_str(s: &str) -> Result<InterpMode, String> {
        match s {
            "naive" => Ok(InterpMode::Naive),
            "staged" => Ok(InterpMode::Staged),
            "vm" => Ok(InterpMode::Vm),
            other => Err(format!("bad interp mode {other:?}")),
        }
    }
}

/// Heap configuration a trace runs under (a deterministic subset of
/// [`guardians_gc::GcConfig`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TortureConfig {
    /// Number of generations.
    pub generations: u8,
    /// Survivor promotion policy.
    pub promotion: Promotion,
    /// Run with the flat protected-list ablation.
    pub flat_protected: bool,
    /// Run with the weak-pass-first ordering ablation. The shadow model
    /// always implements the paper's (correct) ordering, so a trace that
    /// exercises salvage-then-weak-read *fails* under this flag — it is
    /// the rig's built-in demonstration that the oracle detects the §4
    /// ordering bug when the fix is reverted.
    pub ablate_weak_pass_first: bool,
    /// Arm the segment-acquisition fault at this lifetime offset.
    pub fail_acquisition_at: Option<u64>,
    /// Collector worker threads (`1` = the serial engine). The shadow
    /// model is engine-agnostic, so a parallel campaign leg is the
    /// oracle-equivalence check the parallel engine's contract promises.
    pub workers: usize,
    /// Bounded-pause budget in microseconds (`None` = stop-the-world).
    /// `Some` selects the incremental engine; `Some(0)` is the finest
    /// slicing (one work unit per increment). Like `workers`, the shadow
    /// model is engine-agnostic: a budget leg checks the incremental
    /// engine against the same oracle, observable for observable.
    pub pause_budget: Option<u64>,
    /// Interpreter tier for the scheme-differential leg.
    pub interp: InterpMode,
    /// Autotuner mode for the real heap (`Off` = the historical fixed
    /// policy). `Active` lets the controller retune promotion between
    /// collections — the rig syncs the shadow model's promotion rule from
    /// the heap after every collection, so the oracle still pins every
    /// observable. `trigger_bytes` / `frequency` retunes are inert here:
    /// torture collections happen only at explicit `collect` safe points.
    pub autotune: AutotuneMode,
}

impl Default for TortureConfig {
    fn default() -> Self {
        TortureConfig {
            generations: 4,
            promotion: Promotion::NextGeneration,
            flat_protected: false,
            ablate_weak_pass_first: false,
            fail_acquisition_at: None,
            workers: 1,
            pause_budget: None,
            interp: InterpMode::Staged,
            autotune: AutotuneMode::Off,
        }
    }
}

impl fmt::Display for TortureConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let promo = promotion_text(self.promotion);
        let fault = match self.fail_acquisition_at {
            Some(n) => n.to_string(),
            None => "-".to_string(),
        };
        write!(
            f,
            "config {} {promo} {} {} {fault}",
            self.generations, self.flat_protected as u8, self.ablate_weak_pass_first as u8
        )?;
        // The workers, pause-budget, interp-mode, and autotune tokens are
        // optional (and omitted at the defaults) so older traces keep
        // parsing and default traces keep their historical textual form.
        // They are positional (6th, 7th, 8th, 9th), so emitting a later
        // one forces all earlier ones out; a pause budget of `None`
        // prints as the `-` placeholder (and a default interp mode as
        // `staged`) when a later token needs the slot filled.
        let emit_autotune = self.autotune != AutotuneMode::Off;
        let emit_interp = self.interp != InterpMode::Staged || emit_autotune;
        let emit_budget = self.pause_budget.is_some() || emit_interp;
        if self.workers != 1 || emit_budget {
            write!(f, " {}", self.workers)?;
        }
        if emit_budget {
            match self.pause_budget {
                Some(us) => write!(f, " {us}")?,
                None => write!(f, " -")?,
            }
        }
        if emit_interp {
            write!(f, " {}", self.interp)?;
        }
        if emit_autotune {
            write!(f, " {}", self.autotune)?;
        }
        Ok(())
    }
}

impl FromStr for TortureConfig {
    type Err = String;
    fn from_str(line: &str) -> Result<TortureConfig, String> {
        let mut it = line.split_whitespace();
        if it.next() != Some("config") {
            return Err("config line must start with 'config'".into());
        }
        let gens: u8 = it
            .next()
            .ok_or("config: missing generations")?
            .parse()
            .map_err(|e| format!("config: bad generations: {e}"))?;
        let promo = parse_promotion(it.next().ok_or("config: missing promotion")?)
            .map_err(|e| format!("config: {e}"))?;
        let flag = |s: Option<&str>, what: &str| -> Result<bool, String> {
            match s {
                Some("0") => Ok(false),
                Some("1") => Ok(true),
                other => Err(format!("config: bad {what} flag {other:?}")),
            }
        };
        let flat = flag(it.next(), "flat_protected")?;
        let ablate = flag(it.next(), "ablate")?;
        let fault = match it.next().ok_or("config: missing fault")? {
            "-" => None,
            n => Some(n.parse().map_err(|e| format!("config: bad fault: {e}"))?),
        };
        let workers = match it.next() {
            Some(n) => {
                let n: usize = n.parse().map_err(|e| format!("config: bad workers: {e}"))?;
                n.max(1)
            }
            None => 1,
        };
        let pause_budget = match it.next() {
            // `-` is the placeholder a default budget prints as when the
            // interp token behind it needs the slot filled.
            Some("-") | None => None,
            Some(us) => Some(
                us.parse()
                    .map_err(|e| format!("config: bad pause budget: {e}"))?,
            ),
        };
        let interp = match it.next() {
            Some(m) => m.parse()?,
            None => InterpMode::Staged,
        };
        let autotune = match it.next() {
            Some(m) => m.parse().map_err(|e| format!("config: {e}"))?,
            None => AutotuneMode::Off,
        };
        Ok(TortureConfig {
            generations: gens,
            promotion: promo,
            flat_protected: flat,
            ablate_weak_pass_first: ablate,
            fail_acquisition_at: fault,
            workers,
            pause_budget,
            interp,
            autotune,
        })
    }
}

/// A complete, replayable torture input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// The seed the trace was generated from, if any (informational: a
    /// parsed trace replays from its ops, not its seed).
    pub seed: Option<u64>,
    /// Heap configuration.
    pub config: TortureConfig,
    /// The op sequence.
    pub ops: Vec<Op>,
}

impl Trace {
    /// Serialises the trace to the line format `parse` reads back.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "# guardians torture trace v1");
        if let Some(seed) = self.seed {
            let _ = writeln!(out, "# seed {seed}");
        }
        let _ = writeln!(out, "{}", self.config);
        for op in &self.ops {
            let _ = writeln!(out, "{op}");
        }
        out
    }

    /// Parses the textual form produced by [`Trace::to_text`]. Blank
    /// lines and `#` comments are skipped; a `# seed N` comment restores
    /// the recorded seed.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut seed = None;
        let mut config = None;
        let mut ops = Vec::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let mut it = comment.split_whitespace();
                if it.next() == Some("seed") {
                    if let Some(Ok(s)) = it.next().map(str::parse) {
                        seed = Some(s);
                    }
                }
                continue;
            }
            if line.starts_with("config") {
                config = Some(
                    line.parse::<TortureConfig>()
                        .map_err(|e| format!("line {}: {e}", n + 1))?,
                );
                continue;
            }
            ops.push(
                line.parse::<Op>()
                    .map_err(|e| format!("line {}: {e}", n + 1))?,
            );
        }
        Ok(Trace {
            seed,
            config: config.ok_or("trace has no config line")?,
            ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_round_trip_through_text() {
        let ops = vec![
            Op::AllocPair {
                id: 0,
                left: Ref::Null,
                right: Ref::Node(7),
            },
            Op::AllocVector {
                id: 1,
                payload: 600,
                left: Ref::Tconc(2),
                right: Ref::Null,
            },
            Op::AllocBytevector { id: 2, len: 5000 },
            Op::AllocString { id: 3 },
            Op::SetEdge {
                node: 1,
                slot: 1,
                to: Ref::Node(0),
            },
            Op::SetWeak {
                node: 1,
                to: Ref::Node(2),
            },
            Op::AddRoot { node: 1 },
            Op::DropRoot { node: 0 },
            Op::MakeGuardian { g: 0 },
            Op::Register {
                g: 0,
                target: Ref::Node(1),
                agent: None,
            },
            Op::Register {
                g: 0,
                target: Ref::Tconc(1),
                agent: Some(Ref::Node(3)),
            },
            Op::Poll { g: 0 },
            Op::DropGuardian { g: 0 },
            Op::AllocWeakPair {
                wid: 0,
                target: Ref::Node(1),
            },
            Op::SetWeakPair {
                wid: 0,
                target: Ref::Null,
            },
            Op::DropWeakPair { wid: 0 },
            Op::AllocTyped {
                id: 4,
                left: Ref::Node(0),
                right: Ref::Null,
            },
            Op::AddTypedRoot { node: 4 },
            Op::RegisterTyped { g: 0, node: 4 },
            Op::PollTyped { g: 0 },
            Op::AllocTypedWeak { wid: 1, node: 4 },
            Op::UpgradeTypedWeak { wid: 1 },
            Op::SetPromotion {
                promotion: Promotion::Capped(1),
            },
            Op::Collect { gen: 2 },
            Op::Churn { n: 300 },
            Op::Grow { bytes: 9000 },
        ];
        for promotion in [
            Promotion::NextGeneration,
            Promotion::Capped(2),
            Promotion::SameGeneration,
        ] {
            let trace = Trace {
                seed: Some(42),
                config: TortureConfig {
                    promotion,
                    flat_protected: promotion == Promotion::SameGeneration,
                    fail_acquisition_at: Some(99),
                    ..TortureConfig::default()
                },
                ops: ops.clone(),
            };
            let parsed = Trace::parse(&trace.to_text()).expect("parses");
            assert_eq!(parsed, trace);
        }
    }

    #[test]
    fn workers_token_round_trips_and_defaults() {
        let parallel = TortureConfig {
            workers: 4,
            ..TortureConfig::default()
        };
        let text = parallel.to_string();
        assert!(text.ends_with(" 4"), "workers token emitted: {text}");
        assert_eq!(text.parse::<TortureConfig>().unwrap(), parallel);
        // The default stays token-free (old traces keep their exact text)
        // and pre-parallel five-token lines still parse as serial.
        let serial = TortureConfig::default();
        assert!(!serial.to_string().ends_with(" 1"), "{serial}");
        assert_eq!(
            "config 4 next 0 0 -".parse::<TortureConfig>().unwrap(),
            serial
        );
    }

    #[test]
    fn pause_budget_token_round_trips_and_defaults() {
        // The budget is the 7th token: emitting it forces the workers
        // token out even at its default.
        let budgeted = TortureConfig {
            pause_budget: Some(250),
            ..TortureConfig::default()
        };
        let text = budgeted.to_string();
        assert!(text.ends_with(" 1 250"), "both tokens emitted: {text}");
        assert_eq!(text.parse::<TortureConfig>().unwrap(), budgeted);
        // Zero (finest slicing) round-trips distinctly from None.
        let finest = TortureConfig {
            pause_budget: Some(0),
            ..TortureConfig::default()
        };
        assert_eq!(finest.to_string().parse::<TortureConfig>().unwrap(), finest);
        // Six-token (pre-incremental) and five-token (pre-parallel)
        // lines still parse as stop-the-world.
        for old in ["config 4 next 0 0 - 4", "config 4 next 0 0 -"] {
            assert_eq!(old.parse::<TortureConfig>().unwrap().pause_budget, None);
        }
    }

    #[test]
    fn interp_token_round_trips_and_defaults() {
        // The interp mode is the 8th token: emitting it forces workers
        // out and the default budget prints as the `-` placeholder.
        let vm = TortureConfig {
            interp: InterpMode::Vm,
            ..TortureConfig::default()
        };
        let text = vm.to_string();
        assert!(text.ends_with(" 1 - vm"), "placeholder chain: {text}");
        assert_eq!(text.parse::<TortureConfig>().unwrap(), vm);
        // All three modes round-trip, alone and with a real budget.
        for interp in [InterpMode::Naive, InterpMode::Staged, InterpMode::Vm] {
            for pause_budget in [None, Some(250u64)] {
                let cfg = TortureConfig {
                    interp,
                    pause_budget,
                    workers: 2,
                    ..TortureConfig::default()
                };
                assert_eq!(cfg.to_string().parse::<TortureConfig>().unwrap(), cfg);
            }
        }
        // The default (staged) stays token-free, and pre-VM lines of
        // every historical arity still parse as the staged anchor.
        assert!(!TortureConfig::default().to_string().contains("staged"));
        for old in [
            "config 4 next 0 0 -",
            "config 4 next 0 0 - 4",
            "config 4 next 0 0 - 1 250",
        ] {
            assert_eq!(
                old.parse::<TortureConfig>().unwrap().interp,
                InterpMode::Staged
            );
        }
    }

    #[test]
    fn autotune_token_round_trips_and_defaults() {
        // The autotune mode is the 9th token: emitting it forces the
        // whole placeholder chain out, including a literal `staged`.
        let active = TortureConfig {
            autotune: AutotuneMode::Active,
            ..TortureConfig::default()
        };
        let text = active.to_string();
        assert!(text.ends_with(" 1 - staged active"), "chain: {text}");
        assert_eq!(text.parse::<TortureConfig>().unwrap(), active);
        // Both non-off modes round-trip against every earlier-token shape.
        for autotune in [AutotuneMode::Observe, AutotuneMode::Active] {
            for pause_budget in [None, Some(250u64)] {
                for interp in [InterpMode::Staged, InterpMode::Vm] {
                    let cfg = TortureConfig {
                        autotune,
                        pause_budget,
                        interp,
                        workers: 2,
                        ..TortureConfig::default()
                    };
                    assert_eq!(cfg.to_string().parse::<TortureConfig>().unwrap(), cfg);
                }
            }
        }
        // The default (off) stays token-free, and every historical config
        // arity still parses with the autotuner off.
        assert!(!TortureConfig::default().to_string().contains("off"));
        for old in [
            "config 4 next 0 0 -",
            "config 4 next 0 0 - 4",
            "config 4 next 0 0 - 1 250",
            "config 4 next 0 0 - 1 - vm",
        ] {
            assert_eq!(
                old.parse::<TortureConfig>().unwrap().autotune,
                AutotuneMode::Off
            );
        }
    }

    #[test]
    fn setpromo_token_round_trips() {
        for (text, promotion) in [
            ("setpromo next", Promotion::NextGeneration),
            ("setpromo cap1", Promotion::Capped(1)),
            ("setpromo cap2", Promotion::Capped(2)),
            ("setpromo same", Promotion::SameGeneration),
        ] {
            let op = text.parse::<Op>().unwrap();
            assert_eq!(op, Op::SetPromotion { promotion }, "{text}");
            assert_eq!(op.to_string(), text);
        }
        assert!("setpromo sideways".parse::<Op>().is_err());
        assert!("setpromo".parse::<Op>().is_err());
    }

    #[test]
    fn typed_tokens_are_purely_additive() {
        // The typed tokens parse and round-trip...
        for (text, op) in [
            (
                "tnode 7 n2 null",
                Op::AllocTyped {
                    id: 7,
                    left: Ref::Node(2),
                    right: Ref::Null,
                },
            ),
            ("troot 7", Op::AddTypedRoot { node: 7 }),
            ("tregister 1 7", Op::RegisterTyped { g: 1, node: 7 }),
            ("tpoll 1", Op::PollTyped { g: 1 }),
            ("tweak 3 7", Op::AllocTypedWeak { wid: 3, node: 7 }),
            ("tupgrade 3", Op::UpgradeTypedWeak { wid: 3 }),
        ] {
            assert_eq!(text.parse::<Op>().unwrap(), op, "{text}");
            assert_eq!(op.to_string(), text);
        }
        // ...and a trace without them serialises exactly as before, so
        // every committed pre-typed trace keeps its text and meaning.
        let old = Trace {
            seed: None,
            config: TortureConfig::default(),
            ops: vec![
                Op::AllocPair {
                    id: 0,
                    left: Ref::Null,
                    right: Ref::Null,
                },
                Op::AddRoot { node: 0 },
                Op::Collect { gen: 0 },
            ],
        };
        let text = old.to_text();
        assert!(!text.contains("tnode"), "{text}");
        assert_eq!(Trace::parse(&text).unwrap(), old);
    }

    #[test]
    fn parse_reports_bad_lines() {
        let err = Trace::parse("config 4 next 0 0 -\nfrobnicate 1").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = Trace::parse("pair 0 null null").unwrap_err();
        assert!(err.contains("no config"), "{err}");
        let err = Trace::parse("config 4 next 0 0 -\npair 0 null null extra").unwrap_err();
        assert!(err.contains("trailing"), "{err}");
    }
}
