//! The scheme-differential campaign leg: the same guardian-heavy Scheme
//! workload run under the staged (anchor) evaluator and the tier named
//! by [`TortureConfig::interp`], on the trace's GC configuration.
//!
//! The heap-op rig checks the *collector* against the shadow oracle;
//! this leg checks the *evaluator tiers* against each other on top of
//! the same collector: per-form results, error messages, and everything
//! printed to the simulated OS must be byte-identical, and — because
//! the bytecode compiler is pure — the VM tier must also reproduce the
//! staged tier's deterministic heap counters exactly. The naive tier
//! allocates differently by design (association-list environments), so
//! it is compared on observables only.
//!
//! The trace's `ablate_weak_pass_first` and `fail_acquisition_at` knobs
//! are deliberately ignored here: both perturb allocation-order-derived
//! behaviour, which differs across tiers by design for the naive leg.

use crate::ops::{InterpMode, TortureConfig};
use crate::rig::Failure;
use guardians_gc::GcConfig;
use guardians_scheme::{EvalMode, Interp, InterpConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Outcome of a clean differential run.
#[derive(Clone, Debug)]
pub struct SchemeDiffStats {
    /// Top-level forms evaluated (per tier).
    pub forms: usize,
    /// Collections the anchor tier performed.
    pub collections: u64,
    /// Successful guardian polls the anchor tier observed.
    pub polled: u64,
}

/// The deterministic (non-timing) heap counters compared between the
/// staged anchor and the VM tier.
#[derive(Debug, PartialEq, Eq)]
struct Counters {
    collections: u64,
    pairs_allocated: u64,
    objects_allocated: u64,
    words_allocated: u64,
    guardian_registrations: u64,
    guardian_polls: u64,
    total_words_copied: u64,
    total_guardian_entries_visited: u64,
    total_weak_pairs_scanned: u64,
}

fn eval_mode(m: InterpMode) -> EvalMode {
    match m {
        InterpMode::Naive => EvalMode::Naive,
        InterpMode::Staged => EvalMode::Staged,
        InterpMode::Vm => EvalMode::Vm,
    }
}

fn gc_config(cfg: &TortureConfig) -> GcConfig {
    GcConfig {
        generations: cfg.generations,
        promotion: cfg.promotion,
        flat_protected: cfg.flat_protected,
        workers: cfg.workers,
        pause_budget: cfg.pause_budget.map(Duration::from_micros),
        ..GcConfig::default()
    }
}

/// Generates a deterministic guardian/weak/churn Scheme workload from
/// `seed`: roughly `nforms` body forms of list churn, guardian
/// registrations of fresh garbage, weak pairs watching dying objects,
/// keep-list trimming, and forced collections — followed by a fixed
/// epilogue that collects everything and drains both guardians, so every
/// seed exercises resurrection order and weak-pair breaking.
pub fn scheme_program(seed: u64, nforms: usize) -> Vec<String> {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
    let mut forms = vec![
        "(define G (make-guardian))".to_string(),
        "(define H (make-guardian))".to_string(),
        "(define keep '())".to_string(),
        "(define W '())".to_string(),
    ];
    let drain = |g: &str| {
        format!("(let loop ((x ({g}))) (if x (begin (display x) (newline) (loop ({g}))) #f))")
    };
    let mut n = 0u32;
    while forms.len() < nforms.max(8) {
        match rng.gen_range(0..10) {
            0..=2 => {
                // A chained list kept reachable through the keep list;
                // the named-let loop churns pairs at the safe point.
                let len = rng.gen_range(5..40);
                forms.push(format!(
                    "(define k{n} (let loop ((i {len}) (acc '())) \
                     (if (= i 0) acc (loop (- i 1) (cons i acc)))))"
                ));
                forms.push(format!("(set! keep (cons k{n} keep))"));
                n += 1;
            }
            3..=4 => {
                // Register fresh garbage with a guardian (sometimes both,
                // chaining the paper's (G H) style via the shared pair).
                let g = if rng.gen_range(0..2) == 0 { "G" } else { "H" };
                forms.push(format!("({g} (cons 'a{n} {}))", rng.gen_range(0..100)));
                n += 1;
            }
            5 => {
                // A weak pair watching a fresh (immediately dead) pair.
                forms.push(format!("(set! W (cons (weak-cons (cons {n} {n}) '()) W))"));
                n += 1;
            }
            6 => {
                // Trim the keep list so old chains become garbage.
                forms.push("(if (pair? keep) (set! keep (cdr keep)) #f)".into());
            }
            7..=8 => {
                // Collect (young generations dominate) and drain.
                let gen = [0, 0, 1, 2][rng.gen_range(0..4usize)];
                forms.push(format!("(collect {gen})"));
                forms.push(drain("G"));
                forms.push(drain("H"));
            }
            _ => {
                // Probe every weak car: broken ones print #f.
                forms.push("(for-each (lambda (w) (display (weak-car w)) (newline)) W)".into());
            }
        }
    }
    forms.push("(collect 3)".into());
    forms.push(drain("G"));
    forms.push(drain("H"));
    forms.push("(for-each (lambda (w) (display (weak-car w)) (newline)) W)".into());
    forms
}

struct TierRun {
    results: Vec<Result<String, String>>,
    output: String,
    counters: Counters,
}

fn run_tier(mode: EvalMode, cfg: &TortureConfig, forms: &[String]) -> TierRun {
    let mut it = Interp::with_interp_config(InterpConfig {
        gc: gc_config(cfg),
        mode,
    });
    let mut results = Vec::with_capacity(forms.len());
    for f in forms {
        results.push(it.eval_to_string(f).map_err(|e| e.to_string()));
    }
    let s = it.heap().stats();
    let counters = Counters {
        collections: s.collections,
        pairs_allocated: s.pairs_allocated,
        objects_allocated: s.objects_allocated,
        words_allocated: s.words_allocated,
        guardian_registrations: s.guardian_registrations,
        guardian_polls: s.guardian_polls,
        total_words_copied: s.total_words_copied,
        total_guardian_entries_visited: s.total_guardian_entries_visited,
        total_weak_pairs_scanned: s.total_weak_pairs_scanned,
    };
    TierRun {
        results,
        output: it.take_output(),
        counters,
    }
}

/// Runs the seed's Scheme workload under the staged anchor and under
/// `cfg.interp`, comparing every observable (and, for the VM tier, the
/// deterministic heap counters). Returns the anchor's stats on success.
///
/// # Errors
///
/// The first divergence, as a [`Failure`] whose `op_index` is the index
/// of the diverging top-level form.
pub fn run_scheme_differential(
    seed: u64,
    nforms: usize,
    cfg: &TortureConfig,
) -> Result<SchemeDiffStats, Failure> {
    let forms = scheme_program(seed, nforms);
    let fail = |op_index: usize, message: String| Failure {
        seed: Some(seed),
        op_index,
        op: None,
        message,
    };
    let anchor = run_tier(EvalMode::Staged, cfg, &forms);
    if cfg.interp != InterpMode::Staged {
        let subject = run_tier(eval_mode(cfg.interp), cfg, &forms);
        for (i, (a, b)) in anchor.results.iter().zip(&subject.results).enumerate() {
            if a != b {
                return Err(fail(
                    i,
                    format!(
                        "scheme {} tier diverged from the staged anchor on form {:?}: \
                         {a:?} vs {b:?}",
                        cfg.interp, forms[i]
                    ),
                ));
            }
        }
        if anchor.output != subject.output {
            return Err(fail(
                forms.len(),
                format!(
                    "scheme {} tier printed different output than the staged anchor:\n\
                     anchor:  {:?}\nsubject: {:?}",
                    cfg.interp, anchor.output, subject.output
                ),
            ));
        }
        if cfg.interp == InterpMode::Vm && anchor.counters != subject.counters {
            return Err(fail(
                forms.len(),
                format!(
                    "scheme vm tier's deterministic heap counters diverged from the \
                     staged anchor:\nanchor:  {:?}\nsubject: {:?}",
                    anchor.counters, subject.counters
                ),
            ));
        }
    }
    Ok(SchemeDiffStats {
        forms: forms.len(),
        collections: anchor.counters.collections,
        polled: anchor.counters.guardian_polls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_generation_is_deterministic() {
        assert_eq!(scheme_program(9, 40), scheme_program(9, 40));
        assert_ne!(scheme_program(9, 40), scheme_program(10, 40));
    }

    #[test]
    fn vm_leg_agrees_on_a_small_seed() {
        let cfg = TortureConfig {
            interp: InterpMode::Vm,
            ..TortureConfig::default()
        };
        let stats = run_scheme_differential(1, 40, &cfg).unwrap_or_else(|f| panic!("{f}"));
        assert!(stats.collections > 0, "workload exercised the collector");
        assert!(stats.polled > 0, "workload drained a guardian");
    }
}
