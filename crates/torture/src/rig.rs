//! The torture rig: interprets one trace against the real heap and the
//! shadow model simultaneously, checking every observable after every
//! collection.
//!
//! # Object addressing: weak trackers
//!
//! A copying collector moves objects, so the rig cannot hold raw `Value`s
//! across collections. Instead it allocates one *permanently rooted weak
//! pair per object* — car pointing (weakly) at the object, cdr its fixnum
//! id. A tracker's car always holds the object's current address, without
//! keeping it alive; when the object is reclaimed the car breaks to `#f`.
//! This gives the rig three things at once:
//!
//! * the current address of **every** physical object — including floating
//!   garbage in uncollected generations, which the model tracks exactly;
//! * a direct liveness oracle: tracker-car-broken ⇔ model-object-reclaimed
//!   is itself checked after every collection;
//! * deterministic op applicability: an op referencing an object degrades
//!   to a no-op exactly when the model says the object is gone.
//!
//! Trackers are themselves weak pairs in the heap being tested, so the
//! model accounts for them (generation by generation) in its weak-pair
//! word predictions — the instrumentation is inside the experiment.
//!
//! # Fault policy
//!
//! Every allocating op preflights a conservative segment bound via
//! [`Heap::try_reserve`]; collections go through [`Heap::try_collect`],
//! which reserves the worst case before the flip. When the armed
//! acquisition fault fires, the rig asserts the heap is still
//! `verify()`-valid (a clean failure, not corruption), lifts the fault,
//! and re-runs the op infallibly — so a faulted trace still executes the
//! same op sequence and must reach the same final state. A sweep placing
//! the fault at every offset therefore proves every failure point is
//! clean.

use crate::model::{MEntry, MNode, MReport, MTconc, MWeak, Model};
use crate::ops::{NodeKind, Op, Ref, Trace};
use guardians_gc::{
    AutotuneConfig, AutotuneMode, CollectionReport, GcConfig, GcEvent, Guardian, Heap, Rooted,
    TraceConfig, TracedEvent, Value,
};
use guardians_gc_api::{
    impl_trace, ApiCtx, Guardian as TypedGuardian, Root as TypedRoot, Weak as TypedWeak,
};
use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

impl_trace! {
    /// The typed-op node shape: the `guardians-gc-api` counterpart of a
    /// [`NodeKind::Pair`] — an id plus two optional typed edges, accessed
    /// exclusively through the typed layer's accessors and write barrier.
    pub struct TNode {
        /// The trace-assigned node id (mirrors the raw kinds' id slot).
        pub id: i64,
        /// First typed edge.
        pub left: Option<TypedRoot<TNode>>,
        /// Second typed edge.
        pub right: Option<TypedRoot<TNode>>,
    }
}

/// Counters from a successful run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Ops interpreted.
    pub ops: usize,
    /// Ops that had an effect (the rest degraded to no-ops).
    pub applied: usize,
    /// Collections performed.
    pub collections: u64,
    /// Times the armed acquisition fault fired and was recovered from.
    pub faults_hit: u64,
    /// Guardian entries the model saw finalized across all collections.
    pub finalized: u64,
    /// Successful (Some) guardian polls.
    pub polled: u64,
    /// Lifetime segment acquisitions of the real heap.
    pub acquisitions: u64,
    /// Physical nodes at end of run.
    pub live_nodes: usize,
    /// Individual oracle comparisons made.
    pub checks: u64,
}

/// A divergence (oracle mismatch, verify failure, or panic), with enough
/// context to replay: the seed, the op index, and the op itself.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Generating seed, if the trace recorded one.
    pub seed: Option<u64>,
    /// Index of the op being interpreted (`ops.len()` = final check).
    pub op_index: usize,
    /// The op itself, if in range.
    pub op: Option<Op>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Failure {
    /// One line: seed, op position, op, message.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let seed = match self.seed {
            Some(s) => s.to_string(),
            None => "-".to_string(),
        };
        let op = match &self.op {
            Some(op) => op.to_string(),
            None => "<end-of-trace check>".to_string(),
        };
        let msg = self.message.replace('\n', "; ");
        write!(
            f,
            "torture failure: seed={seed} op#{} [{op}]: {msg}",
            self.op_index
        )
    }
}

/// Runs `trace` to completion, returning stats on success or the first
/// divergence. Panics anywhere inside (including the collector's
/// fault-tripwire) are caught and reported as failures at the current op.
pub fn run_trace(trace: &Trace) -> Result<RunStats, Failure> {
    run_trace_mode(trace, false).map(|(stats, _)| stats)
}

/// [`run_trace`] with the GC event trace enabled: after every collection
/// the emitted events are cross-checked against both the real report and
/// the shadow model, and all events are returned alongside the stats.
pub fn run_trace_traced(trace: &Trace) -> Result<(RunStats, Vec<TracedEvent>), Failure> {
    run_trace_mode(trace, true)
}

fn run_trace_mode(trace: &Trace, traced: bool) -> Result<(RunStats, Vec<TracedEvent>), Failure> {
    let at = Cell::new(usize::MAX);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut rig = Rig::new(&trace.config, traced);
        rig.run(&trace.ops, &at)
    }));
    match outcome {
        Ok(Ok(stats)) => Ok(stats),
        Ok(Err(message)) => Err(Failure {
            seed: trace.seed,
            op_index: at.get(),
            op: trace.ops.get(at.get()).cloned(),
            message,
        }),
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "opaque panic payload".to_string()
            };
            Err(Failure {
                seed: trace.seed,
                op_index: at.get(),
                op: trace.ops.get(at.get()).cloned(),
                message: format!("panic: {msg}"),
            })
        }
    }
}

/// Runs `f` with panic output suppressed (the shrinker replays hundreds of
/// failing candidates; their panic messages are expected noise).
pub fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let r = f();
    std::panic::set_hook(prev);
    r
}

struct Rig {
    heap: Heap,
    model: Model,
    /// Typed-layer context (shadow stack + descriptor table) viewing the
    /// same heap; typed ops root through it instead of raw `Rooted` cells.
    ctx: ApiCtx,
    node_trackers: HashMap<u32, Rooted>,
    tconc_trackers: HashMap<u32, Rooted>,
    guardians: HashMap<u32, Guardian>,
    rooted: HashMap<u32, Rooted>,
    /// Typed roots (`troot` / typed-poll revivals), the typed twin of
    /// `rooted` over the same model root set.
    typed_roots: HashMap<u32, TypedRoot<TNode>>,
    weak_handles: HashMap<u32, Rooted>,
    /// Typed weak references, sharing the model's weak-id space with
    /// `weak_handles` (an id lives in exactly one of the two maps).
    typed_weaks: HashMap<u32, TypedWeak<TNode>>,
    stats: RunStats,
    /// Whether the heap's event trace is on; collections then cross-check
    /// the drained events against report and model.
    traced: bool,
    /// Every event drained so far (traced mode only).
    events: Vec<TracedEvent>,
}

macro_rules! check {
    ($self:ident, $cond:expr, $($fmt:tt)*) => {
        $self.stats.checks += 1;
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

impl Rig {
    fn new(cfg: &crate::ops::TortureConfig, traced: bool) -> Rig {
        let gc = GcConfig {
            generations: cfg.generations,
            promotion: cfg.promotion,
            flat_protected: cfg.flat_protected,
            ablate_weak_pass_first: cfg.ablate_weak_pass_first,
            fail_acquisition_at: cfg.fail_acquisition_at,
            workers: cfg.workers,
            pause_budget: cfg.pause_budget.map(std::time::Duration::from_micros),
            ..GcConfig::default()
        };
        let mut heap = Heap::new(gc);
        match cfg.autotune {
            AutotuneMode::Off => {}
            AutotuneMode::Observe => heap.enable_autotune(AutotuneConfig::observe()),
            AutotuneMode::Active => heap.enable_autotune(AutotuneConfig::active()),
        }
        if traced {
            heap.enable_tracing(TraceConfig {
                capacity: 1 << 18,
                ..TraceConfig::default()
            });
        }
        let ctx = ApiCtx::new(&mut heap);
        Rig {
            heap,
            model: Model::new(cfg.clone()),
            ctx,
            node_trackers: HashMap::new(),
            tconc_trackers: HashMap::new(),
            guardians: HashMap::new(),
            rooted: HashMap::new(),
            typed_roots: HashMap::new(),
            weak_handles: HashMap::new(),
            typed_weaks: HashMap::new(),
            stats: RunStats::default(),
            traced,
            events: Vec::new(),
        }
    }

    fn run(
        &mut self,
        ops: &[Op],
        at: &Cell<usize>,
    ) -> Result<(RunStats, Vec<TracedEvent>), String> {
        for (i, op) in ops.iter().enumerate() {
            at.set(i);
            if self.apply(op)? {
                self.stats.applied += 1;
            }
        }
        at.set(ops.len());
        self.check_state()?;
        self.stats.ops = ops.len();
        self.stats.acquisitions = self.heap.acquisitions();
        self.stats.live_nodes = self.model.nodes.len();
        if self.traced {
            self.events.extend(self.heap.drain_trace_events());
        }
        Ok((self.stats.clone(), std::mem::take(&mut self.events)))
    }

    // ---- addressing ----------------------------------------------------

    /// Current address of node `id` via its tracker car.
    fn node_value(&self, id: u32) -> Value {
        let v = self.heap.car(self.node_trackers[&id].get());
        assert!(v.is_ptr(), "tracker for physical node n{id} is broken");
        v
    }

    fn tconc_value(&self, gi: u32) -> Value {
        let v = self.heap.car(self.tconc_trackers[&gi].get());
        assert!(v.is_ptr(), "tracker for physical tconc t{gi} is broken");
        v
    }

    /// A reference as stored in a *strong* slot (`Null` ≡ `'()`).
    fn strong_value(&self, r: Ref) -> Value {
        match r {
            Ref::Null => Value::NIL,
            Ref::Node(id) => self.node_value(id),
            Ref::Tconc(gi) => self.tconc_value(gi),
        }
    }

    /// A reference as stored in a *weak* car (`Null` ≡ `#f`).
    fn weak_value(&self, r: Ref) -> Value {
        match r {
            Ref::Null => Value::FALSE,
            _ => self.strong_value(r),
        }
    }

    /// Whether `id` names a live typed node.
    fn is_typed(&self, id: u32) -> bool {
        matches!(self.model.nodes.get(&id), Some(n) if n.kind == NodeKind::Typed)
    }

    /// A fresh typed root over live typed node `id`.
    fn typed_root(&self, id: u32) -> TypedRoot<TNode> {
        self.ctx.adopt(&self.heap, self.node_value(id))
    }

    /// The typed view over guardian `g`'s live handle.
    fn typed_guardian(&self, g: u32) -> TypedGuardian<TNode> {
        TypedGuardian::from_untyped(self.guardians[&g].clone())
    }

    // ---- fault handling ------------------------------------------------

    /// Preflights `bound` segments for a composite op. If the armed fault
    /// fires, asserts the heap survived cleanly, lifts the fault, and lets
    /// the op proceed infallibly.
    fn reserve(&mut self, bound: u64) -> Result<(), String> {
        if let Err(e) = self.heap.try_reserve(bound) {
            self.stats.faults_hit += 1;
            self.heap
                .verify()
                .map_err(|v| format!("heap invalid after clean-fault refusal ({e}): {v}"))?;
            self.heap.set_acquisition_fault(None);
        }
        Ok(())
    }

    // ---- op interpretation ---------------------------------------------

    /// Applies one op to both heaps; `Ok(false)` means it degraded to a
    /// no-op (on both sides, by the same model-derived decision).
    fn apply(&mut self, op: &Op) -> Result<bool, String> {
        match *op {
            Op::AllocPair { id, left, right } => {
                if self.model.nodes.contains_key(&id) {
                    return Ok(false);
                }
                let (left, right) = (self.model.normalize(left), self.model.normalize(right));
                self.reserve(2)?;
                let inner = {
                    let (l, r) = (self.strong_value(left), self.strong_value(right));
                    self.heap.cons(l, r)
                };
                let outer = self.heap.cons(Value::fixnum(id as i64), inner);
                self.track_node(id, outer);
                self.model.nodes.insert(
                    id,
                    MNode {
                        kind: NodeKind::Pair,
                        gen: 0,
                        left,
                        right,
                        weak_car: Ref::Null,
                        payload: 0,
                    },
                );
                Ok(true)
            }
            Op::AllocVector {
                id,
                payload,
                left,
                right,
            } => {
                if self.model.nodes.contains_key(&id) {
                    return Ok(false);
                }
                let (left, right) = (self.model.normalize(left), self.model.normalize(right));
                let len = 4 + payload as usize;
                self.reserve(((1 + len) as u64).div_ceil(512).max(1) + 2)?;
                let w = self.heap.weak_cons(Value::FALSE, Value::NIL);
                let v = self.heap.make_vector(len, Value::fixnum(id as i64));
                let (l, r) = (self.strong_value(left), self.strong_value(right));
                self.heap.vector_set(v, 1, l);
                self.heap.vector_set(v, 2, r);
                self.heap.vector_set(v, 3, w);
                self.track_node(id, v);
                self.model.nodes.insert(
                    id,
                    MNode {
                        kind: NodeKind::Vector,
                        gen: 0,
                        left,
                        right,
                        weak_car: Ref::Null,
                        payload,
                    },
                );
                Ok(true)
            }
            Op::AllocBytevector { id, len } => {
                if self.model.nodes.contains_key(&id) {
                    return Ok(false);
                }
                let words = 1 + (len as u64).div_ceil(8);
                self.reserve(words.div_ceil(512).max(1) + 1)?;
                let bv = self.heap.make_bytevector(len as usize, id as u8);
                self.track_node(id, bv);
                self.model.nodes.insert(
                    id,
                    MNode {
                        kind: NodeKind::Bytevector,
                        gen: 0,
                        left: Ref::Null,
                        right: Ref::Null,
                        weak_car: Ref::Null,
                        payload: len,
                    },
                );
                Ok(true)
            }
            Op::AllocString { id } => {
                if self.model.nodes.contains_key(&id) {
                    return Ok(false);
                }
                self.reserve(2)?;
                let s = self.heap.make_string(&format!("node-{id}"));
                self.track_node(id, s);
                self.model.nodes.insert(
                    id,
                    MNode {
                        kind: NodeKind::String,
                        gen: 0,
                        left: Ref::Null,
                        right: Ref::Null,
                        weak_car: Ref::Null,
                        payload: 0,
                    },
                );
                Ok(true)
            }
            Op::SetEdge { node, slot, to } => {
                let Some(n) = self.model.nodes.get(&node) else {
                    return Ok(false);
                };
                if !matches!(n.kind, NodeKind::Pair | NodeKind::Vector) {
                    return Ok(false);
                }
                let kind = n.kind;
                let to = self.model.normalize(to);
                let slot = slot % 2;
                let v = self.node_value(node);
                let tv = self.strong_value(to);
                match kind {
                    NodeKind::Pair => {
                        let inner = self.heap.cdr(v);
                        if slot == 0 {
                            self.heap.set_car(inner, tv);
                        } else {
                            self.heap.set_cdr(inner, tv);
                        }
                    }
                    NodeKind::Vector => self.heap.vector_set(v, 1 + slot as usize, tv),
                    _ => unreachable!(),
                }
                let n = self.model.nodes.get_mut(&node).expect("checked");
                if slot == 0 {
                    n.left = to;
                } else {
                    n.right = to;
                }
                Ok(true)
            }
            Op::SetWeak { node, to } => {
                match self.model.nodes.get(&node) {
                    Some(n) if n.kind == NodeKind::Vector => {}
                    _ => return Ok(false),
                }
                let to = self.model.normalize(to);
                let v = self.node_value(node);
                let w = self.heap.vector_ref(v, 3);
                let tv = self.weak_value(to);
                self.heap.set_car(w, tv);
                self.model.nodes.get_mut(&node).expect("checked").weak_car = to;
                Ok(true)
            }
            Op::AddRoot { node } => {
                if !self.model.nodes.contains_key(&node) || self.model.roots.contains(&node) {
                    return Ok(false);
                }
                let v = self.node_value(node);
                let handle = self.heap.root(v);
                self.rooted.insert(node, handle);
                self.model.roots.insert(node);
                Ok(true)
            }
            Op::DropRoot { node } => {
                // A node is rooted through exactly one of the raw and
                // typed maps; unrooting covers both.
                let raw = self.rooted.remove(&node).is_some();
                if !raw && self.typed_roots.remove(&node).is_none() {
                    return Ok(false);
                }
                self.model.roots.remove(&node);
                Ok(true)
            }
            Op::MakeGuardian { g } => {
                if self.model.tconcs.contains_key(&g) {
                    return Ok(false);
                }
                self.reserve(2)?;
                let guardian = self.heap.make_guardian();
                let tc = guardian.tconc();
                let tracker = self.heap.weak_cons(tc, Value::fixnum(1_000_000 + g as i64));
                let handle = self.heap.root(tracker);
                self.tconc_trackers.insert(g, handle);
                self.guardians.insert(g, guardian);
                self.model.tconcs.insert(
                    g,
                    MTconc {
                        gen: 0,
                        queue: Default::default(),
                        handle: true,
                    },
                );
                self.model.tconc_tracker_gen.insert(g, 0);
                Ok(true)
            }
            Op::Register { g, target, agent } => {
                if !self.model.tconcs.contains_key(&g) || !self.model.physical(target) {
                    return Ok(false);
                }
                // A dead agent degrades to the simple interface (rep = obj).
                let agent = agent.filter(|a| self.model.physical(*a));
                let tc = self.tconc_value(g);
                let obj = self.strong_value(target);
                let rep = agent.map_or(obj, |a| self.strong_value(a));
                self.heap.guardian_register(tc, obj, rep);
                self.model.protected[0].push(MEntry {
                    tconc: g,
                    obj: target,
                    rep: agent.unwrap_or(target),
                });
                Ok(true)
            }
            Op::Poll { g } => {
                if !self.model.tconcs.contains_key(&g) {
                    return Ok(false);
                }
                let tc = self.tconc_value(g);
                let got = self.heap.tconc_pop(tc);
                let expected = self
                    .model
                    .tconcs
                    .get_mut(&g)
                    .expect("physical")
                    .queue
                    .pop_front();
                match (got, expected) {
                    (None, None) => {}
                    (Some(v), Some(r)) => {
                        let want = self.strong_value(r);
                        check!(
                            self,
                            v == want,
                            "poll t{g}: heap returned {v:?}, model expected {r} ({want:?})"
                        );
                        self.stats.polled += 1;
                        // A polled node re-enters the root set: finalization
                        // revived a reference to it.
                        if let Ref::Node(id) = r {
                            if !self.model.roots.contains(&id) {
                                let handle = self.heap.root(v);
                                self.rooted.insert(id, handle);
                                self.model.roots.insert(id);
                            }
                        }
                    }
                    (got, expected) => {
                        check!(
                            self,
                            false,
                            "poll t{g}: heap returned {got:?}, model expected {expected:?}"
                        );
                    }
                }
                Ok(true)
            }
            Op::DropGuardian { g } => {
                if self.guardians.remove(&g).is_none() {
                    return Ok(false);
                }
                self.model.tconcs.get_mut(&g).expect("had handle").handle = false;
                Ok(true)
            }
            Op::AllocWeakPair { wid, target } => {
                if self.model.weaks.contains_key(&wid) {
                    return Ok(false);
                }
                let target = self.model.normalize(target);
                self.reserve(1)?;
                let tv = self.weak_value(target);
                let w = self.heap.weak_cons(tv, Value::NIL);
                let handle = self.heap.root(w);
                self.weak_handles.insert(wid, handle);
                self.model.weaks.insert(
                    wid,
                    MWeak {
                        gen: 0,
                        target,
                        rooted: true,
                    },
                );
                Ok(true)
            }
            Op::SetWeakPair { wid, target } => {
                // Typed weaks cannot be re-aimed (`Weak<T>` has no re-aim
                // API), so this op only applies to raw weak pairs.
                match self.model.weaks.get(&wid) {
                    Some(w) if w.rooted && self.weak_handles.contains_key(&wid) => {}
                    _ => return Ok(false),
                }
                let target = self.model.normalize(target);
                let tv = self.weak_value(target);
                let w = self.weak_handles[&wid].get();
                self.heap.set_car(w, tv);
                self.model.weaks.get_mut(&wid).expect("checked").target = target;
                Ok(true)
            }
            Op::DropWeakPair { wid } => {
                // Covers both raw handles and typed `Weak<T>`s (whose
                // drop tombstones the shadow-stack slot, unrooting the
                // pair exactly like dropping the raw handle).
                let raw = self.weak_handles.remove(&wid).is_some();
                if !raw && self.typed_weaks.remove(&wid).is_none() {
                    return Ok(false);
                }
                self.model.weaks.get_mut(&wid).expect("was rooted").rooted = false;
                Ok(true)
            }
            Op::AllocTyped { id, left, right } => {
                if self.model.nodes.contains_key(&id) {
                    return Ok(false);
                }
                // Typed edge fields are `Option<Root<TNode>>`: operands
                // that are not live typed nodes degrade to `Null` (the
                // model-derived decision, so shrinking stays safe).
                let norm = |r: Ref, rig: &Rig| match rig.model.normalize(r) {
                    Ref::Node(n) if rig.is_typed(n) => Ref::Node(n),
                    _ => Ref::Null,
                };
                let (left, right) = (norm(left, self), norm(right, self));
                // Record + (first time) descriptor string/symbol +
                // tracker weak pair.
                self.reserve(3)?;
                let node = TNode {
                    id: id as i64,
                    left: None,
                    right: None,
                };
                let root = self.ctx.alloc(&mut self.heap, &node);
                // Wire the edges through the typed write-barrier path.
                for (slot, edge) in [(1usize, left), (2, right)] {
                    if let Ref::Node(n) = edge {
                        let e = Some(self.typed_root(n));
                        self.ctx.set_field(&mut self.heap, &root, slot, &e);
                    }
                }
                let v = root.value();
                self.track_node(id, v);
                self.model.nodes.insert(
                    id,
                    MNode {
                        kind: NodeKind::Typed,
                        gen: 0,
                        left,
                        right,
                        weak_car: Ref::Null,
                        payload: 0,
                    },
                );
                Ok(true)
            }
            Op::AddTypedRoot { node } => {
                if !self.is_typed(node) || self.model.roots.contains(&node) {
                    return Ok(false);
                }
                let root = self.typed_root(node);
                self.typed_roots.insert(node, root);
                self.model.roots.insert(node);
                Ok(true)
            }
            Op::RegisterTyped { g, node } => {
                // Typed registration goes through the typed guardian
                // view, which needs the live handle (unlike the raw op,
                // which can append through the bare tconc address).
                if !self.guardians.contains_key(&g) || !self.is_typed(node) {
                    return Ok(false);
                }
                let view = self.typed_guardian(g);
                let root = self.typed_root(node);
                view.register(&mut self.heap, &root);
                self.model.protected[0].push(MEntry {
                    tconc: g,
                    obj: Ref::Node(node),
                    rep: Ref::Node(node),
                });
                Ok(true)
            }
            Op::PollTyped { g } => {
                if !self.guardians.contains_key(&g) {
                    return Ok(false);
                }
                let front = self
                    .model
                    .tconcs
                    .get(&g)
                    .expect("handle implies physical")
                    .queue
                    .front()
                    .copied();
                match front {
                    None => {
                        // Typed poll must agree the group is empty.
                        let view = self.typed_guardian(g);
                        let got = view.poll(&mut self.heap, &self.ctx);
                        check!(
                            self,
                            got.is_none(),
                            "tpoll t{g}: heap returned {:?}, model expected empty",
                            got.map(|r| r.value())
                        );
                        Ok(true)
                    }
                    Some(Ref::Node(id)) if self.is_typed(id) => {
                        self.model
                            .tconcs
                            .get_mut(&g)
                            .expect("checked")
                            .queue
                            .pop_front();
                        let view = self.typed_guardian(g);
                        let got = view.poll(&mut self.heap, &self.ctx);
                        check!(
                            self,
                            got.is_some(),
                            "tpoll t{g}: heap returned None, model expected n{id}"
                        );
                        let root = got.expect("checked");
                        let want = self.node_value(id);
                        check!(
                            self,
                            root.value() == want,
                            "tpoll t{g}: heap returned {:?}, model expected n{id} ({want:?})",
                            root.value()
                        );
                        // The lifted mirror must carry the right id — the
                        // typed round trip through lower/lift.
                        let lifted_id = self.ctx.read(&self.heap, &root).id;
                        check!(
                            self,
                            lifted_id == id as i64,
                            "tpoll t{g}: lifted id {lifted_id}, expected {id}"
                        );
                        self.stats.polled += 1;
                        // Resurrection is confined to the poll owner: the
                        // delivered root re-enters the root set, typed.
                        if !self.model.roots.contains(&id) {
                            self.typed_roots.insert(id, root);
                            self.model.roots.insert(id);
                        }
                        Ok(true)
                    }
                    // An untyped queue front would be rejected by the
                    // typed poll's descriptor check — degrade instead.
                    Some(_) => Ok(false),
                }
            }
            Op::AllocTypedWeak { wid, node } => {
                if self.model.weaks.contains_key(&wid) || !self.is_typed(node) {
                    return Ok(false);
                }
                self.reserve(1)?;
                let root = self.typed_root(node);
                let w = TypedWeak::new(&mut self.heap, &self.ctx, &root);
                self.typed_weaks.insert(wid, w);
                self.model.weaks.insert(
                    wid,
                    MWeak {
                        gen: 0,
                        target: Ref::Node(node),
                        rooted: true,
                    },
                );
                Ok(true)
            }
            Op::UpgradeTypedWeak { wid } => {
                if !self.typed_weaks.contains_key(&wid) {
                    return Ok(false);
                }
                // Pull everything out of the borrowed upgrade before the
                // checks (a live `Gc` is a shared heap borrow).
                let upgraded = {
                    let w = &self.typed_weaks[&wid];
                    w.upgrade(&self.heap)
                        .map(|gc| (gc.value(), self.ctx.field::<TNode, i64>(&self.heap, gc, 0)))
                };
                let target = self.model.weaks[&wid].target;
                match target {
                    Ref::Node(id) => {
                        check!(
                            self,
                            upgraded.is_some(),
                            "tupgrade w{wid}: heap broke, model expects n{id} alive"
                        );
                        let (v, lifted_id) = upgraded.expect("checked");
                        let want = self.node_value(id);
                        check!(
                            self,
                            v == want,
                            "tupgrade w{wid}: heap {v:?}, model n{id} ({want:?})"
                        );
                        check!(
                            self,
                            lifted_id == id as i64,
                            "tupgrade w{wid}: id field {lifted_id}, expected {id}"
                        );
                    }
                    Ref::Null => {
                        check!(
                            self,
                            upgraded.is_none(),
                            "tupgrade w{wid}: heap upgraded {:?}, model says broken",
                            upgraded
                        );
                    }
                    Ref::Tconc(_) => unreachable!("typed weaks only watch typed nodes"),
                }
                Ok(true)
            }
            Op::SetPromotion { promotion } => {
                // A policy change between collections: the real heap goes
                // through the runtime setter, the model switches its rule
                // in lockstep, and the next collection's oracle check
                // proves survivor placement follows the new policy.
                self.heap.set_promotion(promotion);
                self.model.cfg.promotion = promotion;
                Ok(true)
            }
            Op::Collect { gen } => {
                let gen = gen.min(self.model.cfg.generations - 1);
                if self.traced {
                    // Events up to this safe point are mutator-side;
                    // archive them so the per-collection window below
                    // contains exactly one collection's worth.
                    self.events.extend(self.heap.drain_trace_events());
                }
                if let Err(e) = self.heap.try_collect(gen) {
                    self.stats.faults_hit += 1;
                    self.heap.verify().map_err(|v| {
                        format!("heap invalid after cleanly refused collection ({e}): {v}")
                    })?;
                    self.heap.set_acquisition_fault(None);
                    // The refused attempt may have emitted a partial
                    // collection prefix; archive it uninspected.
                    if self.traced {
                        self.events.extend(self.heap.drain_trace_events());
                    }
                    self.heap.collect(gen);
                }
                self.stats.collections += 1;
                let mrep = self.model.collect(gen);
                // An active autotuner may have retuned the promotion
                // policy at the end of the collection that just ran; the
                // change applies from the *next* collection, so sync the
                // model after its own (old-policy) collection. Trigger and
                // frequency retunes need no mirror — the rig collects only
                // at explicit safe points.
                self.model.cfg.promotion = self.heap.config().promotion;
                self.stats.finalized += mrep.finalized;
                let r = self.heap.last_report().expect("just collected").clone();
                let real = [
                    r.guardian_entries_visited,
                    r.guardian_entries_finalized,
                    r.guardian_entries_held,
                    r.guardian_entries_dropped,
                    r.guardian_loop_iterations,
                ];
                let predicted = [
                    mrep.visited,
                    mrep.finalized,
                    mrep.held,
                    mrep.dropped,
                    mrep.loop_iterations,
                ];
                check!(
                    self,
                    real == predicted,
                    "collect {gen}: guardian counters [visited, finalized, held, dropped, \
                     loop-iterations] diverge: heap {real:?}, model {predicted:?}"
                );
                check!(
                    self,
                    mrep.visited == mrep.held + mrep.finalized + mrep.dropped,
                    "collect {gen}: model violates visited == held+finalized+dropped: {mrep:?}"
                );
                if !self.model.cfg.ablate_weak_pass_first {
                    // The model's weak-car accounting assumes the paper's
                    // pass ordering; under the ablation the real pass
                    // (deliberately) breaks cars the model forwards.
                    let real = [r.weak_cars_broken, r.weak_cars_forwarded];
                    let predicted = [mrep.weak_cars_broken, mrep.weak_cars_forwarded];
                    check!(
                        self,
                        real == predicted,
                        "collect {gen}: weak counters [broken, forwarded] diverge: \
                         heap {real:?}, model {predicted:?}"
                    );
                }
                if self.traced {
                    self.check_events(gen, &mrep, &r)?;
                }
                self.check_state()?;
                Ok(true)
            }
            Op::Churn { n } => {
                self.reserve((2 * n as u64).div_ceil(512) + 1)?;
                for i in 0..n {
                    self.heap.cons(Value::fixnum(i as i64), Value::NIL);
                }
                Ok(true)
            }
            Op::Grow { bytes } => {
                let words = 1 + (bytes as u64).div_ceil(8);
                self.reserve(words.div_ceil(512).max(1))?;
                self.heap.make_bytevector(bytes as usize, 0xAB);
                Ok(true)
            }
        }
    }

    fn track_node(&mut self, id: u32, v: Value) {
        let tracker = self.heap.weak_cons(v, Value::fixnum(id as i64));
        let handle = self.heap.root(tracker);
        self.node_trackers.insert(id, handle);
        self.model.node_tracker_gen.insert(id, 0);
    }

    // ---- the oracle ----------------------------------------------------

    /// Traced mode: drains the events of the collection that just ran and
    /// checks them against the real report and the shadow model — the
    /// trace must tell the same story as both accountings.
    fn check_events(
        &mut self,
        gen: u8,
        mrep: &MReport,
        r: &CollectionReport,
    ) -> Result<(), String> {
        let window = self.heap.drain_trace_events();
        check!(
            self,
            self.heap.trace_dropped() == 0,
            "collect {gen}: event ring overflowed ({} dropped)",
            self.heap.trace_dropped()
        );
        let mut begins = 0u64;
        let mut ends = 0u64;
        let mut partition = (0u64, 0u64, 0u64); // visited, pend_hold, pend_final
        let mut outcome = None;
        let mut resurrected_sum = 0u64;
        let mut weak = (0u64, 0u64, 0u64); // scanned, broken, forwarded
        let mut gen_copied = 0u64;
        let mut released = 0u64;
        let mut collector_appends = 0u64;
        let mut mutator_appends = 0u64;
        let mut phase_ns = 0u128;
        for e in &window {
            match e.event {
                GcEvent::CollectionBegin {
                    index,
                    collected_generation,
                    target_generation,
                } => {
                    begins += 1;
                    check!(
                        self,
                        index == r.collection_index
                            && collected_generation == gen
                            && target_generation == r.target_generation,
                        "collect {gen}: CollectionBegin {index}/{collected_generation}->\
                         {target_generation} vs report {}/{gen}->{}",
                        r.collection_index,
                        r.target_generation
                    );
                }
                GcEvent::PhaseEnd { dur_ns, .. } => phase_ns += u128::from(dur_ns),
                GcEvent::GuardianPartition {
                    visited,
                    pend_hold,
                    pend_final,
                } => {
                    partition.0 += visited;
                    partition.1 += pend_hold;
                    partition.2 += pend_final;
                }
                GcEvent::GuardianRound { resurrected, .. } => resurrected_sum += resurrected,
                GcEvent::GuardianOutcome {
                    finalized,
                    held,
                    dropped,
                    loop_iterations,
                } => outcome = Some([finalized, held, dropped, loop_iterations]),
                GcEvent::WeakSweep {
                    scanned,
                    broken,
                    forwarded,
                } => {
                    weak.0 += scanned;
                    weak.1 += broken;
                    weak.2 += forwarded;
                }
                GcEvent::GenCopied { words, .. } => gen_copied += words,
                GcEvent::SegmentsReleased { count } => released += count,
                GcEvent::TconcAppend { during_collection } => {
                    if during_collection {
                        collector_appends += 1;
                    } else {
                        mutator_appends += 1;
                    }
                }
                GcEvent::CollectionEnd {
                    index,
                    words_copied,
                    pairs_copied,
                    objects_copied,
                    guardian_entries_visited,
                    weak_pairs_scanned,
                    dur_ns,
                } => {
                    ends += 1;
                    let got = [
                        index,
                        words_copied,
                        pairs_copied,
                        objects_copied,
                        guardian_entries_visited,
                        weak_pairs_scanned,
                    ];
                    let want = [
                        r.collection_index,
                        r.words_copied,
                        r.pairs_copied,
                        r.objects_copied,
                        r.guardian_entries_visited,
                        r.weak_pairs_scanned,
                    ];
                    check!(
                        self,
                        got == want,
                        "collect {gen}: CollectionEnd fields {got:?} vs report {want:?}"
                    );
                    check!(
                        self,
                        u128::from(dur_ns) == r.duration.as_nanos(),
                        "collect {gen}: CollectionEnd duration {dur_ns}ns vs report {:?}",
                        r.duration
                    );
                }
                _ => {}
            }
        }
        check!(
            self,
            begins == 1 && ends == 1,
            "collect {gen}: expected exactly one CollectionBegin/End, got {begins}/{ends}"
        );
        check!(
            self,
            partition.0 == r.guardian_entries_visited && partition.0 == partition.1 + partition.2,
            "collect {gen}: GuardianPartition {partition:?} vs visited {}",
            r.guardian_entries_visited
        );
        check!(
            self,
            outcome
                == Some([
                    r.guardian_entries_finalized,
                    r.guardian_entries_held,
                    r.guardian_entries_dropped,
                    r.guardian_loop_iterations,
                ]),
            "collect {gen}: GuardianOutcome {outcome:?} vs report"
        );
        check!(
            self,
            resurrected_sum == mrep.finalized,
            "collect {gen}: GuardianRound resurrections {resurrected_sum} vs model finalized {}",
            mrep.finalized
        );
        check!(
            self,
            weak == (
                r.weak_pairs_scanned,
                r.weak_cars_broken,
                r.weak_cars_forwarded
            ),
            "collect {gen}: WeakSweep {weak:?} vs report ({}, {}, {})",
            r.weak_pairs_scanned,
            r.weak_cars_broken,
            r.weak_cars_forwarded
        );
        check!(
            self,
            gen_copied == r.words_copied,
            "collect {gen}: GenCopied sum {gen_copied} vs words_copied {}",
            r.words_copied
        );
        check!(
            self,
            released == r.segments_freed,
            "collect {gen}: SegmentsReleased sum {released} vs segments_freed {}",
            r.segments_freed
        );
        check!(
            self,
            collector_appends == r.guardian_entries_finalized && mutator_appends == 0,
            "collect {gen}: tconc appends (collector {collector_appends}, mutator \
             {mutator_appends}) vs finalized {}",
            r.guardian_entries_finalized
        );
        check!(
            self,
            phase_ns == r.phases.total().as_nanos(),
            "collect {gen}: PhaseEnd sum {phase_ns}ns vs phases total {:?}",
            r.phases.total()
        );
        self.events.extend(window);
        Ok(())
    }

    /// Compares every observable of the real heap against the model.
    fn check_state(&mut self) -> Result<(), String> {
        self.heap
            .verify()
            .map_err(|v| format!("heap.verify() failed: {v}"))?;

        // Liveness oracle: a tracker's car is broken exactly when the model
        // reclaimed the object (trackers are immortal, so this covers every
        // object ever allocated); and trackers sit in the generation the
        // model predicts, which grounds the weak-word accounting below.
        for (&id, handle) in &self.node_trackers {
            let car = self.heap.car(handle.get());
            let alive = self.model.nodes.contains_key(&id);
            check!(
                self,
                car.is_ptr() == alive,
                "liveness: node n{id} tracker car {car:?}, model physical={alive}"
            );
            let tgen = self.heap.generation_of(handle.get());
            let want = Some(self.model.node_tracker_gen[&id]);
            check!(
                self,
                tgen == want,
                "node n{id} tracker generation: heap {tgen:?}, model {want:?}"
            );
        }
        for (&gi, handle) in &self.tconc_trackers {
            let car = self.heap.car(handle.get());
            let alive = self.model.tconcs.contains_key(&gi);
            check!(
                self,
                car.is_ptr() == alive,
                "liveness: tconc t{gi} tracker car {car:?}, model physical={alive}"
            );
            let tgen = self.heap.generation_of(handle.get());
            let want = Some(self.model.tconc_tracker_gen[&gi]);
            check!(
                self,
                tgen == want,
                "tconc t{gi} tracker generation: heap {tgen:?}, model {want:?}"
            );
        }

        // Per-node graph shape: kind, id slot, generation, strong edges,
        // weak car, payload — for every physical node, floating garbage
        // included.
        let ids: Vec<u32> = self.model.nodes.keys().copied().collect();
        for id in ids {
            self.check_node(id)?;
        }

        // Tconcs: queue contents in exact FIFO order, registration counts,
        // generation.
        let gis: Vec<u32> = self.model.tconcs.keys().copied().collect();
        for gi in gis {
            let tc = self.tconc_value(gi);
            let m = self.model.tconcs[&gi].clone();
            check!(
                self,
                self.heap.is_pair(tc),
                "tconc t{gi} is not a pair: {tc:?}"
            );
            let gen = self.heap.generation_of(tc);
            check!(
                self,
                gen == Some(m.gen),
                "tconc t{gi} generation: heap {gen:?}, model {}",
                m.gen
            );
            let items = self.queue_values(tc);
            check!(
                self,
                items.len() == m.queue.len(),
                "tconc t{gi} queue length: heap {}, model {}",
                items.len(),
                m.queue.len()
            );
            for (i, (got, want_ref)) in items.iter().zip(m.queue.iter()).enumerate() {
                let want = self.strong_value(*want_ref);
                check!(
                    self,
                    *got == want,
                    "tconc t{gi} queue[{i}]: heap {got:?}, model {want_ref} ({want:?})"
                );
            }
            let watched = self.heap.guardian_watched(tc);
            let mwatched = self.model.watched(gi);
            check!(
                self,
                watched == mwatched,
                "tconc t{gi} watched registrations: heap {watched}, model {mwatched}"
            );
        }

        // Rooted handles track the same addresses as the trackers.
        for (&id, handle) in &self.rooted {
            let want = self.node_value(id);
            let got = handle.get();
            check!(
                self,
                got == want,
                "root handle for n{id}: {got:?} vs tracker {want:?}"
            );
        }

        // Typed roots (shadow-stack slots) track relocations identically.
        for (&id, root) in &self.typed_roots {
            let want = self.node_value(id);
            let got = root.value();
            check!(
                self,
                got == want,
                "typed root for n{id}: {got:?} vs tracker {want:?}"
            );
        }

        // Typed weak references: the rooted pair's car and generation per
        // the model, same contract as the raw weak handles below.
        for (&wid, w) in &self.typed_weaks {
            let m = self.model.weaks[&wid].clone();
            let pair = w.pair();
            let car = self.heap.car(pair);
            let want = self.weak_value(m.target);
            check!(
                self,
                car == want,
                "typed weak w{wid} car: heap {car:?}, model {} ({want:?})",
                m.target
            );
            let gen = self.heap.generation_of(pair);
            check!(
                self,
                gen == Some(m.gen),
                "typed weak w{wid} generation: heap {gen:?}, model {}",
                m.gen
            );
        }

        // Standalone weak pairs: car broken/forwarded per the model.
        for (&wid, handle) in &self.weak_handles {
            let m = self.model.weaks[&wid].clone();
            let w = handle.get();
            let car = self.heap.car(w);
            let want = self.weak_value(m.target);
            check!(
                self,
                car == want,
                "weak pair w{wid} car: heap {car:?}, model {} ({want:?})",
                m.target
            );
            let gen = self.heap.generation_of(w);
            check!(
                self,
                gen == Some(m.gen),
                "weak pair w{wid} generation: heap {gen:?}, model {}",
                m.gen
            );
        }

        // Aggregate accounting: protected-list population and weak-pair
        // words, generation by generation.
        for (g, usage) in self.heap.generation_usage().iter().enumerate() {
            let mp = self.model.protected.get(g).map_or(0, Vec::len);
            check!(
                self,
                usage.protected_entries == mp,
                "gen {g} protected entries: heap {}, model {mp}",
                usage.protected_entries
            );
            let mw = 2 * self.model.weak_pairs_in_gen(g as u8);
            check!(
                self,
                usage.weak_pair_words == mw,
                "gen {g} weak-pair words: heap {}, model {mw}",
                usage.weak_pair_words
            );
        }
        Ok(())
    }

    fn check_node(&mut self, id: u32) -> Result<(), String> {
        let m = self.model.nodes[&id].clone();
        let v = self.node_value(id);
        let gen = self.heap.generation_of(v);
        check!(
            self,
            gen == Some(m.gen),
            "node n{id} generation: heap {gen:?}, model {}",
            m.gen
        );
        match m.kind {
            NodeKind::Pair => {
                check!(self, self.heap.is_pair(v), "node n{id} is not a pair");
                let tag = self.heap.car(v);
                check!(
                    self,
                    tag == Value::fixnum(id as i64),
                    "pair n{id} id slot: {tag:?}"
                );
                let inner = self.heap.cdr(v);
                check!(
                    self,
                    self.heap.is_pair(inner),
                    "pair n{id} lost its edge cell"
                );
                let (l, r) = (self.heap.car(inner), self.heap.cdr(inner));
                let (wl, wr) = (self.strong_value(m.left), self.strong_value(m.right));
                check!(
                    self,
                    l == wl,
                    "pair n{id} left edge: heap {l:?}, model {} ({wl:?})",
                    m.left
                );
                check!(
                    self,
                    r == wr,
                    "pair n{id} right edge: heap {r:?}, model {} ({wr:?})",
                    m.right
                );
            }
            NodeKind::Vector => {
                check!(self, self.heap.is_vector(v), "node n{id} is not a vector");
                let len = self.heap.vector_len(v);
                check!(
                    self,
                    len == 4 + m.payload as usize,
                    "vector n{id} length: heap {len}, model {}",
                    4 + m.payload
                );
                let tag = self.heap.vector_ref(v, 0);
                check!(
                    self,
                    tag == Value::fixnum(id as i64),
                    "vector n{id} id slot: {tag:?}"
                );
                let (l, r) = (self.heap.vector_ref(v, 1), self.heap.vector_ref(v, 2));
                let (wl, wr) = (self.strong_value(m.left), self.strong_value(m.right));
                check!(
                    self,
                    l == wl,
                    "vector n{id} left edge: heap {l:?}, model {} ({wl:?})",
                    m.left
                );
                check!(
                    self,
                    r == wr,
                    "vector n{id} right edge: heap {r:?}, model {} ({wr:?})",
                    m.right
                );
                let w = self.heap.vector_ref(v, 3);
                check!(
                    self,
                    self.heap.is_weak_pair(w),
                    "vector n{id} attached weak pair missing: {w:?}"
                );
                let wgen = self.heap.generation_of(w);
                check!(
                    self,
                    wgen == Some(m.gen),
                    "vector n{id} attached weak generation: heap {wgen:?}, model {}",
                    m.gen
                );
                let car = self.heap.car(w);
                let want = self.weak_value(m.weak_car);
                check!(
                    self,
                    car == want,
                    "vector n{id} weak car: heap {car:?}, model {} ({want:?})",
                    m.weak_car
                );
                if m.payload > 0 {
                    let fill = Value::fixnum(id as i64);
                    let (first, last) =
                        (self.heap.vector_ref(v, 4), self.heap.vector_ref(v, len - 1));
                    check!(
                        self,
                        first == fill && last == fill,
                        "vector n{id} payload corrupted: [{first:?} … {last:?}]"
                    );
                }
            }
            NodeKind::Bytevector => {
                check!(
                    self,
                    self.heap.is_bytevector(v),
                    "node n{id} is not a bytevector"
                );
                let len = self.heap.bytevector_len(v);
                check!(
                    self,
                    len == m.payload as usize,
                    "bytevector n{id} length: heap {len}, model {}",
                    m.payload
                );
                if len > 0 {
                    let (a, b) = (
                        self.heap.bytevector_ref(v, 0),
                        self.heap.bytevector_ref(v, len - 1),
                    );
                    check!(
                        self,
                        a == id as u8 && b == id as u8,
                        "bytevector n{id} payload corrupted: [{a} … {b}]"
                    );
                }
            }
            NodeKind::String => {
                check!(self, self.heap.is_string(v), "node n{id} is not a string");
                let s = self.heap.string_value(v);
                let want = format!("node-{id}");
                check!(self, s == want, "string n{id} content: {s:?}");
            }
            NodeKind::Typed => {
                check!(self, self.heap.is_record(v), "node n{id} is not a record");
                let len = self.heap.record_len(v);
                check!(
                    self,
                    len == 3,
                    "typed n{id} field count: heap {len}, want 3"
                );
                // The descriptor must still be the context's interned
                // `TNode` symbol (relocated in lockstep by collections).
                let desc = self.heap.record_descriptor(v);
                let want_desc = self.ctx.descriptor::<TNode>(&mut self.heap);
                check!(
                    self,
                    desc == want_desc,
                    "typed n{id} descriptor: heap {desc:?}, interned {want_desc:?}"
                );
                let tag = self.heap.record_ref(v, 0);
                check!(
                    self,
                    tag == Value::fixnum(id as i64),
                    "typed n{id} id slot: {tag:?}"
                );
                let (l, r) = (self.heap.record_ref(v, 1), self.heap.record_ref(v, 2));
                let (wl, wr) = (self.strong_value(m.left), self.strong_value(m.right));
                check!(
                    self,
                    l == wl,
                    "typed n{id} left edge: heap {l:?}, model {} ({wl:?})",
                    m.left
                );
                check!(
                    self,
                    r == wr,
                    "typed n{id} right edge: heap {r:?}, model {} ({wr:?})",
                    m.right
                );
            }
        }
        Ok(())
    }

    /// Non-destructive tconc queue walk: first cell at `car(tc)`, elements
    /// are cell cars, stop at the trailing dummy `cdr(tc)` (exclusive).
    fn queue_values(&self, tc: Value) -> Vec<Value> {
        let mut out = Vec::new();
        let mut cur = self.heap.car(tc);
        let last = self.heap.cdr(tc);
        while cur != last {
            out.push(self.heap.car(cur));
            cur = self.heap.cdr(cur);
        }
        out
    }
}
