//! The bounded torture campaign wired into `cargo test` (the open-ended
//! soak lives in `crates/bench/src/bin/torture.rs`).
//!
//! Environment knobs for longer local runs:
//!   TORTURE_SEEDS  extra random-base seeds in the smoke test (default 4)
//!   TORTURE_OPS    ops per smoke trace                       (default 600)

use guardians_torture::{fault_sweep, generate, run_trace, shrink, Trace};

fn env_num(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn must_pass(trace: &Trace, what: &str) {
    if let Err(f) = run_trace(trace) {
        panic!("{what}: {f}\n{}", guardians_torture::explain(trace, &f));
    }
}

/// Fixed seeds, every promotion/flat combination (seed mod 12 covers the
/// rotation in `config_for_seed`), plus a few seeds from an arbitrary
/// time-derived base so every CI run explores fresh territory. Any
/// failure prints the seed — which reproduces it deterministically — and
/// the shrunk minimal trace.
#[test]
fn fixed_and_random_seeds_agree_with_the_oracle() {
    let ops = env_num("TORTURE_OPS", 600) as usize;
    let mut collections = 0;
    for seed in 0..12u64 {
        let trace = generate(seed, ops);
        must_pass(&trace, "fixed seed");
        collections += run_trace(&trace).expect("just passed").collections;
    }
    assert!(
        collections > 50,
        "fixed seeds barely collected: {collections}"
    );

    let base = env_num(
        "TORTURE_SEED_BASE",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_secs(),
    );
    let extra = env_num("TORTURE_SEEDS", 4);
    for seed in base..base + extra {
        println!("random seed {seed} ({ops} ops)");
        must_pass(&generate(seed, ops), "random seed");
    }
}

/// The acquisition fault at *every* offset of a few short traces: each
/// faulted run must either refuse ops cleanly (heap verify-valid, then
/// recover) or complete — and must reach the same final state as the
/// fault-free run, since the rig re-applies the refused op after lifting
/// the fault.
#[test]
fn exhaustive_fault_offset_sweep_is_clean() {
    for seed in 0..3u64 {
        let (runs, fired) =
            fault_sweep(seed, 80, 1).unwrap_or_else(|f| panic!("fault sweep diverged: {f}"));
        assert!(runs > 10, "sweep of seed {seed} too small: {runs} runs");
        assert!(fired > 0, "sweep of seed {seed} never fired the fault");
    }
}

/// The parallel campaign matrix: every seed replays under 1, 2, and 4
/// collector workers with zero oracle divergences, and the deterministic
/// observables — applied ops, collections, finalized guardian entries,
/// successful polls (whose FIFO order the oracle checks), surviving
/// nodes — are identical across worker counts. This is the parallel
/// engine's shadow-oracle-equivalence acceptance check.
#[test]
fn parallel_worker_matrix_agrees_with_the_oracle() {
    let seeds = env_num("TORTURE_PAR_SEEDS", 17);
    let ops = env_num("TORTURE_PAR_OPS", 300) as usize;
    let mut runs = 0;
    for seed in 0..seeds {
        let mut baseline = None;
        for workers in [1usize, 2, 4] {
            let stats = guardians_torture::check_seed_parallel(seed, ops, workers)
                .unwrap_or_else(|f| panic!("seed {seed}, {workers} workers: {f}"));
            runs += 1;
            let key = (
                stats.applied,
                stats.collections,
                stats.finalized,
                stats.polled,
                stats.live_nodes,
            );
            match &baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(
                    *b, key,
                    "seed {seed}: {workers} workers changed the deterministic observables"
                ),
            }
        }
    }
    assert!(runs >= 50, "parallel campaign too small: {runs} runs");
}

/// The bounded-pause budget matrix: every seed replays stop-the-world,
/// coarsely sliced (2 ms), and at the finest possible slicing (0 µs =
/// one work unit per increment) with zero oracle divergences — and the
/// deterministic observables, including finalized guardian entries and
/// FIFO poll order (checked by the oracle) and weak-car outcomes, are
/// identical across budgets. This is the incremental engine's
/// guardian-atomicity acceptance check: however finely the copy/scan
/// work is sliced, the §4 three-block pass and the weak break run
/// unsliced in the terminal increment, so observables cannot move.
#[test]
fn pause_budget_matrix_agrees_with_the_oracle() {
    let seeds = env_num("TORTURE_BUDGET_SEEDS", 12);
    let ops = env_num("TORTURE_BUDGET_OPS", 300) as usize;
    let mut runs = 0;
    for seed in 0..seeds {
        let mut baseline = None;
        for budget_us in [None, Some(2_000u64), Some(0)] {
            let stats = match budget_us {
                None => guardians_torture::check_seed(seed, ops),
                Some(us) => guardians_torture::check_seed_budget(seed, ops, us),
            }
            .unwrap_or_else(|f| panic!("seed {seed}, budget {budget_us:?}: {f}"));
            runs += 1;
            let key = (
                stats.applied,
                stats.collections,
                stats.finalized,
                stats.polled,
                stats.live_nodes,
            );
            match &baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(
                    *b, key,
                    "seed {seed}: budget {budget_us:?} changed the deterministic observables"
                ),
            }
        }
    }
    assert!(runs >= 36, "budget campaign too small: {runs} runs");
}

/// The typed-API matrix: generated traces (which interleave typed-layer
/// ops — `tnode`/`troot`/`tregister`/`tpoll`/`tweak`/`tupgrade` — with
/// the raw ops) replay under the serial engine, 4 collector workers, and
/// a 100 µs pause budget with zero oracle divergences, and the
/// deterministic observables are identical across the three engines.
/// This is the typed front-end's engine-agnosticism acceptance check:
/// every typed accessor funnels through the same resolve/barrier paths
/// the oracle already pins.
#[test]
fn typed_api_matrix_agrees_with_the_oracle() {
    use guardians_torture::Op;
    let seeds = env_num("TORTURE_TYPED_SEEDS", 10);
    let ops = env_num("TORTURE_TYPED_OPS", 400) as usize;
    // A fresh seed window when CI provides one (nightly soak); any
    // window works — every generated trace mixes typed ops in.
    let base = env_num("TORTURE_SEED_BASE", 0);
    let mut runs = 0;
    let mut typed_traces = 0;
    for seed in base..base + seeds {
        let trace = generate(seed, ops);
        if trace.ops.iter().any(|o| {
            matches!(
                o,
                Op::AllocTyped { .. } | Op::PollTyped { .. } | Op::UpgradeTypedWeak { .. }
            )
        }) {
            typed_traces += 1;
        }
        let mut baseline = None;
        for (workers, budget_us) in [(1usize, None), (4, None), (1, Some(100u64))] {
            let mut t = trace.clone();
            t.config.workers = workers;
            t.config.pause_budget = budget_us;
            let stats = run_trace(&t).unwrap_or_else(|f| {
                panic!("typed matrix seed {seed}, {workers} workers, budget {budget_us:?}: {f}")
            });
            runs += 1;
            let key = (
                stats.applied,
                stats.collections,
                stats.finalized,
                stats.polled,
                stats.live_nodes,
            );
            match &baseline {
                None => baseline = Some(key),
                Some(b) => assert_eq!(
                    *b, key,
                    "seed {seed}: engine ({workers} workers, {budget_us:?}) moved observables"
                ),
            }
        }
    }
    assert!(runs >= 30, "typed matrix too small: {runs} runs");
    assert!(
        typed_traces == seeds,
        "typed ops missing from some traces ({typed_traces}/{seeds})"
    );
}

/// The promotion-strategy matrix: every seed replays under all four
/// promotion policies — `next`, `cap1`, `cap2`, `same` — on each of the
/// three engines (serial, 4 workers, 100 µs budget) with zero oracle
/// divergences, and the deterministic observables are identical across
/// engines within each policy. Generated traces also interleave
/// `setpromo` retunes, so the between-collections reconfiguration path
/// is exercised against the oracle on every engine.
#[test]
fn promotion_strategy_matrix_agrees_with_the_oracle() {
    use guardians_gc::Promotion;
    use guardians_torture::Op;
    let seeds = env_num("TORTURE_PROMO_SEEDS", 5);
    let ops = env_num("TORTURE_PROMO_OPS", 300) as usize;
    let mut runs = 0;
    let mut retuned_traces = 0;
    for seed in 0..seeds {
        let trace = generate(seed, ops);
        if trace
            .ops
            .iter()
            .any(|o| matches!(o, Op::SetPromotion { .. }))
        {
            retuned_traces += 1;
        }
        for promotion in [
            Promotion::NextGeneration,
            Promotion::Capped(1),
            Promotion::Capped(2),
            Promotion::SameGeneration,
        ] {
            let mut baseline = None;
            for (workers, budget_us) in [(1usize, None), (4, None), (1, Some(100u64))] {
                let mut t = trace.clone();
                t.config.promotion = promotion;
                t.config.workers = workers;
                t.config.pause_budget = budget_us;
                let stats = run_trace(&t).unwrap_or_else(|f| {
                    panic!(
                        "promotion matrix seed {seed}, {promotion:?}, {workers} workers, \
                         budget {budget_us:?}: {f}"
                    )
                });
                runs += 1;
                let key = (
                    stats.applied,
                    stats.collections,
                    stats.finalized,
                    stats.polled,
                    stats.live_nodes,
                );
                match &baseline {
                    None => baseline = Some(key),
                    Some(b) => assert_eq!(
                        *b, key,
                        "seed {seed}, {promotion:?}: engine ({workers} workers, \
                         {budget_us:?}) moved observables"
                    ),
                }
            }
        }
    }
    assert!(runs >= 60, "promotion matrix too small: {runs} runs");
    assert!(
        retuned_traces > 0,
        "no generated trace exercised setpromo ({retuned_traces}/{seeds})"
    );
}

/// The autotuner under the oracle: generated traces replay with the
/// policy controller in `Observe` and `Active` mode on all three
/// engines, with zero divergences — and because every controller sensor
/// is deterministic and engine-agnostic, the observables (and hence the
/// controller's decisions) are identical across engines. In `Active`
/// mode the tenure knob may retune promotion mid-run; the rig replays
/// the model against the heap's current policy after every collection,
/// so survivor placement stays pinned observable-for-observable.
#[test]
fn autotune_matrix_agrees_with_the_oracle() {
    use guardians_gc::AutotuneMode;
    let seeds = env_num("TORTURE_AUTOTUNE_SEEDS", 4);
    let ops = env_num("TORTURE_AUTOTUNE_OPS", 300) as usize;
    let mut runs = 0;
    for seed in 0..seeds {
        let trace = generate(seed, ops);
        for autotune in [AutotuneMode::Observe, AutotuneMode::Active] {
            let mut baseline = None;
            for (workers, budget_us) in [(1usize, None), (4, None), (1, Some(100u64))] {
                let mut t = trace.clone();
                t.config.autotune = autotune;
                t.config.workers = workers;
                t.config.pause_budget = budget_us;
                let stats = run_trace(&t).unwrap_or_else(|f| {
                    panic!(
                        "autotune matrix seed {seed}, {autotune} mode, {workers} workers, \
                         budget {budget_us:?}: {f}"
                    )
                });
                runs += 1;
                let key = (
                    stats.applied,
                    stats.collections,
                    stats.finalized,
                    stats.polled,
                    stats.live_nodes,
                );
                match &baseline {
                    None => baseline = Some(key),
                    Some(b) => assert_eq!(
                        *b, key,
                        "seed {seed}, {autotune} mode: engine ({workers} workers, \
                         {budget_us:?}) moved observables"
                    ),
                }
            }
        }
    }
    assert!(runs >= 24, "autotune matrix too small: {runs} runs");
}

/// A handwritten typed trace replayed from its text form, pinning the §4
/// ordering through the typed surface: a typed node is guarded and
/// weakly watched, dies, is salvaged by the guardian pass, and the typed
/// weak still upgrades (weaks break *after* the guardian pass) — then
/// `tpoll` resurrects it through a typed root.
#[test]
fn typed_trace_replays_from_text_and_pins_weak_ordering() {
    let text = "\
config 4 next 0 0 -
tnode 0 null null
troot 0
tnode 1 n0 null
guardian 0
tregister 0 1
tweak 0 1
collect 0
tupgrade 0
tpoll 0
tupgrade 0
collect 0
tupgrade 0
";
    let trace = Trace::parse(text).expect("parses");
    let stats = run_trace(&trace).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(stats.polled, 1, "the salvaged typed node is delivered once");
    assert_eq!(stats.finalized, 1);
    assert!(stats.checks > 0);
}

/// The scheme-differential interpreter matrix: every seed's
/// guardian-heavy Scheme workload replays under the naive and VM tiers
/// against the staged anchor, on the serial, parallel (4 workers), and
/// bounded-pause (100 µs) engines — observables byte-identical
/// everywhere, and the VM's deterministic heap counters identical to
/// the anchor's. This is the bytecode tier's torture acceptance check.
#[test]
fn scheme_interp_matrix_agrees_across_tiers() {
    use guardians_torture::{run_scheme_differential, InterpMode, TortureConfig};
    let seeds = env_num("TORTURE_SCHEME_SEEDS", 3);
    let forms = env_num("TORTURE_SCHEME_FORMS", 60) as usize;
    let mut runs = 0;
    let mut collections = 0;
    for seed in 0..seeds {
        for interp in [InterpMode::Naive, InterpMode::Vm] {
            for (workers, budget_us) in [(1usize, None), (4, None), (1, Some(100u64))] {
                let cfg = TortureConfig {
                    interp,
                    workers,
                    pause_budget: budget_us,
                    ..guardians_torture::config_for_seed(seed)
                };
                let stats = run_scheme_differential(seed, forms, &cfg).unwrap_or_else(|f| {
                    panic!(
                        "seed {seed}, {interp} tier, {workers} workers, budget {budget_us:?}: {f}"
                    )
                });
                collections += stats.collections;
                runs += 1;
            }
        }
    }
    assert!(runs >= 18, "scheme matrix too small: {runs} runs");
    assert!(collections > 0, "scheme matrix never collected");
}

/// The event-traced rig under the finest budget: per-collection event
/// parity (phase sums, counter fields, tconc-append attribution) holds
/// with the collection sliced into many increments.
#[test]
fn traced_budget_runs_agree_event_for_event() {
    for seed in 0..4u64 {
        let mut trace = generate(seed, 300);
        trace.config.pause_budget = Some(0);
        let (stats, _events) = guardians_torture::run_trace_traced(&trace)
            .unwrap_or_else(|f| panic!("traced budget seed {seed}: {f}"));
        assert!(stats.collections > 0, "seed {seed} never collected");
    }
}

/// The acquisition fault swept across incremental runs: mid-cycle
/// preflights must refuse cleanly (`GcError::Exhausted`, heap
/// verify-valid, resumable) — never a tripwire panic from an increment
/// crossing the limit, which would mean the worst-case reservation is
/// unsound mid-collection.
#[test]
fn incremental_fault_injection_stays_clean() {
    for seed in 0..2u64 {
        let mut trace = generate(seed, 80);
        trace.config.pause_budget = Some(0);
        let base = run_trace(&trace)
            .unwrap_or_else(|f| panic!("fault-free incremental run of seed {seed}: {f}"));
        let mut fired = 0;
        for offset in (0..=base.acquisitions).step_by(3) {
            let mut t = trace.clone();
            t.config.fail_acquisition_at = Some(offset);
            let stats =
                run_trace(&t).unwrap_or_else(|f| panic!("seed {seed}, fault@{offset}: {f}"));
            fired += stats.faults_hit;
        }
        assert!(fired > 0, "seed {seed} never fired the fault");
    }
}

/// The acquisition fault with racing workers: under `workers = 4` the
/// fallible entry points must still refuse cleanly (`GcError::Exhausted`
/// with the heap verify-valid, then recover) — never a tripwire panic
/// from a worker crossing the limit mid-collection, which would mean the
/// parallel engine broke `try_collect`'s worst-case reservation.
#[test]
fn parallel_fault_injection_stays_clean() {
    for seed in 0..2u64 {
        let mut trace = generate(seed, 80);
        trace.config.workers = 4;
        let base = run_trace(&trace)
            .unwrap_or_else(|f| panic!("fault-free parallel run of seed {seed}: {f}"));
        let mut fired = 0;
        for offset in (0..=base.acquisitions).step_by(3) {
            let mut t = trace.clone();
            t.config.fail_acquisition_at = Some(offset);
            let stats =
                run_trace(&t).unwrap_or_else(|f| panic!("seed {seed}, fault@{offset}: {f}"));
            fired += stats.faults_hit;
        }
        assert!(fired > 0, "seed {seed} never fired the fault");
    }
}

fn regression_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("regressions")
}

fn load_trace(name: &str) -> Trace {
    let path = regression_dir().join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    Trace::parse(&text).unwrap_or_else(|e| panic!("parsing {name}: {e}"))
}

/// Every committed regression trace replays green.
#[test]
fn regression_corpus_replays_clean() {
    let mut found = 0;
    for entry in std::fs::read_dir(regression_dir()).expect("regressions dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "trace") {
            found += 1;
            let name = path
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            must_pass(&load_trace(&name), &name);
        }
    }
    assert!(
        found >= 2,
        "regression corpus went missing ({found} traces)"
    );
}

/// The committed §4 trace fails on demand when the fix is reverted: with
/// `ablate_weak_pass_first` (weak pass before the guardian pass), the
/// oracle catches the wrongly broken weak pointer — and the shrinker
/// still produces a failing minimal trace from it.
#[test]
fn weak_ordering_trace_fails_when_the_fix_is_reverted() {
    let good = load_trace("weak-ordering.trace");
    must_pass(&good, "weak-ordering (fix in place)");

    let mut reverted = good.clone();
    reverted.config.ablate_weak_pass_first = true;
    let failure = run_trace(&reverted).expect_err("ablation must break the §4 ordering");
    assert!(
        failure.message.contains("weak") || failure.message.contains("tracker"),
        "unexpected failure mode: {failure}"
    );

    let minimal = shrink(&reverted);
    assert!(minimal.ops.len() <= reverted.ops.len());
    assert!(
        run_trace(&minimal).is_err(),
        "shrunk trace must still fail under the ablation"
    );
}

/// The guardian-chain trace's specific observables, beyond "replays
/// clean": round-2 salvage order and agent survival are pinned by the
/// oracle itself, so here we only need the trace to stay parseable and
/// meaningful after future op-language changes.
#[test]
fn guardian_chain_trace_exercises_the_fixpoint() {
    let t = load_trace("guardian-chain.trace");
    let stats = run_trace(&t).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(stats.collections, 2);
    assert!(stats.finalized >= 2, "fixpoint salvages tconc and object");
    assert_eq!(stats.polled, 2, "both polls deliver");
}

/// The traced rig: every collection's GC events are cross-checked against
/// the shadow oracle and the collection report, across a spread of seeds
/// covering the promotion/flat rotation.
#[test]
fn traced_seeds_agree_event_for_event() {
    for seed in 0..6u64 {
        let trace = generate(seed, 400);
        let (stats, events) = guardians_torture::run_trace_traced(&trace)
            .unwrap_or_else(|f| panic!("traced seed {seed}: {f}"));
        assert!(stats.collections > 0, "seed {seed} never collected");
        assert!(
            events.len() as u64 > stats.collections,
            "seed {seed}: trace suspiciously sparse ({} events)",
            events.len()
        );
    }
}
