//! Counter-parity regression test for the bulk-copy engine rewrite.
//!
//! The golden values below were recorded by running this exact workload on
//! the collector *before* the slice-based copy/scan engine landed (the
//! per-word `word()`/`set_word()` loops, `Vec<bool>` from-space map, and
//! re-walking Kleene worklist). The rewrite must be a pure speed change:
//! every deterministic work counter — words/pairs/objects copied, guardian
//! entries visited, finalized ids — must stay byte-identical, proving the
//! fast path changed *speed*, not *semantics*.
//!
//! If this test ever fails after an intentional algorithm change (not a
//! performance refactor), re-record the goldens with
//! `PARITY_PRINT=1 cargo test -p guardians-bench --test counter_parity -- --nocapture`.

use guardians_gc::{GcConfig, Heap, Promotion, Value};
use guardians_workloads::KeyGen;

/// Everything deterministic a collection sequence produces.
#[derive(Debug, Default, PartialEq, Eq)]
struct Observed {
    collections: u64,
    words_copied: u64,
    pairs_copied: u64,
    objects_copied: u64,
    guardian_entries_visited: u64,
    guardian_entries_held: u64,
    guardian_entries_finalized: u64,
    weak_cars_broken: u64,
    weak_cars_forwarded: u64,
    pure_words_skipped: u64,
    finalized_ids: Vec<u64>,
}

/// Drives a deterministic mixed workload under `config` and accumulates
/// every per-collection counter: short-lived lists, a survivor window,
/// guardians over records, watched (collector-invoked baseline) boxes,
/// weak pairs, pure-space payloads, and periodically-dropped large
/// multi-segment vectors that exercise the cross-run bulk-copy path.
fn drive_with_report_sums(config: GcConfig) -> Observed {
    let mut heap = Heap::new(config);
    let mut gen = KeyGen::new(0xC0FFEE, 0.3);
    let mut obs = Observed::default();

    let guardian = heap.make_guardian();
    let mut window: Vec<Option<guardians_gc::Rooted>> = (0..96).map(|_| None).collect();
    let mut big_slots: Vec<Option<guardians_gc::Rooted>> = vec![None, None, None];
    let descriptor = {
        let d = heap.make_symbol("parity-record");
        heap.root(d)
    };

    let absorb = |obs: &mut Observed, r: &guardians_gc::CollectionReport| {
        obs.collections += 1;
        obs.words_copied += r.words_copied;
        obs.pairs_copied += r.pairs_copied;
        obs.objects_copied += r.objects_copied;
        obs.guardian_entries_visited += r.guardian_entries_visited;
        obs.guardian_entries_held += r.guardian_entries_held;
        obs.guardian_entries_finalized += r.guardian_entries_finalized;
        obs.weak_cars_broken += r.weak_cars_broken;
        obs.weak_cars_forwarded += r.weak_cars_forwarded;
        obs.pure_words_skipped += r.pure_words_skipped;
        obs.finalized_ids.extend(r.finalized_ids.iter().copied());
    };

    for i in 0..6_000u64 {
        let mut list = Value::NIL;
        for k in 0..4 {
            list = heap.cons(Value::fixnum((i * 31 + k) as i64), list);
        }
        if gen.flip(0.12) {
            let slot = gen.uniform(window.len());
            window[slot] = Some(heap.root(list));
        }

        match i % 7 {
            0 => {
                let r = heap.make_record(descriptor.get(), &[list, Value::fixnum(i as i64)]);
                guardian.register(&mut heap, r);
                // Some guarded records stay reachable so entries are held
                // (and parked in older generations) rather than finalized.
                if gen.flip(0.2) {
                    let slot = gen.uniform(window.len());
                    window[slot] = Some(heap.root(r));
                }
            }
            1 => {
                let b = heap.make_box(list);
                heap.register_for_finalization(b, i);
            }
            2 => {
                let w = heap.weak_cons(list, Value::fixnum(i as i64));
                let slot = gen.uniform(window.len());
                window[slot] = Some(heap.root(w));
            }
            3 => {
                let _ = heap.make_string("pure-space payload: no pointers in here");
                let _ = heap.make_bytevector(64, (i % 251) as u8);
            }
            _ => {}
        }

        if i % 512 == 0 {
            let big = heap.make_vector(1500, list);
            let slot = (i / 512) as usize % big_slots.len();
            big_slots[slot] = Some(heap.root(big));
        }

        if i % 32 == 0 {
            let report = heap.maybe_collect().cloned();
            if let Some(r) = report {
                absorb(&mut obs, &r);
            }
        }
        while guardian.poll(&mut heap).is_some() {}
    }

    let max_gen = heap.config().max_generation();
    let r = heap.collect(max_gen).clone();
    absorb(&mut obs, &r);
    heap.verify().expect("heap valid at end of parity workload");
    obs
}

fn parity_config() -> GcConfig {
    GcConfig {
        generations: 4,
        trigger_bytes: 32 * 1024,
        frequency: vec![1, 4, 16, 64],
        promotion: Promotion::NextGeneration,
        ..GcConfig::new()
    }
}

#[test]
fn counters_match_pre_rewrite_goldens() {
    let obs = drive_with_report_sums(parity_config());
    if std::env::var("PARITY_PRINT").is_ok() {
        println!("golden: {obs:#?}");
        let mut ids = obs.finalized_ids.clone();
        ids.sort_unstable();
        println!("finalized_ids sorted: {ids:?}");
    }

    // ---- golden values recorded on the pre-rewrite collector ----
    assert_eq!(obs.collections, GOLDEN_COLLECTIONS, "collections");
    assert_eq!(obs.words_copied, GOLDEN_WORDS_COPIED, "words_copied");
    assert_eq!(obs.pairs_copied, GOLDEN_PAIRS_COPIED, "pairs_copied");
    assert_eq!(obs.objects_copied, GOLDEN_OBJECTS_COPIED, "objects_copied");
    assert_eq!(
        obs.guardian_entries_visited, GOLDEN_GUARDIAN_ENTRIES_VISITED,
        "guardian_entries_visited"
    );
    assert_eq!(
        obs.guardian_entries_held, GOLDEN_GUARDIAN_ENTRIES_HELD,
        "guardian_entries_held"
    );
    assert_eq!(
        obs.guardian_entries_finalized, GOLDEN_GUARDIAN_ENTRIES_FINALIZED,
        "guardian_entries_finalized"
    );
    assert_eq!(
        obs.weak_cars_broken, GOLDEN_WEAK_CARS_BROKEN,
        "weak_cars_broken"
    );
    assert_eq!(
        obs.weak_cars_forwarded, GOLDEN_WEAK_CARS_FORWARDED,
        "weak_cars_forwarded"
    );
    assert_eq!(
        obs.pure_words_skipped, GOLDEN_PURE_WORDS_SKIPPED,
        "pure_words_skipped"
    );
    assert_eq!(
        obs.finalized_ids,
        GOLDEN_FINALIZED_IDS.to_vec(),
        "finalized_ids"
    );
}

#[test]
fn parity_workload_is_self_deterministic() {
    let a = drive_with_report_sums(parity_config());
    let b = drive_with_report_sums(parity_config());
    assert_eq!(a, b, "two runs of the parity workload must agree exactly");
}

// Golden values; see module docs for the re-recording procedure.
const GOLDEN_COLLECTIONS: u64 = 18;
const GOLDEN_WORDS_COPIED: u64 = 51289;
const GOLDEN_PAIRS_COPIED: u64 = 6421;
const GOLDEN_OBJECTS_COPIED: u64 = 1006;
const GOLDEN_GUARDIAN_ENTRIES_VISITED: u64 = 975;
const GOLDEN_GUARDIAN_ENTRIES_HELD: u64 = 126;
const GOLDEN_GUARDIAN_ENTRIES_FINALIZED: u64 = 849;
const GOLDEN_WEAK_CARS_BROKEN: u64 = 489;
const GOLDEN_WEAK_CARS_FORWARDED: u64 = 48;
const GOLDEN_PURE_WORDS_SKIPPED: u64 = 12;
#[rustfmt::skip]
const GOLDEN_FINALIZED_IDS: [u64; 857] = [
    1, 8, 15, 22, 29, 36, 43, 50, 57, 64, 71, 78,
    85, 92, 99, 106, 113, 120, 127, 134, 141, 148, 155, 162,
    169, 176, 183, 190, 197, 204, 211, 218, 225, 232, 239, 246,
    253, 260, 267, 274, 281, 288, 295, 302, 309, 316, 323, 330,
    337, 344, 351, 358, 365, 372, 379, 386, 393, 400, 407, 414,
    421, 428, 435, 442, 449, 456, 463, 470, 477, 484, 491, 498,
    505, 512, 519, 526, 533, 540, 547, 554, 561, 568, 575, 582,
    589, 596, 603, 610, 617, 624, 631, 638, 645, 652, 659, 666,
    673, 680, 687, 694, 701, 708, 715, 722, 729, 736, 743, 750,
    757, 764, 771, 778, 785, 792, 799, 806, 813, 820, 827, 834,
    841, 848, 855, 862, 869, 876, 883, 890, 897, 904, 911, 918,
    925, 932, 939, 946, 953, 960, 967, 974, 981, 988, 995, 1002,
    1009, 1016, 1023, 1030, 1037, 1044, 1051, 1058, 1065, 1072, 1079, 1086,
    1093, 1100, 1107, 1114, 1121, 1128, 1135, 1142, 1149, 1156, 1163, 1170,
    1177, 1184, 1191, 1198, 1205, 1212, 1219, 1226, 1233, 1240, 1247, 1254,
    1261, 1268, 1275, 1282, 1289, 1296, 1303, 1310, 1317, 1324, 1331, 1338,
    1345, 1352, 1359, 1366, 1373, 1380, 1387, 1394, 1401, 1408, 1415, 1422,
    1429, 1436, 1443, 1450, 1457, 1464, 1471, 1478, 1485, 1492, 1499, 1506,
    1513, 1520, 1527, 1534, 1541, 1548, 1555, 1562, 1569, 1576, 1583, 1590,
    1597, 1604, 1611, 1618, 1625, 1632, 1639, 1646, 1653, 1660, 1667, 1674,
    1681, 1688, 1695, 1702, 1709, 1716, 1723, 1730, 1737, 1744, 1751, 1758,
    1765, 1772, 1779, 1786, 1793, 1800, 1807, 1814, 1821, 1828, 1835, 1842,
    1849, 1856, 1863, 1870, 1877, 1884, 1891, 1898, 1905, 1912, 1919, 1926,
    1933, 1940, 1947, 1954, 1961, 1968, 1975, 1982, 1989, 1996, 2003, 2010,
    2017, 2024, 2031, 2038, 2045, 2052, 2059, 2066, 2073, 2080, 2087, 2094,
    2101, 2108, 2115, 2122, 2129, 2136, 2143, 2150, 2157, 2164, 2171, 2178,
    2185, 2192, 2199, 2206, 2213, 2220, 2227, 2234, 2241, 2248, 2255, 2262,
    2269, 2276, 2283, 2290, 2297, 2304, 2311, 2318, 2325, 2332, 2339, 2346,
    2353, 2360, 2367, 2374, 2381, 2388, 2395, 2402, 2409, 2416, 2423, 2430,
    2437, 2444, 2451, 2458, 2465, 2472, 2479, 2486, 2493, 2500, 2507, 2514,
    2521, 2528, 2535, 2542, 2549, 2556, 2563, 2570, 2577, 2584, 2591, 2598,
    2605, 2612, 2619, 2626, 2633, 2640, 2647, 2654, 2661, 2668, 2675, 2682,
    2689, 2696, 2703, 2710, 2717, 2724, 2731, 2738, 2745, 2752, 2759, 2766,
    2773, 2780, 2787, 2794, 2801, 2808, 2815, 2822, 2829, 2836, 2843, 2850,
    2857, 2864, 2871, 2878, 2885, 2892, 2899, 2906, 2913, 2920, 2927, 2934,
    2941, 2948, 2955, 2962, 2969, 2976, 2983, 2990, 2997, 3004, 3011, 3018,
    3025, 3032, 3039, 3046, 3053, 3060, 3067, 3074, 3081, 3088, 3095, 3102,
    3109, 3116, 3123, 3130, 3137, 3144, 3151, 3158, 3165, 3172, 3179, 3186,
    3193, 3200, 3207, 3214, 3221, 3228, 3235, 3242, 3249, 3256, 3263, 3270,
    3277, 3284, 3291, 3298, 3305, 3312, 3319, 3326, 3333, 3340, 3347, 3354,
    3361, 3368, 3375, 3382, 3389, 3396, 3403, 3410, 3417, 3424, 3431, 3438,
    3445, 3452, 3459, 3466, 3473, 3480, 3487, 3494, 3501, 3508, 3515, 3522,
    3529, 3536, 3543, 3550, 3557, 3564, 3571, 3578, 3585, 3592, 3599, 3606,
    3613, 3620, 3627, 3634, 3641, 3648, 3655, 3662, 3669, 3676, 3683, 3690,
    3697, 3704, 3711, 3718, 3725, 3732, 3739, 3746, 3753, 3760, 3767, 3774,
    3781, 3788, 3795, 3802, 3809, 3816, 3823, 3830, 3837, 3844, 3851, 3858,
    3865, 3872, 3879, 3886, 3893, 3900, 3907, 3914, 3921, 3928, 3935, 3942,
    3949, 3956, 3963, 3970, 3977, 3984, 3991, 3998, 4005, 4012, 4019, 4026,
    4033, 4040, 4047, 4054, 4061, 4068, 4075, 4082, 4089, 4096, 4103, 4110,
    4117, 4124, 4131, 4138, 4145, 4152, 4159, 4166, 4173, 4180, 4187, 4194,
    4201, 4208, 4215, 4222, 4229, 4236, 4243, 4250, 4257, 4264, 4271, 4278,
    4285, 4292, 4299, 4306, 4313, 4320, 4327, 4334, 4341, 4348, 4355, 4362,
    4369, 4376, 4383, 4390, 4397, 4404, 4411, 4418, 4425, 4432, 4439, 4446,
    4453, 4460, 4467, 4474, 4481, 4488, 4495, 4502, 4509, 4516, 4523, 4530,
    4537, 4544, 4551, 4558, 4565, 4572, 4579, 4586, 4593, 4600, 4607, 4614,
    4621, 4628, 4635, 4642, 4649, 4656, 4663, 4670, 4677, 4684, 4691, 4698,
    4705, 4712, 4719, 4726, 4733, 4740, 4747, 4754, 4761, 4768, 4775, 4782,
    4789, 4796, 4803, 4810, 4817, 4824, 4831, 4838, 4845, 4852, 4859, 4866,
    4873, 4880, 4887, 4894, 4901, 4908, 4915, 4922, 4929, 4936, 4943, 4950,
    4957, 4964, 4971, 4978, 4985, 4992, 4999, 5006, 5013, 5020, 5027, 5034,
    5041, 5048, 5055, 5062, 5069, 5076, 5083, 5090, 5097, 5104, 5111, 5118,
    5125, 5132, 5139, 5146, 5153, 5160, 5167, 5174, 5181, 5188, 5195, 5202,
    5209, 5216, 5223, 5230, 5237, 5244, 5251, 5258, 5265, 5272, 5279, 5286,
    5293, 5300, 5307, 5314, 5321, 5328, 5335, 5342, 5349, 5356, 5363, 5370,
    5377, 5384, 5391, 5398, 5405, 5412, 5419, 5426, 5433, 5440, 5447, 5454,
    5461, 5468, 5475, 5482, 5489, 5496, 5503, 5510, 5517, 5524, 5531, 5538,
    5545, 5552, 5559, 5566, 5573, 5580, 5587, 5594, 5601, 5608, 5615, 5622,
    5629, 5636, 5643, 5650, 5657, 5664, 5671, 5678, 5685, 5692, 5699, 5706,
    5713, 5720, 5727, 5734, 5741, 5748, 5755, 5762, 5769, 5776, 5783, 5790,
    5797, 5804, 5811, 5818, 5825, 5832, 5839, 5846, 5853, 5860, 5867, 5874,
    5881, 5888, 5895, 5902, 5909, 5916, 5923, 5930, 5937, 5944, 5951, 5958,
    5965, 5972, 5979, 5986, 5993,
];
