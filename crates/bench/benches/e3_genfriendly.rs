//! E3 wall-clock: cost of one young collection with 10,000 guardian
//! entries parked in generation 2 — per-generation protected lists vs the
//! flat-list ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use guardians_gc::{GcConfig, Heap, Rooted, Value};
use std::time::Duration;

const PARKED: usize = 10_000;

fn setup(flat: bool) -> (Heap, Vec<Rooted>, guardians_gc::Guardian) {
    let mut heap = Heap::new(GcConfig {
        flat_protected: flat,
        ..GcConfig::new()
    });
    let g = heap.make_guardian();
    let mut roots = Vec::with_capacity(PARKED);
    for i in 0..PARKED {
        let obj = heap.cons(Value::fixnum(i as i64), Value::NIL);
        roots.push(heap.root(obj));
        g.register(&mut heap, obj);
    }
    heap.collect(0);
    heap.collect(1); // entries parked in generation 2
    (heap, roots, g)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_genfriendly");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    let (mut heap, _roots, _g) = setup(false);
    group.bench_function("young_gc_per_generation_lists", |b| {
        b.iter(|| {
            for _ in 0..100 {
                let _ = heap.cons(Value::NIL, Value::NIL);
            }
            {
                heap.collect(0);
            }
        })
    });

    let (mut heap, _roots2, _g2) = setup(true);
    group.bench_function("young_gc_flat_list_ablation", |b| {
        b.iter(|| {
            for _ in 0..100 {
                let _ = heap.cons(Value::NIL, Value::NIL);
            }
            {
                heap.collect(0);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
