//! E13 wall-clock: copy throughput of the bulk-copy Cheney engine.
//!
//! Runs the mixed copy workload (pairs, pure objects, typed objects,
//! weak pairs, and multi-segment large-object runs) and measures the
//! whole mutate-and-collect loop; the words-copied-per-second figure is
//! printed once per configuration so throughput can be compared across
//! engine changes. In debug builds the heap is re-verified after every
//! collection (the release bench skips verification).

use criterion::{criterion_group, criterion_main, Criterion};
use guardians_bench::copy_driver::copy_workload;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_copy");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4))
        .sample_size(10);

    for allocations in [20_000usize, 60_000] {
        let probe = copy_workload(allocations, cfg!(debug_assertions));
        println!(
            "e13_copy/{allocations}: {} collections, {} words copied, {:.1} Mwords/s",
            probe.collections,
            probe.words_copied,
            probe.words_per_sec() / 1e6
        );
        group.bench_function(format!("copy_workload_{allocations}"), |b| {
            b.iter(|| copy_workload(allocations, cfg!(debug_assertions)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
