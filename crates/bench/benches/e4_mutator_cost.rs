//! E4 wall-clock: clean-up cost after a handful of key deaths — guarded
//! scrub (proportional to deaths) vs full scan (proportional to table).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use guardians_gc::{Heap, Rooted, Value};
use guardians_runtime::hashtab::content_hash;
use guardians_runtime::{GuardedHashTable, WeakKeyTable};
use guardians_workloads::KeyGen;
use std::time::Duration;

const TABLE: usize = 5_000;
const DEATHS: usize = 10;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_mutator_cost");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);

    group.bench_function("guarded_scrub_after_10_deaths", |b| {
        b.iter_batched(
            || {
                let mut heap = Heap::default();
                let mut t = GuardedHashTable::new(&mut heap, 256, content_hash);
                let mut keys: Vec<Rooted> = Vec::new();
                for i in 0..TABLE {
                    let k = heap.make_string(&KeyGen::name(i as u64));
                    keys.push(heap.root(k));
                    t.access(&mut heap, k, Value::fixnum(i as i64));
                }
                keys.truncate(TABLE - DEATHS);
                heap.collect(heap.config().max_generation());
                (heap, t, keys)
            },
            |(mut heap, mut t, _keys)| t.scrub(&mut heap),
            BatchSize::PerIteration,
        )
    });

    group.bench_function("weak_full_scan_after_10_deaths", |b| {
        b.iter_batched(
            || {
                let mut heap = Heap::default();
                let mut t = WeakKeyTable::new(&mut heap, 256, content_hash);
                let mut keys: Vec<Rooted> = Vec::new();
                for i in 0..TABLE {
                    let k = heap.make_string(&KeyGen::name(i as u64));
                    keys.push(heap.root(k));
                    t.access(&mut heap, k, Value::fixnum(i as i64));
                }
                keys.truncate(TABLE - DEATHS);
                heap.collect(heap.config().max_generation());
                (heap, t, keys)
            },
            |(mut heap, mut t, _keys)| t.scrub_full_scan(&mut heap),
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
