//! E1 wall-clock: steady-state access cost of the guarded hash table
//! (Figure 1) vs the weak-only table, at identical sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use guardians_gc::{Heap, Rooted, Value};
use guardians_runtime::hashtab::content_hash;
use guardians_runtime::{GuardedHashTable, WeakKeyTable};
use guardians_workloads::KeyGen;
use std::time::Duration;

const ENTRIES: usize = 1_000;

fn fill_keys(heap: &mut Heap) -> Vec<Rooted> {
    (0..ENTRIES)
        .map(|i| {
            let k = heap.make_string(&KeyGen::name(i as u64));
            heap.root(k)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_guarded_table");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let mut heap = Heap::default();
    let mut guarded = GuardedHashTable::new(&mut heap, 256, content_hash);
    let keys = fill_keys(&mut heap);
    for (i, k) in keys.iter().enumerate() {
        guarded.access(&mut heap, k.get(), Value::fixnum(i as i64));
    }
    let mut i = 0usize;
    group.bench_function("guarded_access_hit", |b| {
        b.iter(|| {
            i = (i + 7) % ENTRIES;
            guarded.access(&mut heap, keys[i].get(), Value::fixnum(0))
        })
    });

    let mut heap = Heap::default();
    let mut weak = WeakKeyTable::new(&mut heap, 256, content_hash);
    let keys = fill_keys(&mut heap);
    for (i, k) in keys.iter().enumerate() {
        weak.access(&mut heap, k.get(), Value::fixnum(i as i64));
    }
    let mut i = 0usize;
    group.bench_function("weak_access_hit", |b| {
        b.iter(|| {
            i = (i + 7) % ENTRIES;
            weak.access(&mut heap, keys[i].get(), Value::fixnum(0))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
