//! E5 wall-clock: per-character I/O cost — direct port vs through an
//! Atkins forwarding header (the indirection the paper calls too
//! expensive for ports), plus the guarded open path.

use criterion::{criterion_group, criterion_main, Criterion};
use guardians_baselines::IndirectPorts;
use guardians_gc::Heap;
use guardians_runtime::{ports, GuardedPorts, SimOs};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_ports");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let mut heap = Heap::default();
    let mut os = SimOs::new();
    let out = ports::open_output_port(&mut heap, &mut os, "/direct").unwrap();
    let _keep = heap.root(out);
    group.bench_function("write_char_direct", |b| {
        b.iter(|| ports::write_byte(&mut heap, &mut os, out, b'x'))
    });

    let mut ip = IndirectPorts::new(&mut heap);
    let header = ip.open_output(&mut heap, &mut os, "/indirect").unwrap();
    let _keep2 = heap.root(header);
    group.bench_function("write_char_indirect_header", |b| {
        b.iter(|| ip.write_byte(&mut heap, &mut os, header, b'x'))
    });

    let mut gp = GuardedPorts::new(&mut heap);
    let mut n = 0u32;
    group.bench_function("guarded_open_close_cycle", |b| {
        b.iter(|| {
            n += 1;
            let p = gp
                .open_output(&mut heap, &mut os, &format!("/g{}", n % 8))
                .unwrap();
            ports::close_port(&mut heap, &mut os, p).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
