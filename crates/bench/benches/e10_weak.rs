//! E10 wall-clock: collections over heaps with many weak pairs — young
//! (all scanned) vs parked-old-and-clean (none scanned).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use guardians_gc::{Heap, Value};
use std::time::Duration;

const PAIRS: usize = 10_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_weak");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    group.bench_function("young_gc_with_10k_young_weak_pairs", |b| {
        b.iter_batched(
            || {
                let mut heap = Heap::default();
                let mut roots = Vec::new();
                for i in 0..PAIRS {
                    let obj = heap.cons(Value::fixnum(i as i64), Value::NIL);
                    if i % 2 == 0 {
                        roots.push(heap.root(obj));
                    }
                    let w = heap.weak_cons(obj, Value::NIL);
                    roots.push(heap.root(w));
                }
                (heap, roots)
            },
            |(mut heap, roots)| {
                heap.collect(0);
                (heap, roots)
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("young_gc_with_10k_parked_weak_pairs", |b| {
        let mut heap = Heap::default();
        let mut roots = Vec::new();
        for i in 0..PAIRS {
            let obj = heap.cons(Value::fixnum(i as i64), Value::NIL);
            roots.push(heap.root(obj));
            let w = heap.weak_cons(obj, Value::NIL);
            roots.push(heap.root(w));
        }
        heap.collect(0);
        heap.collect(1); // all weak pairs clean in generation 2
        b.iter(|| {
            for _ in 0..100 {
                let _ = heap.cons(Value::NIL, Value::NIL);
            }
            {
                heap.collect(0);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
