//! E12 wall-clock: finalizing 100 large objects — classic registration
//! (objects resurrected and copied) vs agent registration (only tokens
//! survive).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use guardians_gc::{Guardian, Heap, Value};
use std::time::Duration;

const OBJECTS: usize = 100;
const OBJECT_BYTES: usize = 64 * 1024;

fn setup(use_agent: bool) -> (Heap, Guardian) {
    let mut heap = Heap::default();
    let g = heap.make_guardian();
    for i in 0..OBJECTS {
        let big = heap.make_bytevector(OBJECT_BYTES, 0);
        if use_agent {
            g.register_with_agent(&mut heap, big, Value::fixnum(i as i64));
        } else {
            g.register(&mut heap, big);
        }
    }
    (heap, g)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_agent");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    group.bench_function("finalize_100_large_classic", |b| {
        b.iter_batched(
            || setup(false),
            |(mut heap, g)| {
                heap.collect(heap.config().max_generation());
                while g.poll(&mut heap).is_some() {}
                (heap, g)
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("finalize_100_large_agent", |b| {
        b.iter_batched(
            || setup(true),
            |(mut heap, g)| {
                heap.collect(heap.config().max_generation());
                while g.poll(&mut heap).is_some() {}
                (heap, g)
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
