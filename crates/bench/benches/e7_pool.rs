//! E7 wall-clock: acquire-use-drop cycle of an expensive bitmap — the
//! guarded pool (recycling via the guardian) vs building fresh each time.

use criterion::{criterion_group, criterion_main, Criterion};
use guardians_gc::{Heap, Value};
use guardians_runtime::GuardedPool;
use std::time::Duration;

const BITMAP_BYTES: usize = 64 * 1024;

fn expensive_factory(heap: &mut Heap) -> Value {
    let bm = heap.make_bytevector(BITMAP_BYTES, 0);
    for i in 0..BITMAP_BYTES {
        heap.bytevector_set(bm, i, (i.wrapping_mul(2654435761) >> 7) as u8);
    }
    bm
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_pool");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);

    group.bench_function("pooled_cycle", |b| {
        let mut heap = Heap::default();
        let mut pool = GuardedPool::new(&mut heap, expensive_factory);
        b.iter(|| {
            let bm = pool.acquire(&mut heap);
            heap.bytevector_set(bm, 0, 1);
            heap.collect(heap.config().max_generation());
        })
    });

    group.bench_function("fresh_cycle", |b| {
        let mut heap = Heap::default();
        b.iter(|| {
            let bm = expensive_factory(&mut heap);
            heap.bytevector_set(bm, 0, 1);
            heap.collect(heap.config().max_generation());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
