//! E9 wall-clock: a full collection resolving a chain of guardians each
//! registered with the previous one (the pend-final fixpoint).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use guardians_gc::{Heap, Value};
use std::time::Duration;

fn setup(chain: usize) -> Heap {
    let mut heap = Heap::default();
    let keeper = heap.make_guardian();
    let mut guardians = Vec::new();
    for _ in 0..chain {
        guardians.push(heap.make_guardian());
    }
    keeper.register(&mut heap, guardians[0].tconc());
    for i in 1..chain {
        let inner = guardians[i].tconc();
        guardians[i - 1].register(&mut heap, inner);
    }
    let obj = heap.cons(Value::fixnum(chain as i64), Value::NIL);
    guardians[chain - 1].register(&mut heap, obj);
    drop(guardians);
    std::mem::forget(keeper); // keep the chain head alive through the bench
    heap
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_fixpoint");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    for chain in [8usize, 64, 256] {
        group.bench_function(format!("collect_chain_{chain}"), |b| {
            b.iter_batched(
                || setup(chain),
                |mut heap| {
                    heap.collect(heap.config().max_generation());
                    heap
                },
                BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
