//! E8 wall-clock: guardian registration and retrieval throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use guardians_gc::{Heap, Value};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_register");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    group.bench_function("register_1000", |b| {
        b.iter_batched(
            || {
                let mut heap = Heap::default();
                let g = heap.make_guardian();
                let obj = heap.cons(Value::fixnum(1), Value::NIL);
                let keep = heap.root(obj);
                (heap, g, keep)
            },
            |(mut heap, g, keep)| {
                for _ in 0..1_000 {
                    g.register(&mut heap, keep.get());
                }
                (heap, g)
            },
            BatchSize::PerIteration,
        )
    });

    group.bench_function("poll_1000_dead", |b| {
        b.iter_batched(
            || {
                let mut heap = Heap::default();
                let g = heap.make_guardian();
                for i in 0..1_000 {
                    let obj = heap.cons(Value::fixnum(i), Value::NIL);
                    g.register(&mut heap, obj);
                }
                heap.collect(heap.config().max_generation());
                (heap, g)
            },
            |(mut heap, g)| {
                while g.poll(&mut heap).is_some() {}
                (heap, g)
            },
            BatchSize::PerIteration,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
