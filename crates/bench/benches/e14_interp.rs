//! E14 wall-clock: staged vs naive Scheme evaluation throughput.
//!
//! Benchmarks the same interpreter workloads as the E14 experiment
//! table under criterion, one function per (workload, mode) pair, so
//! regressions in the staged evaluator (or accidental speedups in the
//! naive ablation baseline) show up as timing diffs. The one-line
//! summary printed per workload reports the measured speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use guardians_scheme::{Interp, InterpConfig};
use std::time::{Duration, Instant};

struct Workload {
    name: &'static str,
    setup: &'static str,
    driver: &'static str,
}

const WORKLOADS: [Workload; 3] = [
    Workload {
        name: "fib",
        setup: "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
        driver: "(fib 15)",
    },
    Workload {
        name: "churn",
        setup: "(define (iota n) \
                  (let lp ((i 0) (acc '())) \
                    (if (= i n) (reverse acc) (lp (+ i 1) (cons i acc))))) \
                (define (filter p l) \
                  (cond ((null? l) '()) \
                        ((p (car l)) (cons (car l) (filter p (cdr l)))) \
                        (else (filter p (cdr l))))) \
                (define (churn n) \
                  (length (map (lambda (x) (* x x)) (filter odd? (iota n)))))",
        driver: "(churn 250)",
    },
    Workload {
        name: "gchurn",
        setup: "(define (gchurn n) \
                  (let ((g (make-guardian))) \
                    (let lp ((i 0)) \
                      (unless (= i n) (g (cons i i)) (lp (+ i 1)))) \
                    (collect 3) \
                    (let drain ((k 0)) (if (g) (drain (+ k 1)) k))))",
        driver: "(gchurn 500)",
    },
];

fn prepared(config: InterpConfig, w: &Workload) -> Interp {
    let mut it = Interp::with_interp_config(config);
    it.eval_str(w.setup).expect("setup evaluates");
    it.eval_str(w.driver).expect("warm-up run");
    it
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_interp");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);

    for w in &WORKLOADS {
        // One-shot speedup probe, printed alongside the criterion rows.
        let mut naive = prepared(InterpConfig::naive(), w);
        let mut staged = prepared(InterpConfig::staged(), w);
        let t0 = Instant::now();
        naive.eval_str(w.driver).unwrap();
        let naive_ns = t0.elapsed().as_nanos();
        let t1 = Instant::now();
        staged.eval_str(w.driver).unwrap();
        let staged_ns = t1.elapsed().as_nanos().max(1);
        println!(
            "e14_interp/{}: naive {} us, staged {} us, {:.2}x",
            w.name,
            naive_ns / 1_000,
            staged_ns / 1_000,
            naive_ns as f64 / staged_ns as f64
        );

        group.bench_function(format!("{}_naive", w.name), |b| {
            b.iter(|| naive.eval_str(w.driver).unwrap())
        });
        group.bench_function(format!("{}_staged", w.name), |b| {
            b.iter(|| staged.eval_str(w.driver).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
