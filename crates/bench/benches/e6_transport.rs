//! E6 wall-clock: eq-table access after a young collection — the
//! rehash-everything policy vs the transport-guardian table with its
//! entries parked in an old generation.

use criterion::{criterion_group, criterion_main, Criterion};
use guardians_gc::{Heap, Rooted, Value};
use guardians_runtime::{EqHashTable, TransportEqHashTable};
use std::time::Duration;

const ENTRIES: usize = 2_000;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_transport");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    group.bench_function("rehash_all_young_gc_then_get", |b| {
        let mut heap = Heap::default();
        let mut t = EqHashTable::new(&mut heap, 256);
        let mut keys: Vec<Rooted> = Vec::new();
        for i in 0..ENTRIES {
            let k = heap.cons(Value::fixnum(i as i64), Value::NIL);
            keys.push(heap.root(k));
            t.insert(&mut heap, k, Value::fixnum(i as i64));
        }
        heap.collect(0);
        heap.collect(1);
        let _ = t.get(&mut heap, keys[0].get());
        b.iter(|| {
            heap.collect(0);
            t.get(&mut heap, keys[0].get())
        })
    });

    group.bench_function("transport_young_gc_then_get", |b| {
        let mut heap = Heap::default();
        let mut t = TransportEqHashTable::new(&mut heap, 256);
        let mut keys: Vec<Rooted> = Vec::new();
        for i in 0..ENTRIES {
            let k = heap.cons(Value::fixnum(i as i64), Value::NIL);
            keys.push(heap.root(k));
            t.insert(&mut heap, k, Value::fixnum(i as i64));
        }
        for _ in 0..3 {
            heap.collect(1);
            let _ = t.get(&mut heap, keys[0].get());
        }
        b.iter(|| {
            heap.collect(0);
            t.get(&mut heap, keys[0].get())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
