//! E11 wall-clock: the whole-collector characterisation — the lifetime
//! workload under different generation counts.

use criterion::{criterion_group, criterion_main, Criterion};
use guardians_gc::{GcConfig, Heap};
use guardians_workloads::{run_lifetime_workload, LifetimeParams};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_collector");
    group
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4))
        .sample_size(10);

    for generations in [1u8, 4] {
        group.bench_function(format!("lifetime_workload_{generations}gen"), |b| {
            b.iter(|| {
                let config = GcConfig {
                    generations,
                    trigger_bytes: 128 * 1024,
                    frequency: (0..generations as usize)
                        .map(|i| 4u64.pow(i as u32))
                        .collect(),
                    ..GcConfig::new()
                };
                let mut heap = Heap::new(config);
                let params = LifetimeParams {
                    allocations: 20_000,
                    ..LifetimeParams::default()
                };
                run_lifetime_workload(&mut heap, &params)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
