//! E2 wall-clock: the tconc protocol's mutator-side operations
//! (Figures 2–4) — append, pop, and the empty test.

use criterion::{criterion_group, criterion_main, Criterion};
use guardians_gc::{Heap, Value};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_tconc");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    let mut heap = Heap::default();
    let tc = heap.make_tconc();
    group.bench_function("append_then_pop", |b| {
        b.iter(|| {
            heap.tconc_append(tc, Value::fixnum(1));
            heap.tconc_pop(tc)
        })
    });
    group.bench_function("pop_empty", |b| b.iter(|| heap.tconc_pop(tc)));
    group.bench_function("is_empty", |b| b.iter(|| heap.tconc_is_empty(tc)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
