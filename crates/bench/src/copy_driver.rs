//! The copy-throughput workload behind `benches/e13_copy.rs`.
//!
//! A mixed allocation profile chosen to stress every path of the
//! bulk-copy engine: cons lists (pair space), strings and bytevectors
//! (pure space, skipped by the scan), vectors (typed space, header
//! walks), weak pairs, and periodic large vectors whose bodies span
//! multi-segment runs (cross-run `copy_words`). A rooted survivor window
//! keeps enough data alive that collections actually copy.
//!
//! In debug builds — and always from the unit test — the whole heap is
//! re-verified after every collection, so the bench doubles as a
//! correctness harness for the copy/scan engine.

use guardians_gc::{GcConfig, Heap, Promotion, Rooted, Value};
use guardians_workloads::KeyGen;

/// What one run of the copy workload observed.
#[derive(Debug, Clone, Copy, Default)]
pub struct CopyRun {
    /// Collections that ran.
    pub collections: u64,
    /// Total words copied by those collections.
    pub words_copied: u64,
    /// Total pause time, nanoseconds.
    pub total_gc_ns: u128,
}

impl CopyRun {
    /// Copy throughput in words per second of pause time.
    pub fn words_per_sec(&self) -> f64 {
        if self.total_gc_ns == 0 {
            0.0
        } else {
            self.words_copied as f64 / (self.total_gc_ns as f64 / 1e9)
        }
    }
}

/// Runs the copy workload. With `verify_each_collection`, `Heap::verify`
/// runs after every collection (and once at the end), turning the bench
/// into a stress test of the copy/scan engine.
pub fn copy_workload(allocations: usize, verify_each_collection: bool) -> CopyRun {
    let config = GcConfig {
        generations: 4,
        promotion: Promotion::NextGeneration,
        trigger_bytes: 192 * 1024,
        frequency: vec![1, 4, 16, 64],
        ..GcConfig::new()
    };
    let mut heap = Heap::new(config);
    let mut gen = KeyGen::new(0xE13C0117, 0.25);
    let window_len = 192;
    let mut window: Vec<Option<Rooted>> = (0..window_len).map(|_| None).collect();
    // Rotating roots for large (multi-segment run) vectors.
    let mut big: Vec<Option<Rooted>> = vec![None, None, None];
    let mut run = CopyRun::default();

    for i in 0..allocations {
        let v = match i % 5 {
            0 | 1 => {
                let mut list = Value::NIL;
                for k in 0..4 {
                    list = heap.cons(Value::fixnum((i * 17 + k) as i64), list);
                }
                list
            }
            2 => heap.make_string("copy-engine payload string"),
            3 => {
                let s = heap.make_bytevector(96, (i % 251) as u8);
                heap.make_vector(6, s)
            }
            _ => {
                let head = heap.cons(Value::fixnum(i as i64), Value::NIL);
                heap.weak_cons(head, Value::fixnum(i as i64))
            }
        };
        if gen.flip(0.25) {
            let slot = gen.uniform(window_len);
            window[slot] = Some(heap.root(v));
        }
        if i % 640 == 0 {
            // A ~1500-word vector: a three-segment run, forwarded with
            // cross-run bulk copies while it survives.
            let big_v = heap.make_vector(1500, Value::fixnum(i as i64));
            let slot = (i / 640) % big.len();
            big[slot] = Some(heap.root(big_v));
        }
        if i % 48 == 0 {
            if let Some(report) = heap.maybe_collect() {
                run.collections += 1;
                run.words_copied += report.words_copied;
                run.total_gc_ns += report.duration.as_nanos();
                if verify_each_collection {
                    heap.verify().expect("heap valid after collection");
                }
            }
        }
    }
    let report = heap.collect(heap.config().max_generation());
    run.collections += 1;
    run.words_copied += report.words_copied;
    run.total_gc_ns += report.duration.as_nanos();
    if verify_each_collection {
        heap.verify().expect("heap valid after final collection");
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_workload_verifies_after_every_collection() {
        let run = copy_workload(6_000, true);
        assert!(run.collections > 1, "the trigger fired");
        assert!(run.words_copied > 0, "survivors were copied");
        assert!(run.words_per_sec() > 0.0);
    }

    #[test]
    fn copy_workload_is_deterministic_in_work_counters() {
        let a = copy_workload(3_000, false);
        let b = copy_workload(3_000, false);
        assert_eq!(a.collections, b.collections);
        assert_eq!(a.words_copied, b.words_copied);
    }
}
