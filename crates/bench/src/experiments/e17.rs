//! **E17 — Parallel copy/scan scaling.**
//!
//! The parallel engine (`GcConfig::workers > 1`) runs the Cheney
//! copy/scan loop on N worker threads with work-stealing scan units,
//! per-worker to-space regions, and CAS-installed forwarding. This
//! experiment measures its copy throughput against the serial engine on
//! identical live sets: each scenario builds the same object graph under
//! every worker count and then runs repeated full collections, so the
//! deterministic work (words copied per round) is *equal* across columns
//! and only the wall time differs.
//!
//! Scaling is bounded by the host: on a single-core runner the parallel
//! columns measure pure engine overhead (the workers time-slice one
//! core), which is itself worth tracking. The table's note records the
//! host parallelism so committed numbers stay interpretable; the bench
//! gate pins only the 1-worker column, which is host-shape independent.

use guardians_gc::{GcConfig, Heap, Rooted, Value};

/// Worker counts measured, in column order.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// One scenario's outcome.
#[derive(Debug, Clone)]
pub struct E17Row {
    /// Scenario name.
    pub name: &'static str,
    /// Words copied per full-collection round (identical across worker
    /// counts by the engine's schedule-independence contract; asserted).
    pub words_per_round: u64,
    /// Copy throughput in words/sec for each entry of [`WORKER_COUNTS`].
    pub words_per_sec: [f64; 3],
}

impl E17Row {
    /// Throughput of the `workers`-column relative to the serial column.
    /// `0.0` when the serial column failed to time (degenerate runs).
    pub fn speedup(&self, idx: usize) -> f64 {
        if self.words_per_sec[0] > 0.0 {
            self.words_per_sec[idx] / self.words_per_sec[0]
        } else {
            0.0
        }
    }
}

/// Builds one scenario's live set, returning the roots that keep it
/// alive for the measured collections.
fn build_live_set(heap: &mut Heap, scenario: &str, scale: usize) -> Vec<Rooted> {
    let mut roots = Vec::new();
    match scenario {
        // Pair space: many medium cons lists — forwarding-dominated.
        "cons lists" => {
            for l in 0..scale {
                let mut list = Value::NIL;
                for k in 0..64 {
                    list = heap.cons(Value::fixnum((l * 64 + k) as i64), list);
                }
                roots.push(heap.root(list));
            }
        }
        // All four spaces: vectors (typed walks), strings and
        // bytevectors (pure skips), weak pairs (two-pass cars).
        "mixed spaces" => {
            for i in 0..scale * 8 {
                let v = match i % 4 {
                    0 => {
                        let s = heap.make_string("e17 payload string");
                        heap.make_vector(6, s)
                    }
                    1 => heap.make_bytevector(96, (i % 251) as u8),
                    2 => {
                        let head = heap.cons(Value::fixnum(i as i64), Value::NIL);
                        heap.weak_cons(head, Value::fixnum(i as i64))
                    }
                    _ => heap.cons(Value::fixnum(i as i64), Value::NIL),
                };
                roots.push(heap.root(v));
            }
        }
        // Multi-segment runs: large vectors force the run-allocation
        // path and chunked cross-segment copies.
        "large runs" => {
            for i in 0..scale / 2 {
                let big = heap.make_vector(1500, Value::fixnum(i as i64));
                roots.push(heap.root(big));
            }
        }
        other => unreachable!("unknown scenario {other:?}"),
    }
    roots
}

/// Measures one (scenario, workers) cell: identical live set, `rounds`
/// forced full collections, throughput over the summed pauses.
fn measure(scenario: &str, scale: usize, workers: usize, rounds: usize) -> (u64, f64) {
    let mut heap = Heap::new(GcConfig {
        workers,
        ..GcConfig::new()
    });
    let roots = build_live_set(&mut heap, scenario, scale);
    let max = heap.config().max_generation();
    // Warm-up round: promote everything to the oldest generation so the
    // measured rounds copy a stable live set.
    heap.collect(max);
    let mut words = 0u64;
    let mut ns = 0u128;
    let mut per_round = 0u64;
    for _ in 0..rounds {
        let report = heap.collect(max);
        per_round = report.words_copied;
        words += report.words_copied;
        ns += report.duration.as_nanos();
    }
    heap.verify()
        .expect("heap valid after measured collections");
    drop(roots);
    let throughput = if ns > 0 {
        words as f64 / (ns as f64 / 1e9)
    } else {
        0.0
    };
    (per_round, throughput)
}

/// Runs the experiment.
pub fn run(quick: bool) -> (guardians_workloads::Table, Vec<E17Row>) {
    let (scale, rounds) = if quick { (120, 4) } else { (1_200, 10) };
    let mut table = guardians_workloads::Table::new(
        "E17: parallel copy/scan engine scaling",
        &[
            "configuration",
            "Kwords/round",
            "copy Mw/s (1w)",
            "copy Mw/s (2w)",
            "copy Mw/s (4w)",
            "speedup 4w",
        ],
    );
    let mut rows = Vec::new();
    for name in ["cons lists", "mixed spaces", "large runs"] {
        let mut words_per_round = 0;
        let mut words_per_sec = [0.0f64; 3];
        for (i, &workers) in WORKER_COUNTS.iter().enumerate() {
            let (per_round, throughput) = measure(name, scale, workers, rounds);
            if i == 0 {
                words_per_round = per_round;
            } else {
                assert_eq!(
                    per_round, words_per_round,
                    "{name}: copy work must be schedule-independent"
                );
            }
            words_per_sec[i] = throughput;
        }
        let row = E17Row {
            name,
            words_per_round,
            words_per_sec,
        };
        table.row(&[
            name.to_string(),
            format!("{}", row.words_per_round / 1_000),
            format!("{:.1}", row.words_per_sec[0] / 1e6),
            format!("{:.1}", row.words_per_sec[1] / 1e6),
            format!("{:.1}", row.words_per_sec[2] / 1e6),
            format!("{:.2}", row.speedup(2)),
        ]);
        rows.push(row);
    }
    table.note(format!(
        "identical live sets per row; each column re-collects the whole set {rounds}x under that worker count \
         (words/round asserted equal across columns)"
    ));
    table.note(super::env_note(1, None));
    table.note(
        "worker count varies by column; parallel speedup is bounded by the host parallelism \
         above, so the bench gate pins the 1-worker column only",
    );
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_times_and_work_is_schedule_independent() {
        let (_t, rows) = run(true);
        assert_eq!(rows.len(), 3, "three live-set scenarios");
        for row in &rows {
            assert!(row.words_per_round > 0, "{}: rounds copied", row.name);
            for (i, &tp) in row.words_per_sec.iter().enumerate() {
                assert!(
                    tp > 0.0,
                    "{}: {}-worker column has throughput",
                    row.name,
                    WORKER_COUNTS[i]
                );
            }
        }
    }

    #[test]
    fn parallel_columns_report_a_speedup_ratio() {
        let (t, rows) = run(true);
        for row in &rows {
            // The ratio is well-defined (serial column timed) even when
            // the host has one core and the ratio lands below 1.0.
            assert!(row.speedup(2) > 0.0, "{}: speedup defined", row.name);
        }
        let rendered = t.render();
        assert!(rendered.contains("speedup 4w"), "{rendered}");
        assert!(rendered.contains("hardware threads"), "{rendered}");
    }
}
