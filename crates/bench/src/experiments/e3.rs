//! **E3 — The generation-friendliness claim.**
//!
//! Abstract: "the additional overhead within a generation-based garbage
//! collector is proportional to the work already done there"; Section 1:
//! "there should be no additional overhead for older objects that are not
//! being collected during a particular collection cycle."
//!
//! Setup: park N guardian-registered (live) objects in generation 2, then
//! run young (generation-0) collections over fresh churn. With the
//! paper's per-generation protected lists the collector visits **zero**
//! entries per young collection regardless of N; the flat-list ablation
//! visits all N every time.

use guardians_gc::{GcConfig, Heap, Rooted, Value};
use guardians_workloads::report::fmt_count;
use guardians_workloads::Table;

/// One measurement.
#[derive(Debug, Clone)]
pub struct E3Row {
    pub parked: usize,
    pub per_gen_visited_per_young_gc: u64,
    pub flat_visited_per_young_gc: u64,
}

fn measure(parked: usize, flat: bool, young_collections: usize) -> u64 {
    let config = GcConfig {
        flat_protected: flat,
        ..GcConfig::new()
    };
    let mut heap = Heap::new(config);
    let g = heap.make_guardian();
    let mut roots: Vec<Rooted> = Vec::with_capacity(parked);
    for i in 0..parked {
        let obj = heap.cons(Value::fixnum(i as i64), Value::NIL);
        roots.push(heap.root(obj));
        g.register(&mut heap, obj);
    }
    // Age the population (and the entries) into generation 2.
    heap.collect(0);
    heap.collect(1);
    // Young churn + young collections.
    let mut visited = 0;
    for _ in 0..young_collections {
        for _ in 0..1_000 {
            let _ = heap.cons(Value::NIL, Value::NIL);
        }
        heap.collect(0);
        visited += heap.last_report().unwrap().guardian_entries_visited;
    }
    visited / young_collections as u64
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, Vec<E3Row>) {
    let sizes: &[usize] = if quick {
        &[100, 1_000]
    } else {
        &[100, 1_000, 10_000, 50_000]
    };
    let young = if quick { 5 } else { 20 };
    let mut table = Table::new(
        "E3: collector overhead for parked guardian entries (per young collection)",
        &[
            "parked entries (gen 2)",
            "visited: per-gen lists",
            "visited: flat list (ablation)",
        ],
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let per_gen = measure(n, false, young);
        let flat = measure(n, true, young);
        table.row(&[fmt_count(n as u64), fmt_count(per_gen), fmt_count(flat)]);
        rows.push(E3Row {
            parked: n,
            per_gen_visited_per_young_gc: per_gen,
            flat_visited_per_young_gc: flat,
        });
    }
    table.note("paper claim: per-generation lists make young-collection guardian work independent of parked entries (column 2 = 0)");
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parked_entries_cost_nothing_with_per_generation_lists() {
        let (_t, rows) = run(true);
        for r in &rows {
            assert_eq!(
                r.per_gen_visited_per_young_gc, 0,
                "parked={}: per-gen lists must not visit parked entries",
                r.parked
            );
            assert_eq!(
                r.flat_visited_per_young_gc, r.parked as u64,
                "parked={}: the flat ablation visits everything",
                r.parked
            );
        }
    }
}
