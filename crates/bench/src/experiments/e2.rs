//! **E2 — Figures 2–4: the tconc representation and its lock-free
//! protocols.**
//!
//! Measures the raw cost of the mutator-side operations (register, poll,
//! append) and verifies, for every cut point of the collector's append
//! protocol, that a concurrent pop observes a consistent queue — the
//! paper's "critical sections are unnecessary in both the mutator and
//! collector".

use guardians_gc::{Heap, Value};
use guardians_workloads::report::fmt_count;
use guardians_workloads::Table;
use std::time::Instant;

/// Results of the protocol verification and microbenchmarks.
#[derive(Debug, Clone)]
pub struct E2Result {
    /// Interleaving states checked (all consistent).
    pub interleavings_checked: u64,
    /// Torn states observed (must be 0).
    pub torn_states: u64,
    pub register_ns: f64,
    pub poll_hit_ns: f64,
    pub poll_empty_ns: f64,
    pub append_ns: f64,
}

/// Exhaustively cuts the 3-write append protocol against pops at every
/// queue length 0..=8; returns (checked, torn).
pub fn verify_interleavings() -> (u64, u64) {
    let mut checked = 0;
    let mut torn = 0;
    for existing in 0..9u64 {
        for cut in 0..=3usize {
            let mut h = Heap::default();
            let tc = h.make_tconc();
            for i in 0..existing {
                h.tconc_append(tc, Value::fixnum(i as i64));
            }
            // Partial append of the next element, Figure 3's write order.
            let p = h.cons(Value::FALSE, Value::FALSE);
            let old_last = h.cdr(tc);
            if cut >= 1 {
                h.set_car(old_last, Value::fixnum(existing as i64));
            }
            if cut >= 2 {
                h.set_cdr(old_last, p);
            }
            if cut >= 3 {
                h.set_cdr(tc, p);
            }
            // The mutator drains whatever is visible.
            let mut seen = Vec::new();
            while let Some(v) = h.tconc_pop(tc) {
                seen.push(v.as_fixnum() as u64);
            }
            checked += 1;
            let expect: Vec<u64> = (0..existing + if cut >= 3 { 1 } else { 0 }).collect();
            if seen != expect {
                torn += 1;
            }
        }
    }
    (checked, torn)
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, E2Result) {
    let (checked, torn) = verify_interleavings();
    let n = if quick { 20_000 } else { 200_000 };

    let mut h = Heap::default();
    let g = h.make_guardian();
    let obj = h.cons(Value::fixnum(1), Value::NIL);
    let _keep = h.root(obj);
    let t0 = Instant::now();
    for _ in 0..n {
        g.register(&mut h, obj);
    }
    let register_ns = t0.elapsed().as_nanos() as f64 / n as f64;

    let mut h = Heap::default();
    let tc = h.make_tconc();
    let t0 = Instant::now();
    for i in 0..n {
        h.tconc_append(tc, Value::fixnum(i as i64));
    }
    let append_ns = t0.elapsed().as_nanos() as f64 / n as f64;
    let t0 = Instant::now();
    for _ in 0..n {
        let _ = h.tconc_pop(tc);
    }
    let poll_hit_ns = t0.elapsed().as_nanos() as f64 / n as f64;
    let t0 = Instant::now();
    for _ in 0..n {
        let _ = h.tconc_pop(tc);
    }
    let poll_empty_ns = t0.elapsed().as_nanos() as f64 / n as f64;

    let result = E2Result {
        interleavings_checked: checked,
        torn_states: torn,
        register_ns,
        poll_hit_ns,
        poll_empty_ns,
        append_ns,
    };
    let mut table = Table::new(
        "E2 (Figures 2-4): tconc protocol — consistency and mutator cost",
        &["metric", "value"],
    );
    table.row(&["append interleavings checked".into(), fmt_count(checked)]);
    table.row(&["torn queue states observed".into(), fmt_count(torn)]);
    table.row(&[
        "guardian register, ns/op".into(),
        format!("{register_ns:.0}"),
    ]);
    table.row(&["tconc append, ns/op".into(), format!("{append_ns:.0}")]);
    table.row(&["poll (element), ns/op".into(), format!("{poll_hit_ns:.0}")]);
    table.row(&["poll (empty), ns/op".into(), format!("{poll_empty_ns:.0}")]);
    table.note(
        "paper: no critical sections needed — every cut of the append leaves the queue consistent",
    );
    (table, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_torn_states_at_any_cut() {
        let (checked, torn) = verify_interleavings();
        assert_eq!(checked, 36, "9 queue lengths x 4 cut points");
        assert_eq!(torn, 0, "Figure 3's write order admits no torn observation");
    }

    #[test]
    fn costs_are_finite_and_small() {
        let (_t, r) = run(true);
        assert!(r.register_ns > 0.0 && r.register_ns < 100_000.0);
        assert!(r.poll_empty_ns <= r.poll_hit_ns * 10.0 + 1_000.0);
    }
}
