//! **E6 — Transport guardians: rehash only what moved.**
//!
//! Section 3: "In a generation-based collector much of this work is
//! wasted for keys that are no longer forwarded during every collection
//! because they have survived long enough to have advanced to older
//! generations. One solution … is to use a transport guardian".
//!
//! Setup: N entries aged into an old generation; then young collections
//! with fresh churn. The rehash-all table touches all N entries after
//! every collection; the transport-guardian table touches only what
//! (conservatively) moved — which settles to zero.

use guardians_gc::{Heap, Rooted, Value};
use guardians_runtime::{EqHashTable, TransportEqHashTable};
use guardians_workloads::report::fmt_count;
use guardians_workloads::Table;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct E6Row {
    pub entries: usize,
    pub young_collections: usize,
    pub rehash_all_touched: u64,
    pub transport_touched: u64,
}

fn measure(entries: usize, young: usize) -> E6Row {
    // Rehash-all table.
    let mut heap = Heap::default();
    let mut t = EqHashTable::new(&mut heap, 256);
    let mut keys: Vec<Rooted> = Vec::new();
    for i in 0..entries {
        let k = heap.cons(Value::fixnum(i as i64), Value::NIL);
        keys.push(heap.root(k));
        t.insert(&mut heap, k, Value::fixnum(i as i64));
    }
    // Age, then settle the table.
    heap.collect(0);
    heap.collect(1);
    let _ = t.get(&mut heap, keys[0].get());
    let settled = t.entries_rehashed;
    for _ in 0..young {
        for _ in 0..500 {
            let _ = heap.cons(Value::NIL, Value::NIL);
        }
        heap.collect(0);
        let _ = t.get(&mut heap, keys[0].get()); // forces the policy's rehash
    }
    let rehash_all_touched = t.entries_rehashed - settled;

    // Transport-guardian table.
    let mut heap = Heap::default();
    let mut t = TransportEqHashTable::new(&mut heap, 256);
    let mut keys: Vec<Rooted> = Vec::new();
    for i in 0..entries {
        let k = heap.cons(Value::fixnum(i as i64), Value::NIL);
        keys.push(heap.root(k));
        t.insert(&mut heap, k, Value::fixnum(i as i64));
    }
    heap.collect(0);
    let _ = t.get(&mut heap, keys[0].get());
    heap.collect(1);
    let _ = t.get(&mut heap, keys[0].get());
    heap.collect(1);
    let _ = t.get(&mut heap, keys[0].get());
    let settled = t.entries_rehashed;
    for _ in 0..young {
        for _ in 0..500 {
            let _ = heap.cons(Value::NIL, Value::NIL);
        }
        heap.collect(0);
        let _ = t.get(&mut heap, keys[0].get());
    }
    let transport_touched = t.entries_rehashed - settled;

    E6Row {
        entries,
        young_collections: young,
        rehash_all_touched,
        transport_touched,
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, Vec<E6Row>) {
    let sizes: &[usize] = if quick {
        &[100, 1_000]
    } else {
        &[1_000, 10_000, 50_000]
    };
    let young = if quick { 5 } else { 20 };
    let mut table = Table::new(
        "E6: eq-table entries touched across young collections (keys parked old)",
        &[
            "entries",
            "young GCs",
            "rehash-all touched",
            "transport-guardian touched",
        ],
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let row = measure(n, young);
        table.row(&[
            fmt_count(n as u64),
            fmt_count(young as u64),
            fmt_count(row.rehash_all_touched),
            fmt_count(row.transport_touched),
        ]);
        rows.push(row);
    }
    table.note("paper: transport guardians eliminate wasted rehashing of unmoved old keys");
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_table_settles_to_zero_work() {
        let (_t, rows) = run(true);
        for r in &rows {
            assert_eq!(
                r.transport_touched, 0,
                "entries={}: parked keys must cost nothing",
                r.entries
            );
            assert_eq!(
                r.rehash_all_touched,
                (r.entries * r.young_collections) as u64,
                "entries={}: rehash-all touches everything every time",
                r.entries
            );
        }
    }
}
