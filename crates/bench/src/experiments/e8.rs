//! **E8 — Section 3 registration semantics, at scale and speed.**
//!
//! The paper's transcripts define the semantics (multiple registration,
//! multiple guardians, no special status of retrieved objects); the gc
//! crate's tests verify them one by one. This experiment checks the
//! multiplicity accounting at scale and measures registration/retrieval
//! throughput.

use guardians_gc::{Heap, Value};
use guardians_workloads::report::fmt_count;
use guardians_workloads::Table;
use std::time::Instant;

/// Results.
#[derive(Debug, Clone)]
pub struct E8Result {
    pub objects: usize,
    pub registrations_per_object: usize,
    pub delivered: u64,
    pub register_ns: f64,
    pub drain_ns_per_item: f64,
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, E8Result) {
    let objects = if quick { 1_000 } else { 20_000 };
    let regs = 3;

    let mut heap = Heap::default();
    let g = heap.make_guardian();
    let t0 = Instant::now();
    for i in 0..objects {
        let obj = heap.cons(Value::fixnum(i as i64), Value::NIL);
        for _ in 0..regs {
            g.register(&mut heap, obj);
        }
    }
    let register_ns = t0.elapsed().as_nanos() as f64 / (objects * regs) as f64;

    heap.collect(heap.config().max_generation());
    let t0 = Instant::now();
    let mut delivered = 0u64;
    while g.poll(&mut heap).is_some() {
        delivered += 1;
    }
    let drain_ns = t0.elapsed().as_nanos() as f64 / delivered.max(1) as f64;

    let result = E8Result {
        objects,
        registrations_per_object: regs,
        delivered,
        register_ns,
        drain_ns_per_item: drain_ns,
    };
    let mut table = Table::new(
        "E8: registration multiplicity and throughput",
        &["metric", "value"],
    );
    table.row(&["objects".into(), fmt_count(objects as u64)]);
    table.row(&["registrations each".into(), regs.to_string()]);
    table.row(&["deliveries after death".into(), fmt_count(delivered)]);
    table.row(&["register, ns/op".into(), format!("{register_ns:.0}")]);
    table.row(&["retrieve, ns/op".into(), format!("{drain_ns:.0}")]);
    table.note("paper: 'an object may be registered ... more than once, in which case it is retrievable more than once'");
    (table, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicity_accounting_is_exact() {
        let (_t, r) = run(true);
        assert_eq!(r.delivered, (r.objects * r.registrations_per_object) as u64);
    }
}
