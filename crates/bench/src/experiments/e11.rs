//! **E11 — Whole-collector characterisation.**
//!
//! Section 4's collector: generations, promotion, target generation,
//! schedule. Under a generational-hypothesis workload, more generations
//! should reduce total copying (old survivors are not re-copied) and
//! shrink the typical pause, which is why the paper's overhead claims are
//! stated *relative to generational work*.

use guardians_gc::{GcConfig, Heap, Promotion};
use guardians_workloads::report::fmt_count;
use guardians_workloads::{run_lifetime_workload, LifetimeParams, Table};

/// One configuration's outcome.
#[derive(Debug, Clone)]
pub struct E11Row {
    pub generations: u8,
    pub collections: u64,
    pub words_copied: u64,
    pub max_pause_ns: u128,
    pub total_gc_ns: u128,
}

fn measure_with(generations: u8, promotion: Promotion, allocations: usize) -> E11Row {
    let config = GcConfig {
        generations,
        promotion,
        trigger_bytes: 128 * 1024,
        frequency: (0..generations as usize).map(|i| 4u64.pow(i as u32)).collect(),
        ..GcConfig::new()
    };
    let mut heap = Heap::new(config);
    let params = LifetimeParams { allocations, ..LifetimeParams::default() };
    let stats = run_lifetime_workload(&mut heap, &params);
    heap.verify().expect("heap valid after workload");
    E11Row {
        generations,
        collections: stats.collections,
        words_copied: stats.words_copied,
        max_pause_ns: stats.max_pause_ns,
        total_gc_ns: stats.total_gc_ns,
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, Vec<E11Row>) {
    let allocations = if quick { 30_000 } else { 300_000 };
    let mut table = Table::new(
        "E11: collector characterisation under a generational workload",
        &["configuration", "collections", "words copied", "max pause (us)", "total GC (ms)"],
    );
    let mut rows = Vec::new();
    let configs: [(&str, u8, Promotion); 6] = [
        ("1 gen", 1, Promotion::NextGeneration),
        ("2 gens", 2, Promotion::NextGeneration),
        ("4 gens (paper policy)", 4, Promotion::NextGeneration),
        ("6 gens", 6, Promotion::NextGeneration),
        ("4 gens, tenure capped @2", 4, Promotion::Capped(2)),
        ("4 gens, same-generation", 4, Promotion::SameGeneration),
    ];
    for (name, generations, promotion) in configs {
        let row = measure_with(generations, promotion, allocations);
        table.row(&[
            name.to_string(),
            fmt_count(row.collections),
            fmt_count(row.words_copied),
            format!("{}", row.max_pause_ns / 1_000),
            format!("{}", row.total_gc_ns / 1_000_000),
        ]);
        rows.push(row);
    }
    table.note("generations reduce re-copying of long-lived data; tenure strategies (paper: 'under programmer control') trade residency against re-copying");
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generational_collectors_copy_less_than_single_generation() {
        let (_t, rows) = run(true);
        let single = rows.iter().find(|r| r.generations == 1).unwrap();
        let four = rows.iter().find(|r| r.generations == 4).unwrap();
        assert!(
            four.words_copied < single.words_copied,
            "4-gen copied {} vs 1-gen {}",
            four.words_copied,
            single.words_copied
        );
        assert_eq!(rows.len(), 6, "generation sweep plus the two tenure strategies");
        // Same-generation re-copies gen-1 residents: at least as much
        // copying as the paper's policy at the same generation count.
        assert!(rows[5].words_copied >= rows[2].words_copied);
    }
}
