//! **E11 — Whole-collector characterisation.**
//!
//! Section 4's collector: generations, promotion, target generation,
//! schedule. Under a generational-hypothesis workload, more generations
//! should reduce total copying (old survivors are not re-copied) and
//! shrink the typical pause, which is why the paper's overhead claims are
//! stated *relative to generational work*.
//!
//! The table also reports copy throughput (words copied per second of
//! pause time) and the share of pause time spent in the copy/scan engine
//! (remset + sweep phases) — the figures the bulk-copy engine is tuned
//! for; `benches/e13_copy.rs` tracks the same throughput under criterion.

use guardians_gc::{GcConfig, Heap, PhaseTimes, Promotion};
use guardians_workloads::report::fmt_count;
use guardians_workloads::{run_lifetime_workload, LifetimeParams, Table};

/// One configuration's outcome.
#[derive(Debug, Clone)]
pub struct E11Row {
    pub generations: u8,
    pub collections: u64,
    pub words_copied: u64,
    pub max_pause_ns: u128,
    pub total_gc_ns: u128,
    /// Cumulative per-phase pause breakdown.
    pub phases: PhaseTimes,
    /// Copy throughput: words copied per second of total pause time.
    pub words_per_sec: f64,
    /// Pause-time percentiles in nanoseconds `[p50, p95, p99]`, read
    /// back from the metrics registry's `gc.pause_ns` histogram — the
    /// observability layer's view of the same run.
    pub pause_quantiles_ns: [u64; 3],
}

fn measure_with(generations: u8, promotion: Promotion, allocations: usize) -> E11Row {
    let config = GcConfig {
        generations,
        promotion,
        trigger_bytes: 128 * 1024,
        frequency: (0..generations as usize)
            .map(|i| 4u64.pow(i as u32))
            .collect(),
        ..GcConfig::new()
    };
    let mut heap = Heap::new(config);
    let params = LifetimeParams {
        allocations,
        ..LifetimeParams::default()
    };
    let stats = run_lifetime_workload(&mut heap, &params);
    heap.verify().expect("heap valid after workload");
    let pause_quantiles_ns = {
        let h = heap
            .metrics()
            .get_histogram("gc.pause_ns")
            .expect("collections happened, so the pause histogram exists");
        [0.50, 0.95, 0.99].map(|q| h.quantile(q).unwrap_or(0))
    };
    let total_secs = stats.total_gc_ns as f64 / 1e9;
    E11Row {
        generations,
        collections: stats.collections,
        words_copied: stats.words_copied,
        max_pause_ns: stats.max_pause_ns,
        total_gc_ns: stats.total_gc_ns,
        phases: stats.phase_times,
        words_per_sec: if total_secs > 0.0 {
            stats.words_copied as f64 / total_secs
        } else {
            0.0
        },
        pause_quantiles_ns,
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, Vec<E11Row>) {
    let allocations = if quick { 30_000 } else { 300_000 };
    let mut table = Table::new(
        "E11: collector characterisation under a generational workload",
        &[
            "configuration",
            "collections",
            "words copied",
            "max pause (us)",
            "total GC (ms)",
            "copy Mw/s",
            "copy+scan %",
        ],
    );
    let mut rows = Vec::new();
    let configs: [(&str, u8, Promotion); 6] = [
        ("1 gen", 1, Promotion::NextGeneration),
        ("2 gens", 2, Promotion::NextGeneration),
        ("4 gens (paper policy)", 4, Promotion::NextGeneration),
        ("6 gens", 6, Promotion::NextGeneration),
        ("4 gens, tenure capped @2", 4, Promotion::Capped(2)),
        ("4 gens, same-generation", 4, Promotion::SameGeneration),
    ];
    for (name, generations, promotion) in configs {
        let row = measure_with(generations, promotion, allocations);
        let phase_total = row.phases.total().as_secs_f64();
        let copy_scan = (row.phases.remset + row.phases.sweep).as_secs_f64();
        table.row(&[
            name.to_string(),
            fmt_count(row.collections),
            fmt_count(row.words_copied),
            format!("{}", row.max_pause_ns / 1_000),
            format!("{}", row.total_gc_ns / 1_000_000),
            format!("{:.1}", row.words_per_sec / 1e6),
            if phase_total > 0.0 {
                format!("{:.0}", 100.0 * copy_scan / phase_total)
            } else {
                "0".to_string()
            },
        ]);
        rows.push(row);
    }
    table.note(super::env_note(1, None));
    table.note("generations reduce re-copying of long-lived data; tenure strategies (paper: 'under programmer control') trade residency against re-copying");
    table.note("copy Mw/s = words copied per second of pause; copy+scan % = (remset + sweep) share of the per-phase pause breakdown");
    let paper = &rows[2];
    table.note(format!(
        "paper policy pause percentiles from the gc.pause_ns metrics histogram (us): p50 {}  p95 {}  p99 {}  (profile any row with `gcprof --scenario e11`)",
        paper.pause_quantiles_ns[0] / 1_000,
        paper.pause_quantiles_ns[1] / 1_000,
        paper.pause_quantiles_ns[2] / 1_000,
    ));
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generational_collectors_copy_less_than_single_generation() {
        let (_t, rows) = run(true);
        let single = rows.iter().find(|r| r.generations == 1).unwrap();
        let four = rows.iter().find(|r| r.generations == 4).unwrap();
        assert!(
            four.words_copied < single.words_copied,
            "4-gen copied {} vs 1-gen {}",
            four.words_copied,
            single.words_copied
        );
        assert_eq!(
            rows.len(),
            6,
            "generation sweep plus the two tenure strategies"
        );
        // Same-generation re-copies gen-1 residents: at least as much
        // copying as the paper's policy at the same generation count.
        assert!(rows[5].words_copied >= rows[2].words_copied);
    }

    #[test]
    fn phase_times_cover_the_pause_and_throughput_is_positive() {
        let (_t, rows) = run(true);
        for row in &rows {
            assert!(
                row.words_per_sec > 0.0,
                "copying happened, so throughput is nonzero"
            );
            let phase_total = row.phases.total().as_nanos();
            assert!(phase_total > 0, "phases were timed");
            assert!(
                phase_total <= row.total_gc_ns,
                "phase breakdown ({phase_total} ns) fits inside the total pause ({} ns)",
                row.total_gc_ns
            );
            // The metrics histogram agrees with the workload's own
            // max-pause measurement: quantiles are ordered and bounded.
            let [p50, p95, p99] = row.pause_quantiles_ns;
            assert!(p50 <= p95 && p95 <= p99, "quantiles ordered");
            assert!(
                p50 > 0 && p99 as u128 <= row.max_pause_ns,
                "p99 ({p99} ns) is clamped to the exact max, which both \
                 accountings derive from the same pauses ({} ns)",
                row.max_pause_ns
            );
        }
    }
}
