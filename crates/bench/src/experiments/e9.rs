//! **E9 — The `pend-final-list` fixpoint loop.**
//!
//! Section 4's algorithm iterates because "if the tconc is not accessible,
//! it may become accessible during the sweeping phase (if pointed to from
//! within one of the objs)". A chain of guardians each registered with the
//! previous one forces one fixpoint iteration per link; this experiment
//! confirms the iteration count scales with the chain and nothing else.

use guardians_gc::{Heap, Value};
use guardians_workloads::report::fmt_count;
use guardians_workloads::Table;

/// One measurement.
#[derive(Debug, Clone)]
pub struct E9Row {
    pub chain: usize,
    pub loop_iterations: u64,
    pub entries_finalized: u64,
}

fn measure(chain: usize) -> E9Row {
    let mut heap = Heap::default();
    let keeper = heap.make_guardian();
    let mut guardians = Vec::new();
    for _ in 0..chain {
        guardians.push(heap.make_guardian());
    }
    keeper.register(&mut heap, guardians[0].tconc());
    for i in 1..chain {
        let inner = guardians[i].tconc();
        guardians[i - 1].register(&mut heap, inner);
    }
    let obj = heap.cons(Value::fixnum(chain as i64), Value::NIL);
    guardians[chain - 1].register(&mut heap, obj);
    drop(guardians);
    heap.collect(heap.config().max_generation());
    let report = heap.last_report().unwrap();
    E9Row {
        chain,
        loop_iterations: report.guardian_loop_iterations,
        entries_finalized: report.guardian_entries_finalized,
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, Vec<E9Row>) {
    let chains: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 4, 16, 64, 256]
    };
    let mut table = Table::new(
        "E9: fixpoint iterations for guardian chains (guardian guarding guardian)",
        &["chain length", "loop iterations", "entries finalized"],
    );
    let mut rows = Vec::new();
    for &c in chains {
        let row = measure(c);
        table.row(&[
            fmt_count(c as u64),
            fmt_count(row.loop_iterations),
            fmt_count(row.entries_finalized),
        ]);
        rows.push(row);
    }
    table.note("iterations = chain + 2: one per resurrected link, one for the innermost object, one empty terminating pass");
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterations_scale_with_the_chain() {
        let (_t, rows) = run(true);
        for r in &rows {
            assert_eq!(r.loop_iterations, r.chain as u64 + 2, "chain={}", r.chain);
            assert_eq!(
                r.entries_finalized,
                r.chain as u64 + 1,
                "every link + the object"
            );
        }
    }
}
