//! **E22 — Online policy autotuner vs. the best static configuration.**
//!
//! Three adversarial mutators (`crates/workloads/src/policy.rs`), each
//! engineered so a different default-policy assumption is the expensive
//! one: a long-lived cache (the frequency ladder keeps recopying stable
//! old data), bursty request churn (a sub-burst nursery trigger copies
//! whole in-flight batches), and a guardian-heavy resource pool
//! (advance-by-one promotion parks dead sessions in rarely-collected
//! generations).
//!
//! Every configuration runs all three workloads and is scored by the
//! *GC-work geomean*: the geometric mean across workloads of words
//! copied plus guardian entries visited — a machine-independent proxy
//! for GC time (both terms scale linearly with pause time and neither
//! depends on the host), so the score is bit-reproducible and the gate
//! on it is noise-free.
//!
//! The static sweep is an E11-style grid a practitioner could actually
//! ship under a bounded memory budget: nursery triggers up to 4×
//! default and ladders up to 4× stretched, with and without the tenure
//! cap. The autotuner starts from the *default* configuration with no
//! knowledge of the workload and must (asserted here, pinned by
//! `BENCH_e22.json`):
//!
//! * beat the untuned default by ≥ 1.15× on the GC-work geomean, and
//! * reach ≥ 0.95× of the best static sweep configuration.
//!
//! In practice it beats the best static config outright: a single
//! static policy must average over the three workloads, while the
//! controller retunes each heap to its own mutator (and pays for it
//! honestly — the capacity column shows the footprint each policy
//! bought its speed with). The observe-mode row doubles as the
//! bit-identity proof: a controller that never applies a decision
//! leaves every observable of every workload exactly equal to the
//! untuned default.
//!
//! Each row also reports the liveness-drag measurement: dropped objects
//! are watched through weak pairs, and the peak count of
//! dead-in-truth-but-still-weakly-reachable objects in the guardian
//! pool workload shows how far reachability lags true liveness under
//! each policy.

use guardians_gc::{AutotuneConfig, GcConfig, Heap, Promotion};
use guardians_workloads::report::fmt_count;
use guardians_workloads::{
    run_burst_workload, run_cache_workload, run_pool_workload, BurstParams, CacheParams,
    PolicyStats, PoolParams, Table,
};

/// The three workloads, in row order.
pub const WORKLOADS: [&str; 3] = ["cache", "burst", "pool"];

/// One configuration's outcome across the three workloads.
#[derive(Debug, Clone)]
pub struct E22Row {
    /// Row label.
    pub label: String,
    /// Per-workload stats, in [`WORKLOADS`] order.
    pub stats: [PolicyStats; 3],
    /// Geometric mean of per-workload GC work (words copied + guardian
    /// entries visited).
    pub geomean_work: f64,
    /// Whether the row is a member of the static sweep (the autotuner
    /// is compared against the best of these).
    pub sweep: bool,
    /// Autotuner decisions logged while running the three workloads
    /// (zero for static rows).
    pub decisions: u64,
}

fn workload_params(quick: bool) -> (CacheParams, BurstParams, PoolParams) {
    let scale = if quick { 1 } else { 3 };
    (
        CacheParams {
            rounds: 8000 * scale,
            ..CacheParams::default()
        },
        BurstParams {
            bursts: 150 * scale,
            requests_per_burst: 2048,
            request_len: 40,
            ..BurstParams::default()
        },
        PoolParams {
            rounds: 8000 * scale,
            ..PoolParams::default()
        },
    )
}

/// A static sweep member: the default config with `trigger_bytes`,
/// ladder stretch, and tenure cap overridden.
fn static_config(trigger: usize, stretch: u64, cap: bool) -> GcConfig {
    let base = GcConfig::new();
    let frequency = base
        .effective_frequency()
        .iter()
        .enumerate()
        .map(|(g, &f)| if g == 0 { f } else { f.saturating_mul(stretch) })
        .collect();
    GcConfig {
        trigger_bytes: trigger,
        frequency,
        promotion: if cap {
            Promotion::Capped(1)
        } else {
            base.promotion
        },
        ..base
    }
}

/// Runs the three workloads on fresh heaps produced by `make_heap`,
/// returning per-workload stats and the autotuner decision count.
fn measure(label: &str, make_heap: &dyn Fn() -> Heap, quick: bool) -> ([PolicyStats; 3], u64) {
    let (cache, burst, pool) = workload_params(quick);
    let mut decisions = 0u64;
    let mut run = |workload: &str, f: &dyn Fn(&mut Heap) -> PolicyStats| {
        let mut heap = make_heap();
        let stats = f(&mut heap);
        heap.verify().expect("heap valid after the workload");
        decisions += heap.autotune_decisions().len() as u64;
        if std::env::var("E22_DEBUG").is_ok() {
            for d in heap.autotune_decisions() {
                eprintln!(
                    "  [e22] {label}/{workload} collection {}: {} {} -> {} (sensor {})",
                    d.collection_index, d.knob, d.from, d.to, d.sensor
                );
            }
        }
        stats
    };
    let stats = [
        run("cache", &|h: &mut Heap| run_cache_workload(h, &cache)),
        run("burst", &|h: &mut Heap| run_burst_workload(h, &burst)),
        run("pool", &|h: &mut Heap| run_pool_workload(h, &pool)),
    ];
    (stats, decisions)
}

/// Geometric mean of the per-workload GC work (each clamped to ≥ 1 so a
/// zero-work run cannot zero the product).
fn geomean_work(stats: &[PolicyStats; 3]) -> f64 {
    let product: f64 = stats.iter().map(|s| s.gc_work().max(1) as f64).product();
    product.powf(1.0 / stats.len() as f64)
}

fn make_row(label: &str, sweep: bool, make_heap: &dyn Fn() -> Heap, quick: bool) -> E22Row {
    let (stats, decisions) = measure(label, make_heap, quick);
    let geomean_work = geomean_work(&stats);
    E22Row {
        label: label.to_string(),
        stats,
        geomean_work,
        sweep,
        decisions,
    }
}

/// Runs the experiment and asserts the acceptance thresholds.
pub fn run(quick: bool) -> (Table, Vec<E22Row>) {
    const MB: usize = 1024 * 1024;
    let mut rows: Vec<E22Row> = Vec::new();
    let statics: [(&str, usize, u64, bool); 6] = [
        ("static: default (untuned)", MB, 1, false),
        ("static: trigger 4M", 4 * MB, 1, false),
        ("static: ladder x4", MB, 4, false),
        ("static: 4M + ladder x4", 4 * MB, 4, false),
        ("static: tenure cap 1", MB, 1, true),
        ("static: 4M + x4 + cap 1", 4 * MB, 4, true),
    ];
    for (label, trigger, stretch, cap) in statics {
        let cfg = static_config(trigger, stretch, cap);
        rows.push(make_row(
            label,
            true,
            &move || Heap::new(cfg.clone()),
            quick,
        ));
    }
    rows.push(make_row(
        "autotune: observe",
        false,
        &|| {
            let mut h = Heap::new(GcConfig::new());
            h.enable_autotune(AutotuneConfig::observe());
            h
        },
        quick,
    ));
    rows.push(make_row(
        "autotune: active",
        false,
        &|| {
            let mut h = Heap::new(GcConfig::new());
            h.enable_autotune(AutotuneConfig::active());
            h
        },
        quick,
    ));

    let default_row = rows[0].clone();
    let observe = rows[rows.len() - 2].clone();
    let active = rows[rows.len() - 1].clone();

    // Bit-identity: a controller that never applies a decision changes
    // nothing — every per-workload observable matches the untuned
    // default exactly.
    assert_eq!(
        observe.stats, default_row.stats,
        "observe mode must be bit-identical to the untuned default"
    );
    assert!(
        observe.decisions > 0,
        "observe mode still logs the decisions it would have made"
    );

    // Acceptance thresholds (lower work is better, so speedup is
    // reference-work / autotuned-work).
    let best_static = rows
        .iter()
        .filter(|r| r.sweep)
        .min_by(|a, b| a.geomean_work.total_cmp(&b.geomean_work))
        .expect("sweep is non-empty")
        .clone();
    let vs_default = default_row.geomean_work / active.geomean_work;
    let vs_best = best_static.geomean_work / active.geomean_work;
    assert!(
        vs_default >= 1.15,
        "autotuner must beat the untuned default by >=1.15x on the GC-work \
         geomean (got {vs_default:.3}x: default {:.0}, active {:.0})",
        default_row.geomean_work,
        active.geomean_work
    );
    assert!(
        vs_best >= 0.95,
        "autotuner must reach >=0.95x of the best static sweep config \
         ({}; got {vs_best:.3}x: static {:.0}, active {:.0})",
        best_static.label,
        best_static.geomean_work,
        active.geomean_work
    );

    let mut table = Table::new(
        "E22: online policy autotuner vs. static configuration sweep",
        &[
            "config",
            "cache kw",
            "burst kw",
            "pool kw",
            "work geomean (kw)",
            "pool drag peak",
            "peak cap (MB)",
            "vs default",
        ],
    );
    for row in &rows {
        let cap_mb = row
            .stats
            .iter()
            .map(|s| s.final_capacity_bytes)
            .max()
            .unwrap_or(0) as f64
            / MB as f64;
        table.row(&[
            row.label.clone(),
            fmt_count(row.stats[0].gc_work() / 1000),
            fmt_count(row.stats[1].gc_work() / 1000),
            fmt_count(row.stats[2].gc_work() / 1000),
            format!("{:.1}", (row.geomean_work / 1000.0).max(0.1)),
            fmt_count(row.stats[2].drag_peak),
            format!("{cap_mb:.1}"),
            format!(
                "{:.2}x",
                default_row.geomean_work / row.geomean_work.max(1.0)
            ),
        ]);
    }
    table.note(super::env_note(1, None));
    table.note(super::config_note(&GcConfig::new()));
    table.note(format!(
        "GC work = words copied + guardian entries visited, a deterministic machine-independent proxy for GC time; geomean across the {} workloads; kw = kilowords/kilo-entries",
        WORKLOADS.len()
    ));
    table.note(format!(
        "autotuner starts from the default config with no workload knowledge and logged {} decisions across the three workloads; vs untuned default {vs_default:.2}x (threshold 1.15x), vs best static ({}) {vs_best:.2}x (threshold 0.95x)",
        active.decisions, best_static.label
    ));
    table.note("the static sweep is a memory-bounded grid (trigger <=4x default, ladder <=4x stretch, optional tenure cap) applied to all three workloads at once; the autotuner retunes each heap per workload and reports the footprint it bought in the capacity column");
    table.note("pool drag peak = dead-in-truth sessions still weakly reachable at a post-collection sample (reachability lagging true liveness); the ring watches the last 32,768 closed sessions, so values at 32,768 are saturated lower bounds. The tenure cap buys promptness (lowest drag); the work-optimal policies pay for their speed in drag — coarser collection means reachability lags liveness longer. Observe row is asserted bit-identical to the untuned default");
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autotuner_beats_default_and_matches_best_static() {
        // `run` asserts the 1.15x / 0.95x thresholds internally.
        let (_t, rows) = run(true);
        assert_eq!(rows.len(), 8, "6 sweep members + observe + active");
        let active = rows.last().expect("active row");
        assert!(active.decisions > 0, "the controller acted");
        // The tenure cap must make guardian reclamation prompter than
        // the untuned default on the pool workload: the static cap-1 row
        // (where the cap is the only change) has strictly lower drag.
        let cap_row = rows
            .iter()
            .find(|r| r.label.contains("tenure cap 1"))
            .expect("cap-only sweep row");
        assert!(
            cap_row.stats[2].drag_peak < rows[0].stats[2].drag_peak,
            "tenure-capped pool drag peak ({}) must be below the default's ({})",
            cap_row.stats[2].drag_peak,
            rows[0].stats[2].drag_peak
        );
        // Drag was observed on every workload of every row.
        for row in &rows {
            assert!(row.stats[2].drag_peak > 0, "{}: pool drag seen", row.label);
        }
        for row in &rows {
            for (w, s) in WORKLOADS.iter().zip(&row.stats) {
                assert!(s.collections > 0, "{}/{w}: collections ran", row.label);
                assert!(s.drag_samples > 0, "{}/{w}: drag sampled", row.label);
            }
        }
    }

    #[test]
    fn every_gated_cell_is_parsable() {
        let (t, _rows) = run(true);
        let headers = t.headers();
        let i = headers
            .iter()
            .position(|h| h == "work geomean (kw)")
            .expect("gated column present");
        for row in t.rows() {
            let v: f64 = row[i].replace(',', "").parse().expect("numeric cell");
            assert!(v > 0.0, "non-positive gated cell {}", row[i]);
        }
    }
}
