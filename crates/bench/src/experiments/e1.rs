//! **E1 — Figure 1: the guarded hash table removes useless entries.**
//!
//! The paper's Figure 1 claims that guardians + weak pairs "allow removal
//! of useless entries" with support "entirely contained within the shaded
//! areas". We replay an identical churn script against three tables and
//! report table growth and clean-up work.

use crate::replay::{replay, ReplayOutcome, TableKind};
use guardians_gc::Heap;
use guardians_workloads::report::fmt_count;
use guardians_workloads::{table_script, ChurnParams, Table};

/// Structured results for one mechanism.
#[derive(Debug, Clone)]
pub struct E1Row {
    pub kind: TableKind,
    pub outcome: ReplayOutcome,
}

/// Runs the experiment; `quick` shrinks the workload for CI/tests.
pub fn run(quick: bool) -> (Table, Vec<E1Row>) {
    let params = ChurnParams {
        ops: if quick { 4_000 } else { 40_000 },
        live_target: if quick { 300 } else { 2_000 },
        collect_every: 500,
        collect_generation: 3,
        ..ChurnParams::default()
    };
    let script = table_script(&params);
    let mut table = Table::new(
        "E1 (Figure 1): guarded hash table vs weak-only tables — identical churn",
        &[
            "mechanism",
            "live keys",
            "physical entries",
            "peak entries",
            "cleanup touched",
            "lookup misses",
        ],
    );
    let mut rows = Vec::new();
    for kind in [
        TableKind::Guarded,
        TableKind::WeakNoScrub,
        TableKind::WeakFullScan,
    ] {
        let mut heap = Heap::default();
        let outcome = replay(&mut heap, kind, 128, &script);
        table.row(&[
            format!("{kind:?}"),
            fmt_count(outcome.live_keys as u64),
            fmt_count(outcome.physical_entries as u64),
            fmt_count(outcome.peak_physical_entries as u64),
            fmt_count(outcome.cleanup_entries_touched),
            fmt_count(outcome.misses),
        ]);
        rows.push(E1Row { kind, outcome });
    }
    table.note("paper: guarded table tracks the live population; weak-only either leaks (NoScrub) or pays full scans (FullScan)");
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_holds() {
        let (_t, rows) = run(true);
        let guarded = &rows[0].outcome;
        let leaky = &rows[1].outcome;
        let scans = &rows[2].outcome;
        for r in &rows {
            assert_eq!(r.outcome.misses, 0, "{:?} correctness", r.kind);
        }
        assert!(guarded.physical_entries < leaky.physical_entries);
        assert!(guarded.cleanup_entries_touched < scans.cleanup_entries_touched);
    }
}
