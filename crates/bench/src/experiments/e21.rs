//! **E21 — Multi-tenant zone fleet: throughput, tail pauses, reclaim.**
//!
//! A fleet of isolated heap zones drawing segments from one shared pool,
//! fronted by the thread-per-core [`ZoneRouter`]: sessions hash to zones,
//! zones pin to workers, and every request runs a safe point (policy
//! collection + guardian drain) on its zone's own heap. Tenant sessions
//! hold external resources (a simulated-OS fd and an arena block);
//! eviction drops the root and the zone's guardian reclaims the
//! resources once the collector proves the session dead — the paper's
//! program-controlled finalization doing fleet resource reclamation at
//! scale.
//!
//! The experiment runs the same fleet workload (8 zones, half typed /
//! half Scheme, ≥1000 concurrent simulated sessions) under each engine
//! of the zone matrix — serial, 4-worker parallel, 100 µs bounded-pause —
//! and reports aggregate request throughput, guardian-reclaimed resource
//! counts, and the worst per-zone pause p99 (attributable per zone
//! because all collector telemetry is per-heap). Each run also replays
//! every zone's recorded request subsequence on a private solo zone and
//! asserts the observables byte-identical: multi-tenancy, the shared
//! pool, and the router add *no* observable behaviour.
//!
//! The bench gate pins the fleet throughput column (higher is better)
//! and the worst-zone pause p99 (lower is better).

use guardians_workloads::report::fmt_count;
use guardians_workloads::Table;
use guardians_zones::{
    session_zone, Engine, FleetStats, Request, Zone, ZoneConfig, ZoneRouter, ZoneSnapshot,
};

/// Zones in the fleet (acceptance floor: at least 8).
const ZONES: usize = 8;
/// Router worker threads.
const WORKERS: usize = 4;

/// One engine's fleet outcome.
#[derive(Debug, Clone)]
pub struct E21Row {
    pub label: String,
    pub zones: usize,
    /// Sessions opened fleet-wide (all concurrently live before the
    /// eviction wave).
    pub sessions: u64,
    pub requests: u64,
    /// Aggregate request throughput across the fleet.
    pub reqs_per_sec: f64,
    /// Sessions whose fd + arena block the guardian path reclaimed.
    pub reclaimed: u64,
    pub fds_closed: u64,
    pub blocks_freed: u64,
    /// Worst per-zone `gc.pause_ns` p99 in nanoseconds.
    pub worst_p99_ns: u64,
    /// Zones whose fleet observables matched their private solo replay.
    pub identity_checked: usize,
}

/// The per-zone configurations of the fleet: engine fixed per run,
/// workload alternating typed/Scheme, trigger small enough that every
/// zone collects during the run.
fn fleet_configs(engine: Engine) -> Vec<ZoneConfig> {
    (0..ZONES as u64)
        .map(|id| {
            let base = if id % 2 == 0 {
                ZoneConfig::typed()
            } else {
                ZoneConfig::scheme()
            };
            base.with_engine(engine).with_trigger_bytes(1 << 16)
        })
        .collect()
}

/// The session-hashed request stream: open everything, `rounds` work
/// waves, evict every second session, recorded per zone for the replay.
fn request_stream(sessions: u64, rounds: u32) -> (Vec<Request>, Vec<Vec<Request>>) {
    let mut stream = Vec::new();
    for s in 0..sessions {
        stream.push(Request::Open { session: s });
    }
    for round in 0..rounds {
        for s in 0..sessions {
            stream.push(Request::Work {
                session: s,
                amount: 1 + (s as u32 + round) % 5,
            });
        }
    }
    for s in (0..sessions).step_by(2) {
        stream.push(Request::Evict { session: s });
    }
    let mut per_zone = vec![Vec::new(); ZONES];
    for &req in &stream {
        per_zone[session_zone(req.session(), ZONES) as usize].push(req);
    }
    (stream, per_zone)
}

/// Replays one zone's subsequence on a private solo zone — the identity
/// oracle. Panics on divergence (an experiment-level invariant, not a
/// measured quantity).
fn check_identity(snap: &ZoneSnapshot, config: &ZoneConfig, reqs: &[Request]) {
    let mut zone = Zone::new(snap.zone, config);
    for &r in reqs {
        zone.dispatch(r);
    }
    zone.quiesce();
    assert_eq!(
        snap.obs,
        zone.observables(),
        "zone {} fleet observables diverge from its solo replay",
        snap.zone
    );
}

fn measure(engine: Engine, sessions: u64, rounds: u32) -> E21Row {
    let configs = fleet_configs(engine);
    let (stream, per_zone) = request_stream(sessions, rounds);
    let pool = guardians_gc::SegmentPool::unbounded();
    let router = ZoneRouter::new(WORKERS, pool);
    for (id, cfg) in configs.iter().enumerate() {
        router.create_zone(id as u64, cfg.clone());
    }
    let start = std::time::Instant::now();
    for &req in &stream {
        router.dispatch_by_session(ZONES, req);
    }
    router.quiesce();
    let elapsed = start.elapsed();
    let snaps = router.shutdown();
    for snap in &snaps {
        check_identity(
            snap,
            &configs[snap.zone as usize],
            &per_zone[snap.zone as usize],
        );
    }
    let fleet = FleetStats::aggregate(&snaps);
    assert_eq!(fleet.sessions_opened, sessions, "every session landed");
    E21Row {
        label: engine.label(),
        zones: snaps.len(),
        sessions: fleet.sessions_opened,
        requests: fleet.requests,
        reqs_per_sec: fleet.requests as f64 / elapsed.as_secs_f64().max(1e-9),
        reclaimed: fleet.reclaimed_sessions,
        fds_closed: fleet.fds_closed,
        blocks_freed: fleet.blocks_freed,
        worst_p99_ns: fleet.worst_pause_p99_ns,
        identity_checked: snaps.len(),
    }
}

/// Formats nanoseconds as microseconds, clamped positive for the gate.
fn us(ns: u64) -> String {
    format!("{:.1}", (ns as f64 / 1e3).max(0.1))
}

/// Runs the experiment: the engine matrix over the same fleet workload.
pub fn run(quick: bool) -> (Table, Vec<E21Row>) {
    let sessions: u64 = if quick { 1000 } else { 2500 };
    let rounds: u32 = if quick { 2 } else { 4 };
    let mut table = Table::new(
        "E21: multi-tenant zone fleet over a shared segment pool",
        &[
            "engine",
            "zones",
            "sessions",
            "requests",
            "fleet kreq/s",
            "reclaimed",
            "fds closed",
            "worst zone p99 (us)",
        ],
    );
    let mut rows = Vec::new();
    for engine in Engine::MATRIX {
        let row = measure(engine, sessions, rounds);
        table.row(&[
            row.label.clone(),
            row.zones.to_string(),
            fmt_count(row.sessions),
            fmt_count(row.requests),
            format!("{:.1}", (row.reqs_per_sec / 1e3).max(0.001)),
            fmt_count(row.reclaimed),
            fmt_count(row.fds_closed),
            us(row.worst_p99_ns),
        ]);
        rows.push(row);
    }
    table.note(super::env_note(1, None));
    table.note(format!(
        "engine varies by row (the zone matrix); fleet: {ZONES} zones (typed/Scheme alternating) on {WORKERS} router workers, sessions hashed to zones, every request a safe point"
    ));
    table.note("reclaimed counts evicted sessions whose fd + arena block the zone guardian closed/freed after the collector proved them dead (fds closed always matches)");
    table.note("identity: every zone's observables were replayed against a private solo zone and matched byte-for-byte — the shared pool and router add no observable behaviour");
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_hits_the_acceptance_floor_and_reclaims() {
        let (_t, rows) = run(true);
        assert_eq!(rows.len(), 3, "the full engine matrix");
        for row in &rows {
            assert!(row.zones >= 8, "{}: >=8 zones", row.label);
            assert!(row.sessions >= 1000, "{}: >=1000 sessions", row.label);
            assert_eq!(
                row.identity_checked, row.zones,
                "{}: every zone identity-checked",
                row.label
            );
            assert_eq!(
                row.reclaimed,
                row.sessions / 2,
                "{}: every evicted session reclaimed",
                row.label
            );
            assert_eq!(row.fds_closed, row.reclaimed);
            assert_eq!(row.blocks_freed, row.reclaimed);
        }
        // Engine must not change what the fleet computes, only how fast.
        assert!(
            rows.windows(2)
                .all(|w| w[0].requests == w[1].requests && w[0].reclaimed == w[1].reclaimed),
            "deterministic fleet totals across engines"
        );
    }

    #[test]
    fn every_cell_is_gate_parsable() {
        let (t, _rows) = run(true);
        let headers = t.headers();
        for col in ["fleet kreq/s", "worst zone p99 (us)"] {
            let i = headers
                .iter()
                .position(|h| h == col)
                .unwrap_or_else(|| panic!("column {col:?} present"));
            for row in t.rows() {
                let v: f64 = row[i].replace(',', "").parse().expect("numeric cell");
                assert!(v > 0.0, "{col}: non-positive cell {}", row[i]);
            }
        }
    }
}
