//! **E20 — Typed front-end (`guardians-gc-api`) vs raw tagged-value
//! throughput.**
//!
//! The typed layer lowers user structs to the same records the raw API
//! allocates — one interned descriptor symbol per type, then one record
//! per object — and routes every access through `Root<T>` shadow-stack
//! slots and the typed accessors. This experiment prices that safety
//! layer: it builds an identical guarded linked chain through both
//! surfaces (allocate, wire edges through the write barrier, register a
//! fraction with a guardian, drop the roots, collect everything, drain
//! the guardian), times the full lifecycle per node, and checks the
//! observables — finalization count, drain order, the whole census —
//! stay identical. The overhead is the cost of `Gc<T>`/`Root<T>`
//! ergonomics, not of different heap behaviour.

use guardians_gc::{GcConfig, Heap, Rooted, Value};
use guardians_gc_api::{impl_trace, GcHeap, Guardian, Root};
use guardians_workloads::Table;
use std::time::Instant;

impl_trace! {
    /// The chain link both builders allocate: an id plus one typed edge.
    pub struct Link {
        /// Chain position.
        pub id: i64,
        /// Previous link (`None` at the head).
        pub prev: Option<Root<Link>>,
    }
}

/// One chain size's outcome under both surfaces.
#[derive(Debug, Clone)]
pub struct E20Row {
    pub nodes: usize,
    pub guarded: usize,
    pub raw_ns_per_node: f64,
    pub typed_ns_per_node: f64,
    /// typed time / raw time.
    pub overhead: f64,
    /// Census, finalization count, and drain order all matched.
    pub identical: bool,
}

/// Every `guarded_every`-th node is registered with the guardian.
const GUARDED_EVERY: usize = 4;

/// Builds, kills, collects, and drains an `n`-link chain through the
/// typed API. Returns (elapsed ns, drained ids, census JSON).
fn typed_cycle(n: usize) -> (f64, Vec<i64>, String) {
    let start = Instant::now();
    let mut h = GcHeap::new(GcConfig::new());
    let g: Guardian<Link> = h.guardian();
    let mut prev: Option<Root<Link>> = None;
    for id in 0..n {
        let link = h.alloc(&Link {
            id: id as i64,
            prev: None,
        });
        // Wire the edge through the typed write-barrier path, as user
        // code would after allocation.
        h.set_field(&link, 1, &prev);
        if id % GUARDED_EVERY == 0 {
            h.guard(&g, &link);
        }
        prev = Some(link);
    }
    drop(prev);
    let max_gen = 3;
    for gen in [0u8, max_gen] {
        h.collect(gen);
    }
    let mut ids = Vec::new();
    while let Some(r) = h.poll(&g) {
        ids.push(h.read(&r).id);
    }
    let ns = start.elapsed().as_nanos() as f64;
    (ns / n as f64, ids, h.census().to_json())
}

/// The same cycle through the raw tagged-value API, mirroring the typed
/// lowering allocation-for-allocation (descriptor symbol first, then one
/// record per link).
fn raw_cycle(n: usize) -> (f64, Vec<i64>, String) {
    let start = Instant::now();
    let mut h = Heap::new(GcConfig::new());
    let g = h.make_guardian();
    let desc_v = h.make_symbol("Link");
    let desc = h.root(desc_v);
    let mut prev: Option<Rooted> = None;
    for id in 0..n {
        let rec = h.make_record(desc.get(), &[Value::fixnum(id as i64), Value::NIL]);
        let root = h.root(rec);
        let pv = prev.as_ref().map_or(Value::NIL, Rooted::get);
        h.record_set(rec, 1, pv);
        if id % GUARDED_EVERY == 0 {
            g.register(&mut h, root.get());
        }
        prev = Some(root);
    }
    drop(prev);
    let max_gen = 3;
    for gen in [0u8, max_gen] {
        h.collect(gen);
    }
    let mut ids = Vec::new();
    while let Some(v) = g.poll(&mut h) {
        ids.push(h.record_ref(v, 0).as_fixnum());
    }
    let ns = start.elapsed().as_nanos() as f64;
    (ns / n as f64, ids, h.census().to_json())
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, Vec<E20Row>) {
    let sizes: &[usize] = if quick {
        &[1_000, 4_000]
    } else {
        &[10_000, 40_000]
    };
    let mut table = Table::new(
        "E20: typed front-end (gc-api) vs raw tagged-value throughput",
        &[
            "nodes",
            "guarded",
            "raw ns/node",
            "typed ns/node",
            "overhead",
            "identical",
        ],
    );
    let mut rows = Vec::new();
    for &n in sizes {
        // Warm both paths once so neither pays first-touch segment costs.
        let _ = raw_cycle(n.min(256));
        let _ = typed_cycle(n.min(256));
        let (raw_ns, raw_ids, raw_census) = raw_cycle(n);
        let (typed_ns, typed_ids, typed_census) = typed_cycle(n);
        let row = E20Row {
            nodes: n,
            guarded: n.div_ceil(GUARDED_EVERY),
            raw_ns_per_node: raw_ns,
            typed_ns_per_node: typed_ns,
            overhead: typed_ns / raw_ns,
            identical: raw_ids == typed_ids && raw_census == typed_census,
        };
        table.row(&[
            format!("{n}"),
            format!("{}", row.guarded),
            format!("{:.0}", row.raw_ns_per_node),
            format!("{:.0}", row.typed_ns_per_node),
            format!("{:.2}x", row.overhead),
            if row.identical { "yes" } else { "NO" }.to_string(),
        ]);
        rows.push(row);
    }
    table.note(super::env_note(1, None));
    table.note(
        "lifecycle per node: alloc + edge store (write barrier) + 1-in-4 guardian registration, \
         then drop all roots, collect young + full, drain the guardian",
    );
    table.note(
        "the typed layer allocates exactly what the raw code allocates (descriptor symbol, then \
         records), so 'identical' compares drain order and the full census byte for byte — the \
         overhead column prices Gc<T>/Root<T> ergonomics, not different heap behaviour",
    );
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_layer_is_observably_identical_and_overhead_bounded() {
        let (_t, rows) = run(true);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(
                row.identical,
                "{} nodes: typed and raw observables diverged",
                row.nodes
            );
            assert!(
                row.overhead < 10.0,
                "{} nodes: typed overhead blew up ({:.2}x)",
                row.nodes,
                row.overhead
            );
        }
    }
}
