//! **E4 — Mutator overhead proportional to clean-ups performed.**
//!
//! Abstract: "the overhead within the mutator is proportional to the
//! number of clean-up actions actually performed"; Section 1: "scanning
//! through an entire hash table … in order to eliminate the values for
//! keys that have disappeared is unacceptable."
//!
//! Setup: a table of T live associations; exactly K keys die; one
//! collection; then one clean-up. The guarded table touches K entries;
//! the weak-pointer mechanisms touch T.

use guardians_baselines::WeakSet;
use guardians_gc::{Heap, Rooted, Value};
use guardians_runtime::hashtab::content_hash;
use guardians_runtime::{GuardedHashTable, WeakKeyTable};
use guardians_workloads::report::fmt_count;
use guardians_workloads::{KeyGen, Table};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct E4Row {
    pub table_size: usize,
    pub deaths: usize,
    pub guarded_touched: u64,
    pub full_scan_touched: u64,
    pub weak_set_touched: u64,
}

fn measure(table_size: usize, deaths: usize) -> E4Row {
    // Guarded table.
    let mut heap = Heap::default();
    let mut guarded = GuardedHashTable::new(&mut heap, 256, content_hash);
    let mut keys: Vec<Rooted> = Vec::new();
    for i in 0..table_size {
        let k = heap.make_string(&KeyGen::name(i as u64));
        keys.push(heap.root(k));
        guarded.access(&mut heap, k, Value::fixnum(i as i64));
    }
    keys.truncate(table_size - deaths);
    heap.collect(heap.config().max_generation());
    let before = guarded.removals;
    guarded.scrub(&mut heap);
    let guarded_touched = guarded.removals - before;

    // Weak table with full scan.
    let mut heap = Heap::default();
    let mut weak = WeakKeyTable::new(&mut heap, 256, content_hash);
    let mut keys: Vec<Rooted> = Vec::new();
    for i in 0..table_size {
        let k = heap.make_string(&KeyGen::name(i as u64));
        keys.push(heap.root(k));
        weak.access(&mut heap, k, Value::fixnum(i as i64));
    }
    keys.truncate(table_size - deaths);
    heap.collect(heap.config().max_generation());
    weak.scrub_full_scan(&mut heap);
    let full_scan_touched = weak.entries_scanned;

    // T-style weak set.
    let mut heap = Heap::default();
    let mut set = WeakSet::new(&mut heap);
    let mut keys: Vec<Rooted> = Vec::new();
    for i in 0..table_size {
        let k = heap.make_string(&KeyGen::name(i as u64));
        keys.push(heap.root(k));
        set.add(&mut heap, k);
    }
    keys.truncate(table_size - deaths);
    heap.collect(heap.config().max_generation());
    set.entries_traversed = 0;
    let _ = set.members(&mut heap);
    let weak_set_touched = set.entries_traversed;

    E4Row {
        table_size,
        deaths,
        guarded_touched,
        full_scan_touched,
        weak_set_touched,
    }
}

/// Runs the experiment: T sweeps up while K stays fixed.
pub fn run(quick: bool) -> (Table, Vec<E4Row>) {
    let sizes: &[usize] = if quick {
        &[200, 2_000]
    } else {
        &[1_000, 10_000, 50_000]
    };
    let deaths = 10;
    let mut table = Table::new(
        "E4: clean-up work after 10 key deaths, as table size grows",
        &[
            "table size",
            "deaths",
            "guarded touched",
            "full-scan touched",
            "weak-set touched",
        ],
    );
    let mut rows = Vec::new();
    for &t in sizes {
        let row = measure(t, deaths);
        table.row(&[
            fmt_count(t as u64),
            fmt_count(deaths as u64),
            fmt_count(row.guarded_touched),
            fmt_count(row.full_scan_touched),
            fmt_count(row.weak_set_touched),
        ]);
        rows.push(row);
    }
    table.note("paper claim: guarded work tracks deaths (constant column); weak-pointer work tracks table size (growing columns)");
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarded_work_tracks_deaths_not_size() {
        let (_t, rows) = run(true);
        for r in &rows {
            assert_eq!(r.guarded_touched, r.deaths as u64, "size={}", r.table_size);
            assert_eq!(
                r.full_scan_touched, r.table_size as u64,
                "size={}",
                r.table_size
            );
            assert_eq!(
                r.weak_set_touched, r.table_size as u64,
                "size={}",
                r.table_size
            );
        }
        // And the contrast grows with size.
        assert!(rows[1].full_scan_touched > rows[0].full_scan_touched);
        assert_eq!(rows[0].guarded_touched, rows[1].guarded_touched);
    }
}
