//! **E19 — Bytecode VM vs staged Scheme evaluation throughput.**
//!
//! The staged evaluator (E14) walks an analyzed opcode *tree*; the VM
//! tier lowers that tree once more into flat bytecode — a linear
//! `Vec<Insn>` with u32 operands, fixed frame layouts, jump-resolved
//! control flow — and runs it through a direct-threaded dispatch loop
//! with fused super-instructions and per-call-site inline caches. The
//! compiler is pure (it touches no heap), so the VM allocates the *same
//! sequence of heap objects* as the staged tier and collects at the same
//! safe points: the speedup must come from dispatch mechanics alone.
//! This experiment times both tiers on the E14 workloads and checks the
//! printed results stay byte-identical.

use super::e14::{time_mode, workloads};
use guardians_scheme::InterpConfig;
use guardians_workloads::Table;

/// One workload's outcome under the staged and VM tiers.
#[derive(Debug, Clone)]
pub struct E19Row {
    pub workload: &'static str,
    pub iters: usize,
    pub staged_ns_per_eval: f64,
    pub vm_ns_per_eval: f64,
    /// staged time / VM time.
    pub speedup: f64,
    /// Both tiers printed the same result.
    pub identical: bool,
}

/// Geometric mean of the per-workload speedups.
pub fn geomean_speedup(rows: &[E19Row]) -> f64 {
    let log_sum: f64 = rows.iter().map(|r| r.speedup.ln()).sum();
    (log_sum / rows.len().max(1) as f64).exp()
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, Vec<E19Row>) {
    let mut table = Table::new(
        "E19: bytecode VM vs staged Scheme evaluation throughput",
        &[
            "workload",
            "iters",
            "staged us/eval",
            "vm us/eval",
            "speedup",
            "identical",
        ],
    );
    let mut rows = Vec::new();
    for (w, iters) in workloads(quick) {
        let (staged_ns, staged_result) = time_mode(InterpConfig::staged(), &w, iters);
        let (vm_ns, vm_result) = time_mode(InterpConfig::vm(), &w, iters);
        let row = E19Row {
            workload: w.name,
            iters,
            staged_ns_per_eval: staged_ns,
            vm_ns_per_eval: vm_ns,
            speedup: staged_ns / vm_ns,
            identical: staged_result == vm_result,
        };
        table.row(&[
            w.name.to_string(),
            format!("{}", row.iters),
            format!("{:.0}", row.staged_ns_per_eval / 1e3),
            format!("{:.0}", row.vm_ns_per_eval / 1e3),
            format!("{:.2}x", row.speedup),
            if row.identical { "yes" } else { "NO" }.to_string(),
        ]);
        rows.push(row);
    }
    table.note(super::env_note(1, None));
    table.note(format!(
        "geomean speedup across workloads: {:.2}x",
        geomean_speedup(&rows)
    ));
    table.note("vm = the staged opcode tree lowered to flat bytecode (compile.rs) run by a direct-threaded dispatch loop with fused super-instructions and per-call-site inline caches (vm.rs)");
    table.note("the bytecode compiler is pure, so both tiers allocate identical object sequences and collect at the same safe points (every application); 'identical' checks printed results byte for byte");
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_matches_staged_and_is_faster() {
        let (_t, rows) = run(true);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.identical, "{}: results diverged", row.workload);
        }
        // The headline ≥1.8x geomean is asserted on release-built runs
        // (bench_gate via BENCH_e19.json); in a possibly-debug test
        // build we only pin the direction.
        let g = geomean_speedup(&rows);
        assert!(g > 1.0, "vm not faster than staged (geomean {g:.2}x)");
    }
}
