//! **E7 — Guarded free lists of expensive objects.**
//!
//! Section 1: "it may be less time consuming to reuse a freed object if
//! one exists" — e.g. "a set of large objects (such as a set of bit maps
//! representing graphical displays)".
//!
//! Setup: cycles of acquire-use-drop of a large bitmap. With the guarded
//! pool, one bitmap serves every cycle; without, every cycle pays
//! allocation + initialization.

use guardians_gc::{Heap, Value};
use guardians_runtime::GuardedPool;
use guardians_workloads::report::fmt_count;
use guardians_workloads::Table;
use std::time::Instant;

const BITMAP_BYTES: usize = 64 * 1024;

fn factory(heap: &mut Heap) -> Value {
    // An "expensive" object: the initialization (think: rendering a
    // display bitmap) costs far more than the allocation — the shape the
    // paper's free-list motivation assumes. 8 K byte-writes of a computed
    // pattern stand in for the rendering.
    let bm = heap.make_bytevector(BITMAP_BYTES, 0);
    for i in 0..BITMAP_BYTES {
        let b = ((i.wrapping_mul(2654435761)) >> 7) as u8;
        heap.bytevector_set(bm, i, b);
    }
    bm
}

/// Results of the two strategies.
#[derive(Debug, Clone)]
pub struct E7Result {
    pub cycles: usize,
    pub pooled_created: u64,
    pub pooled_recycled: u64,
    pub pooled_ns_per_cycle: f64,
    pub fresh_ns_per_cycle: f64,
    pub fresh_words_copied: u64,
    pub pooled_words_copied: u64,
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, E7Result) {
    let cycles = if quick { 50 } else { 500 };

    // Pooled.
    let mut heap = Heap::default();
    let mut pool = GuardedPool::new(&mut heap, factory);
    let t0 = Instant::now();
    for i in 0..cycles {
        let bm = pool.acquire(&mut heap);
        heap.bytevector_set(bm, i % BITMAP_BYTES, 1); // "use"
        heap.collect(heap.config().max_generation()); // object proven dropped
    }
    let pooled_ns = t0.elapsed().as_nanos() as f64 / cycles as f64;
    let pooled_created = pool.created;
    let pooled_recycled = pool.recycled;
    let pooled_words_copied = heap.stats().total_words_copied;

    // Fresh allocation each cycle.
    let mut heap = Heap::default();
    let t0 = Instant::now();
    for i in 0..cycles {
        let bm = factory(&mut heap);
        heap.bytevector_set(bm, i % BITMAP_BYTES, 1);
        heap.collect(heap.config().max_generation());
    }
    let fresh_ns = t0.elapsed().as_nanos() as f64 / cycles as f64;
    let fresh_words_copied = heap.stats().total_words_copied;

    let result = E7Result {
        cycles,
        pooled_created,
        pooled_recycled,
        pooled_ns_per_cycle: pooled_ns,
        fresh_ns_per_cycle: fresh_ns,
        fresh_words_copied,
        pooled_words_copied,
    };
    let mut table = Table::new(
        "E7: guarded free list vs fresh allocation (64 KB bitmaps)",
        &[
            "strategy",
            "objects created",
            "recycled",
            "ns/cycle",
            "GC words copied",
        ],
    );
    table.row(&[
        "guarded pool".into(),
        fmt_count(pooled_created),
        fmt_count(pooled_recycled),
        format!("{pooled_ns:.0}"),
        fmt_count(pooled_words_copied),
    ]);
    table.row(&[
        "fresh each cycle".into(),
        fmt_count(cycles as u64),
        "0".into(),
        format!("{fresh_ns:.0}"),
        fmt_count(fresh_words_copied),
    ]);
    table.note("paper: automatic return to the free list avoids rebuild cost; one object serves all cycles");
    (table, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_one_object_across_all_cycles() {
        let (_t, r) = run(true);
        assert_eq!(r.pooled_created, 1);
        // Every acquire after the first found the previous cycle's bitmap
        // waiting in the guardian.
        assert_eq!(r.pooled_recycled as usize, r.cycles - 1);
        // The trade the paper describes: the pool pays GC copying (the
        // resurrected bitmap moves) to skip the expensive initialization,
        // and wins on wall clock when init dominates.
        assert!(
            r.pooled_ns_per_cycle < r.fresh_ns_per_cycle,
            "pooled {:.0} ns vs fresh {:.0} ns",
            r.pooled_ns_per_cycle,
            r.fresh_ns_per_cycle
        );
    }
}
