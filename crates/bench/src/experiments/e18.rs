//! **E18 — Bounded-pause incremental collection.**
//!
//! The incremental engine slices each collection's copy/scan work into
//! pause-budgeted increments interleaved with the mutator, deferring the
//! guardian three-block pass and the weak break to an unbounded terminal
//! increment (so observables stay byte-identical to stop-the-world; the
//! torture budget matrix checks that). This experiment measures what the
//! slicing *buys* and what it *costs* on the E11 lifetime workload:
//!
//! * **buys**: pause percentiles. Each increment is one pause sample in
//!   the `gc.pause_ns` histogram, so a finer budget pushes p50/p99 down
//!   toward the budget (plus the per-increment floor: root re-forwarding
//!   and at least one indivisible work unit).
//! * **costs**: mutator throughput (allocations per wall-second dips as
//!   barrier work and increment scheduling overhead accumulate) and
//!   floating garbage (objects that die mid-cycle after being copied
//!   stay live until the next cycle, visible as extra words copied and
//!   retained heap capacity).
//!
//! The bench gate pins this table's p50/p99 columns (lower is better) —
//! the latency counterpart to E11's throughput gating.

use guardians_gc::{GcConfig, Heap, Promotion};
use guardians_workloads::report::fmt_count;
use guardians_workloads::{run_lifetime_workload, LifetimeParams, Table};
use std::time::Duration;

/// One budget's outcome.
#[derive(Debug, Clone)]
pub struct E18Row {
    pub label: &'static str,
    /// `None` is the serial stop-the-world engine.
    pub budget: Option<Duration>,
    pub collections: u64,
    /// Total increments across those collections (0 for serial).
    pub increments: u64,
    /// Pause percentiles in nanoseconds `[p50, p99]` from the
    /// `gc.pause_ns` histogram — per-increment samples when budgeted,
    /// per-collection when serial.
    pub pause_quantiles_ns: [u64; 2],
    pub max_pause_ns: u64,
    pub words_copied: u64,
    /// Mutator throughput: workload allocations per wall-clock second.
    pub allocs_per_sec: f64,
    /// Heap capacity at the end of the run (after draining any in-flight
    /// cycle): retained floating garbage shows up here.
    pub final_capacity_bytes: usize,
}

fn measure(label: &'static str, budget: Option<Duration>, allocations: usize) -> E18Row {
    // The paper-policy configuration from E11's table, plus the budget.
    // The trigger is 4x E11's so each collection copies enough for the
    // budgets to actually slice it — bounded pauses only matter when the
    // stop-the-world pause would exceed the budget.
    let config = GcConfig {
        generations: 4,
        promotion: Promotion::NextGeneration,
        trigger_bytes: 512 * 1024,
        frequency: (0..4).map(|i| 4u64.pow(i)).collect(),
        pause_budget: budget,
        ..GcConfig::new()
    };
    let mut heap = Heap::new(config);
    // The lifetime workload with a larger survivor window and payload
    // than E11's defaults: enough live data per collection that a
    // stop-the-world pause visibly exceeds the budgets under test.
    let params = LifetimeParams {
        allocations,
        window: 2048,
        list_len: 8,
        ..LifetimeParams::default()
    };
    let start = std::time::Instant::now();
    run_lifetime_workload(&mut heap, &params);
    let wall = start.elapsed();
    // Drain any collection left suspended mid-cycle so every row's final
    // heap is comparable (and fully verifiable).
    while heap.incremental_in_progress() {
        heap.gc_step();
    }
    heap.verify().expect("heap valid after workload");
    let pause_quantiles_ns = {
        let h = heap
            .metrics()
            .get_histogram("gc.pause_ns")
            .expect("collections happened, so the pause histogram exists");
        [0.50, 0.99].map(|q| h.quantile(q).unwrap_or(0))
    };
    let max_pause_ns = heap
        .metrics()
        .get_histogram("gc.pause_ns")
        .and_then(guardians_gc::Histogram::max)
        .unwrap_or(0);
    E18Row {
        label,
        budget,
        collections: heap.stats().collections,
        increments: heap.metrics().counter("gc.increments"),
        pause_quantiles_ns,
        max_pause_ns,
        words_copied: heap.stats().total_words_copied,
        allocs_per_sec: allocations as f64 / wall.as_secs_f64().max(1e-9),
        final_capacity_bytes: heap.capacity_bytes(),
    }
}

/// Formats nanoseconds as microseconds, clamped positive so the bench
/// gate's geometric mean stays defined even for sub-microsecond pauses.
fn us(ns: u64) -> String {
    format!("{:.1}", (ns as f64 / 1e3).max(0.1))
}

/// Runs the experiment. In the full (non-quick) configuration this also
/// asserts the headline claim: the finest budget's p99 pause sits at
/// least 5x below the serial stop-the-world p99.
pub fn run(quick: bool) -> (Table, Vec<E18Row>) {
    let allocations = if quick { 100_000 } else { 400_000 };
    let mut table = Table::new(
        "E18: bounded-pause incremental collection on the lifetime workload",
        &[
            "pause budget",
            "collections",
            "increments",
            "pause p50 (us)",
            "pause p99 (us)",
            "max pause (us)",
            "words copied",
            "allocs/ms",
            "heap KiB",
        ],
    );
    let configs: [(&'static str, Option<Duration>); 5] = [
        ("serial (stop-the-world)", None),
        ("2 ms", Some(Duration::from_millis(2))),
        ("500 us", Some(Duration::from_micros(500))),
        ("100 us", Some(Duration::from_micros(100))),
        ("50 us", Some(Duration::from_micros(50))),
    ];
    let mut rows = Vec::new();
    for (label, budget) in configs {
        let row = measure(label, budget, allocations);
        table.row(&[
            label.to_string(),
            fmt_count(row.collections),
            fmt_count(row.increments),
            us(row.pause_quantiles_ns[0]),
            us(row.pause_quantiles_ns[1]),
            us(row.max_pause_ns),
            fmt_count(row.words_copied),
            format!("{:.0}", row.allocs_per_sec / 1e3),
            format!("{}", row.final_capacity_bytes / 1024),
        ]);
        rows.push(row);
    }
    table.note(super::env_note(1, None));
    table.note("pause budget varies by row (the 'pause budget' column); budgeted rows sample gc.pause_ns per increment, the serial row per collection");
    table.note("costs of slicing: allocs/ms (mutator throughput tax from barrier + increment overhead); words copied / heap KiB (floating garbage: objects dying mid-cycle were already copied and stay retained until the next cycle)");
    let serial = &rows[0];
    let finest = rows.last().expect("rows populated");
    table.note(format!(
        "headline: finest budget p99 {} us vs serial p99 {} us ({}x lower; gated >=5x in the full configuration)",
        us(finest.pause_quantiles_ns[1]),
        us(serial.pause_quantiles_ns[1]),
        if finest.pause_quantiles_ns[1] > 0 {
            serial.pause_quantiles_ns[1] / finest.pause_quantiles_ns[1].max(1)
        } else {
            0
        },
    ));
    if !quick {
        assert!(
            finest.pause_quantiles_ns[1].max(1) * 5 <= serial.pause_quantiles_ns[1],
            "finest-budget p99 ({} ns) not >=5x below serial p99 ({} ns)",
            finest.pause_quantiles_ns[1],
            serial.pause_quantiles_ns[1]
        );
    }
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_slice_collections_and_shrink_the_p99() {
        let (_t, rows) = run(true);
        assert_eq!(rows.len(), 5, "serial plus four budgets");
        let serial = &rows[0];
        assert_eq!(serial.increments, 0, "serial engine never increments");
        assert!(serial.collections > 0, "the trigger fired");
        for row in &rows[1..] {
            // A collection that fits inside the budget is one increment,
            // so coarse budgets may not slice at all — but every
            // collection is at least one increment.
            assert!(
                row.increments >= row.collections,
                "{}: {} increments for {} collections",
                row.label,
                row.increments,
                row.collections
            );
        }
        // The finest budget genuinely slices: more increments than
        // collections, and more than the coarsest budget produced.
        let finest = rows.last().unwrap();
        assert!(
            finest.increments > finest.collections,
            "50 us budget slices collections ({} increments, {} collections)",
            finest.increments,
            finest.collections
        );
        assert!(
            finest.increments > rows[1].increments,
            "50 us budget slices finer than 2 ms ({} vs {})",
            finest.increments,
            rows[1].increments
        );
        // …and a lower tail than stop-the-world, even on the quick
        // configuration (the full run asserts the 5x headline).
        assert!(
            finest.pause_quantiles_ns[1] < serial.pause_quantiles_ns[1],
            "finest p99 {} ns vs serial p99 {} ns",
            finest.pause_quantiles_ns[1],
            serial.pause_quantiles_ns[1]
        );
    }

    #[test]
    fn every_cell_is_gate_parsable() {
        let (t, _rows) = run(true);
        // The gate strips thousands separators and requires positive
        // numbers in the gated columns.
        let headers = t.headers();
        for col in ["pause p50 (us)", "pause p99 (us)"] {
            let i = headers
                .iter()
                .position(|h| h == col)
                .unwrap_or_else(|| panic!("column {col:?} present"));
            for row in t.rows() {
                let v: f64 = row[i].replace(',', "").parse().expect("numeric cell");
                assert!(v > 0.0, "{col}: non-positive cell {}", row[i]);
            }
        }
    }
}
