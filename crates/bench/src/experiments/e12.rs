//! **E12 — The Section 5 agent generalisation.**
//!
//! "Rather than returning the object when it becomes inaccessible, the
//! guardian returns the agent. … The primary benefit of this change is
//! that it allows objects to be discarded if something less than the
//! object is needed to perform the finalization."
//!
//! Setup: large objects (64 KB bitmaps) carrying a small clean-up token.
//! With the classic interface the whole object is resurrected and copied
//! just to learn its token; with an agent, only the token survives.

use guardians_gc::{Heap, Value};
use guardians_workloads::report::fmt_count;
use guardians_workloads::Table;

const OBJECT_BYTES: usize = 64 * 1024;

/// One mode's outcome.
#[derive(Debug, Clone)]
pub struct E12Row {
    pub mode: &'static str,
    pub objects: usize,
    pub delivered: u64,
    pub resurrection_words_copied: u64,
}

fn measure(objects: usize, use_agent: bool) -> E12Row {
    let mut heap = Heap::default();
    let g = heap.make_guardian();
    for i in 0..objects {
        let big = heap.make_bytevector(OBJECT_BYTES, 0);
        let token = Value::fixnum(i as i64);
        if use_agent {
            g.register_with_agent(&mut heap, big, token);
        } else {
            g.register(&mut heap, big);
        }
    }
    // All objects are unreferenced: one collection finalizes everything.
    let before = heap.stats().total_words_copied;
    heap.collect(heap.config().max_generation());
    let copied = heap.stats().total_words_copied - before;
    let mut delivered = 0;
    while g.poll(&mut heap).is_some() {
        delivered += 1;
    }
    E12Row {
        mode: if use_agent {
            "agent (Section 5)"
        } else {
            "object (classic)"
        },
        objects,
        delivered,
        resurrection_words_copied: copied,
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, Vec<E12Row>) {
    let objects = if quick { 20 } else { 200 };
    let rows = vec![measure(objects, false), measure(objects, true)];
    let mut table = Table::new(
        "E12: classic vs agent registration for 64 KB objects",
        &[
            "mode",
            "objects",
            "delivered",
            "words copied at finalization",
        ],
    );
    for r in &rows {
        table.row(&[
            r.mode.to_string(),
            fmt_count(r.objects as u64),
            fmt_count(r.delivered),
            fmt_count(r.resurrection_words_copied),
        ]);
    }
    table.note("agents let the collector discard the object and save only the token: the copy column collapses");
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agents_avoid_resurrecting_large_objects() {
        let (_t, rows) = run(true);
        let classic = &rows[0];
        let agent = &rows[1];
        assert_eq!(classic.delivered, classic.objects as u64);
        assert_eq!(agent.delivered, agent.objects as u64);
        assert!(
            agent.resurrection_words_copied < classic.resurrection_words_copied / 10,
            "agent copies {} vs classic {}",
            agent.resurrection_words_copied,
            classic.resurrection_words_copied
        );
    }
}
