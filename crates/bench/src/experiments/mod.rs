//! The experiment suite: one module per entry of DESIGN.md's
//! per-experiment index. Each `run(quick)` returns a rendered
//! [`Table`](guardians_workloads::Table) plus structured rows; the
//! module's unit test asserts the paper's claimed *shape* on the quick
//! configuration, so `cargo test` re-checks every claim.

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e14;
pub mod e17;
pub mod e18;
pub mod e19;
pub mod e2;
pub mod e20;
pub mod e21;
pub mod e22;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;

/// Runs every experiment, returning the rendered tables in order.
pub fn run_all(quick: bool) -> Vec<guardians_workloads::Table> {
    vec![
        e1::run(quick).0,
        e2::run(quick).0,
        e3::run(quick).0,
        e4::run(quick).0,
        e5::run(quick).0,
        e6::run(quick).0,
        e7::run(quick).0,
        e8::run(quick).0,
        e9::run(quick).0,
        e10::run(quick).0,
        e11::run(quick).0,
        e12::run(quick).0,
        e14::run(quick).0,
        e17::run(quick).0,
        e18::run(quick).0,
        e19::run(quick).0,
        e20::run(quick).0,
        e21::run(quick).0,
        e22::run(quick).0,
    ]
}

/// The uniform environment footnote the measured tables carry (E11, E14,
/// E17, E18): host parallelism plus the active collector-engine settings,
/// so a table read in isolation — or consumed from `experiments --json` —
/// records the conditions it was measured under. `workers`/`pause_budget`
/// are the [`guardians_gc::GcConfig`] fields the run used as its
/// *baseline*; experiments that vary one of them per row or per column
/// say so in a follow-up note.
pub fn env_note(workers: usize, pause_budget: Option<std::time::Duration>) -> String {
    let budget = match pause_budget {
        None => "none (stop-the-world)".to_string(),
        Some(d) => format!("{} us", d.as_micros()),
    };
    format!(
        "environment: {} hardware threads (available_parallelism); GcConfig: {} collector worker{}, pause budget {}",
        std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get),
        workers,
        if workers == 1 { "" } else { "s" },
        budget
    )
}

/// A policy footnote: the policy-relevant [`guardians_gc::GcConfig`]
/// knobs as JSON, with the *effective* frequency ladder materialized
/// (missing entries filled by the 4× rule) — so a table measured under a
/// retuned or non-default ladder records exactly the schedule that ran.
pub fn config_note(cfg: &guardians_gc::GcConfig) -> String {
    format!("policy: {}", cfg.to_json())
}
