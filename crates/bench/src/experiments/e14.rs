//! **E14 — Staged vs naive Scheme evaluation throughput.**
//!
//! The paper's measurements run *Scheme programs* on the collector, so
//! interpreter speed bounds how much guardian/collector behaviour an
//! experiment can exercise per second. The staged evaluator analyzes
//! each form once into an opcode tree (lexical addressing, vector-backed
//! frames, global inline caches) while keeping every program value on
//! the collected heap and collecting at exactly the naive evaluator's
//! safe points. This experiment times both modes on the same workloads
//! and checks the printed results are byte-identical — the speedup must
//! come from evaluation mechanics, never from semantics.

use guardians_scheme::{Interp, InterpConfig};
use guardians_workloads::Table;
use std::time::Instant;

/// One workload's outcome under both evaluator modes.
#[derive(Debug, Clone)]
pub struct E14Row {
    pub workload: &'static str,
    pub iters: usize,
    pub naive_ns_per_eval: f64,
    pub staged_ns_per_eval: f64,
    /// naive time / staged time.
    pub speedup: f64,
    /// Both modes printed the same result.
    pub identical: bool,
}

pub(super) struct Workload {
    pub(super) name: &'static str,
    /// Definitions evaluated once per interpreter (untimed).
    pub(super) setup: &'static str,
    /// The expression evaluated `iters` times (timed).
    pub(super) driver: &'static str,
}

pub(super) fn workloads(quick: bool) -> Vec<(Workload, usize)> {
    let scale = if quick { 1 } else { 4 };
    vec![
        (
            Workload {
                name: "fib (non-tail recursion)",
                setup: "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
                driver: "(fib 15)",
            },
            8 * scale,
        ),
        (
            Workload {
                name: "list churn (allocation + HOFs)",
                setup: "(define (iota n) \
                          (let lp ((i 0) (acc '())) \
                            (if (= i n) (reverse acc) (lp (+ i 1) (cons i acc))))) \
                        (define (filter p l) \
                          (cond ((null? l) '()) \
                                ((p (car l)) (cons (car l) (filter p (cdr l)))) \
                                (else (filter p (cdr l))))) \
                        (define (churn n) \
                          (length (map (lambda (x) (* x x)) \
                                       (filter odd? (iota n)))))",
                driver: "(churn 250)",
            },
            20 * scale,
        ),
        (
            Workload {
                name: "tail loop (lexical addressing)",
                setup: "(define (tri n) \
                          (do ((i 0 (+ i 1)) (s 0 (+ s i))) ((= i n) s)))",
                driver: "(tri 20000)",
            },
            10 * scale,
        ),
        (
            Workload {
                name: "guardian churn (collects at safe points)",
                setup: "(define (gchurn n) \
                          (let ((g (make-guardian))) \
                            (let lp ((i 0)) \
                              (unless (= i n) (g (cons i i)) (lp (+ i 1)))) \
                            (collect 3) \
                            (let drain ((k 0)) \
                              (if (g) (drain (+ k 1)) k))))",
                driver: "(gchurn 500)",
            },
            6 * scale,
        ),
    ]
}

pub(super) fn time_mode(config: InterpConfig, w: &Workload, iters: usize) -> (f64, String) {
    let mut it = Interp::with_interp_config(config);
    it.eval_str(w.setup).expect("workload setup evaluates");
    // One untimed evaluation to warm inline caches and the code table.
    let mut result = it.eval_to_string(w.driver).expect("workload runs");
    let start = Instant::now();
    for _ in 0..iters {
        result = it.eval_to_string(w.driver).expect("workload runs");
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    (ns, result)
}

/// Re-runs the list-churn workload once under the staged evaluator with
/// the heap's allocation-site profile enabled and summarizes the top
/// sites — the observability layer's answer to "where do the words come
/// from?". Untimed; runs outside the measured loops so the telemetry
/// cannot perturb the table's numbers.
fn churn_site_summary() -> String {
    let (w, _) = workloads(true).swap_remove(1);
    let mut it = Interp::with_interp_config(InterpConfig::staged());
    it.eval_str(w.setup).expect("workload setup evaluates");
    it.heap_mut().enable_site_profile();
    it.eval_to_string(w.driver).expect("workload runs");
    let sites = it.heap_mut().take_site_profile();
    let total: u64 = sites.iter().map(|(_, s)| s.words).sum();
    let parts: Vec<String> = sites
        .iter()
        .take(3)
        .map(|(name, s)| {
            format!(
                "{name} {:.0}%",
                100.0 * s.words as f64 / total.max(1) as f64
            )
        })
        .collect();
    format!("{} of {total} words", parts.join(", "))
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, Vec<E14Row>) {
    let mut table = Table::new(
        "E14: staged vs naive Scheme evaluation throughput",
        &[
            "workload",
            "iters",
            "naive us/eval",
            "staged us/eval",
            "speedup",
            "identical",
        ],
    );
    let mut rows = Vec::new();
    for (w, iters) in workloads(quick) {
        let (naive_ns, naive_result) = time_mode(InterpConfig::naive(), &w, iters);
        let (staged_ns, staged_result) = time_mode(InterpConfig::staged(), &w, iters);
        let row = E14Row {
            workload: w.name,
            iters,
            naive_ns_per_eval: naive_ns,
            staged_ns_per_eval: staged_ns,
            speedup: naive_ns / staged_ns,
            identical: naive_result == staged_result,
        };
        table.row(&[
            w.name.to_string(),
            format!("{}", row.iters),
            format!("{:.0}", row.naive_ns_per_eval / 1e3),
            format!("{:.0}", row.staged_ns_per_eval / 1e3),
            format!("{:.2}x", row.speedup),
            if row.identical { "yes" } else { "NO" }.to_string(),
        ]);
        rows.push(row);
    }
    table.note(super::env_note(1, None));
    table.note("both modes run the same heap configuration and collect at the same safe points (every application); 'identical' checks the printed results match byte for byte");
    table.note("staged = one-time syntax analysis, lexical addressing, frame records, global inline caches; naive = the original cons-walking evaluator (InterpConfig::naive)");
    table.note(format!(
        "staged allocation attribution for the list-churn workload (per-opcode site profile): {}",
        churn_site_summary()
    ));
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_summary_attributes_the_churn_to_application_frames() {
        let s = churn_site_summary();
        // cons/map/filter allocation happens while applying procedures,
        // so the application opcode dominates the attribution.
        assert!(s.starts_with("scheme.app "), "summary: {s}");
    }

    #[test]
    fn staged_matches_naive_and_is_faster() {
        let (_t, rows) = run(true);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.identical, "{}: results diverged", row.workload);
            assert!(
                row.speedup > 1.0,
                "{}: staged ({:.0} ns) not faster than naive ({:.0} ns)",
                row.workload,
                row.staged_ns_per_eval,
                row.naive_ns_per_eval
            );
        }
    }
}
