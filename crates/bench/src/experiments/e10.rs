//! **E10 — Weak-pair semantics and cost.**
//!
//! Section 4's weak-pair pass: break dead cars, forward surviving ones,
//! run after the guardian pass, and touch only (a) weak pairs copied this
//! collection and (b) dirty old weak segments — never clean parked ones.

use guardians_gc::{Heap, Rooted, Value};
use guardians_workloads::report::fmt_count;
use guardians_workloads::Table;

/// Results.
#[derive(Debug, Clone)]
pub struct E10Result {
    pub pairs: usize,
    pub deaths: usize,
    pub broken: u64,
    pub forwarded: u64,
    pub scanned_young_gc: u64,
    pub scanned_parked_young_gc: u64,
    pub salvaged_kept: bool,
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, E10Result) {
    let pairs = if quick { 1_000 } else { 20_000 };
    let deaths = pairs / 4;

    // Break/forward accounting on one collection.
    let mut heap = Heap::default();
    let mut weak_roots = Vec::new();
    let mut keep = Vec::new();
    for i in 0..pairs {
        let obj = heap.cons(Value::fixnum(i as i64), Value::NIL);
        if i >= deaths {
            keep.push(heap.root(obj));
        }
        let w = heap.weak_cons(obj, Value::NIL);
        weak_roots.push(heap.root(w));
    }
    heap.collect(0);
    let report = heap.last_report().unwrap();
    let broken = report.weak_cars_broken;
    let forwarded = report.weak_cars_forwarded;
    let scanned_young_gc = report.weak_pairs_scanned;

    // Parked clean weak pairs cost nothing at young collections.
    heap.collect(1); // everything now in generation 2
    for _ in 0..50 {
        let _ = heap.cons(Value::NIL, Value::NIL);
    }
    heap.collect(0);
    let scanned_parked = heap.last_report().unwrap().weak_pairs_scanned;

    // Guardian-salvage interaction.
    let mut heap2 = Heap::default();
    let g = heap2.make_guardian();
    let obj = heap2.cons(Value::fixnum(7), Value::NIL);
    let w = heap2.weak_cons(obj, Value::NIL);
    let wr: Rooted = heap2.root(w);
    g.register(&mut heap2, obj);
    heap2.collect(heap2.config().max_generation());
    let saved = g.poll(&mut heap2).expect("salvaged");
    let salvaged_kept = heap2.car(wr.get()) == saved;

    let result = E10Result {
        pairs,
        deaths,
        broken,
        forwarded,
        scanned_young_gc,
        scanned_parked_young_gc: scanned_parked,
        salvaged_kept,
    };
    let mut table = Table::new(
        "E10: weak pairs — breaks, forwards, and scan scope",
        &["metric", "value"],
    );
    table.row(&["weak pairs".into(), fmt_count(pairs as u64)]);
    table.row(&["referents dropped".into(), fmt_count(deaths as u64)]);
    table.row(&["cars broken (collection 1)".into(), fmt_count(broken)]);
    table.row(&["cars forwarded (collection 1)".into(), fmt_count(forwarded)]);
    table.row(&[
        "weak pairs scanned (collection 1)".into(),
        fmt_count(scanned_young_gc),
    ]);
    table.row(&[
        "scanned at young GC once parked".into(),
        fmt_count(result.scanned_parked_young_gc),
    ]);
    table.row(&[
        "salvaged object kept in weak car".into(),
        result.salvaged_kept.to_string(),
    ]);
    table.note("paper: #f replaces dead cars; the pass runs after the guardian pass so salvaged objects keep their weak pointers; clean old weak segments are never visited");
    (table, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_shape_holds() {
        let (_t, r) = run(true);
        assert_eq!(r.broken, r.deaths as u64);
        assert_eq!(r.forwarded, (r.pairs - r.deaths) as u64);
        assert_eq!(
            r.scanned_parked_young_gc, 0,
            "clean parked weak pairs are free"
        );
        assert!(r.salvaged_kept, "the paper's ordering requirement");
    }
}
