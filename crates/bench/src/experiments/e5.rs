//! **E5 — Guarded ports: resource safety and per-character cost.**
//!
//! Two claims:
//!
//! 1. Section 1: unclosed dropped ports "tie up system resources and may
//!    result in data associated with output ports remaining unwritten".
//!    We churn ports under a small descriptor limit and count failures,
//!    leaks, and lost bytes for (a) no clean-up, (b) guarded ports, and
//!    (c) the indirection-header workaround.
//! 2. Section 2: the indirection workaround "significantly increases the
//!    cost of reading or writing a character, since these operations
//!    otherwise involve only two or three memory references". We measure
//!    ns/char direct vs. through a forwarding header.

use guardians_baselines::IndirectPorts;
use guardians_gc::Heap;
use guardians_runtime::{ports, GuardedPorts, SimOs};
use guardians_workloads::report::fmt_count;
use guardians_workloads::Table;
use std::time::Instant;

/// Outcome of the resource-churn scenario.
#[derive(Debug, Clone)]
pub struct E5Churn {
    pub mechanism: &'static str,
    pub failed_opens: u64,
    pub leaked_fds: usize,
    pub lost_bytes: u64,
    pub cleanup_entries_touched: u64,
}

const CHURN_PORTS: usize = 200;
const FD_LIMIT: usize = 16;
const PAYLOAD: &[u8] = b"twelve bytes";

fn churn_unguarded() -> E5Churn {
    let mut heap = Heap::default();
    let mut os = SimOs::with_fd_limit(FD_LIMIT);
    let mut failed = 0;
    let mut written = 0u64;
    for i in 0..CHURN_PORTS {
        match ports::open_output_port(&mut heap, &mut os, &format!("/f{i}")) {
            Ok(p) => {
                ports::write_string(&mut heap, &mut os, p, "twelve bytes").unwrap();
                written += PAYLOAD.len() as u64;
                // dropped without close
            }
            Err(_) => failed += 1,
        }
        if i % 20 == 0 {
            heap.collect(heap.config().max_generation());
        }
    }
    let durable: u64 = (0..CHURN_PORTS)
        .filter_map(|i| {
            os.file_contents(&format!("/f{i}"))
                .ok()
                .map(|b| b.len() as u64)
        })
        .sum();
    E5Churn {
        mechanism: "unguarded",
        failed_opens: failed,
        leaked_fds: os.open_count(),
        lost_bytes: written - durable,
        cleanup_entries_touched: 0,
    }
}

fn churn_guarded() -> E5Churn {
    let mut heap = Heap::default();
    let mut os = SimOs::with_fd_limit(FD_LIMIT);
    let mut gp = GuardedPorts::new(&mut heap);
    let mut failed = 0;
    let mut written = 0u64;
    for i in 0..CHURN_PORTS {
        if os.open_count() >= FD_LIMIT - 2 {
            heap.collect(heap.config().max_generation());
        }
        match gp.open_output(&mut heap, &mut os, &format!("/f{i}")) {
            Ok(p) => {
                ports::write_string(&mut heap, &mut os, p, "twelve bytes").unwrap();
                written += PAYLOAD.len() as u64;
            }
            Err(_) => failed += 1,
        }
    }
    gp.exit(&mut heap, &mut os).unwrap();
    let durable: u64 = (0..CHURN_PORTS)
        .filter_map(|i| {
            os.file_contents(&format!("/f{i}"))
                .ok()
                .map(|b| b.len() as u64)
        })
        .sum();
    E5Churn {
        mechanism: "guarded (paper)",
        failed_opens: failed,
        leaked_fds: os.open_count(),
        lost_bytes: written - durable,
        cleanup_entries_touched: gp.dropped_closed,
    }
}

fn churn_indirect() -> E5Churn {
    let mut heap = Heap::default();
    let mut os = SimOs::with_fd_limit(FD_LIMIT);
    let mut ip = IndirectPorts::new(&mut heap);
    let mut failed = 0;
    let mut written = 0u64;
    for i in 0..CHURN_PORTS {
        if os.open_count() >= FD_LIMIT - 2 {
            heap.collect(heap.config().max_generation());
            ip.scan_and_close(&mut heap, &mut os).unwrap();
        }
        match ip.open_output(&mut heap, &mut os, &format!("/f{i}")) {
            Ok(h) => {
                for b in PAYLOAD {
                    ip.write_byte(&mut heap, &mut os, h, *b).unwrap();
                }
                written += PAYLOAD.len() as u64;
            }
            Err(_) => failed += 1,
        }
    }
    heap.collect(heap.config().max_generation());
    ip.scan_and_close(&mut heap, &mut os).unwrap();
    let durable: u64 = (0..CHURN_PORTS)
        .filter_map(|i| {
            os.file_contents(&format!("/f{i}"))
                .ok()
                .map(|b| b.len() as u64)
        })
        .sum();
    E5Churn {
        mechanism: "indirection (Atkins)",
        failed_opens: failed,
        leaked_fds: os.open_count(),
        lost_bytes: written - durable,
        cleanup_entries_touched: ip.entries_scanned,
    }
}

/// Per-character cost: (direct ns/char, indirect ns/char). The input file
/// is sized to the requested character count so EOF never cuts the
/// measurement short.
pub fn char_cost(chars: usize) -> (f64, f64) {
    let mut heap = Heap::default();
    let mut os = SimOs::new();
    let data: Vec<u8> = (0..chars as u32).map(|i| (i % 251) as u8).collect();
    os.create_file("/in", &data);

    let direct = ports::open_input_port(&mut heap, &mut os, "/in").unwrap();
    let t0 = Instant::now();
    let mut sum = 0u64;
    let mut read = 0usize;
    while let Some(b) = ports::read_byte(&mut heap, &mut os, direct).unwrap() {
        sum += b as u64;
        read += 1;
    }
    let direct_ns = t0.elapsed().as_nanos() as f64 / read.max(1) as f64;
    std::hint::black_box(sum);

    let mut ip = IndirectPorts::new(&mut heap);
    let header = ip.open_input(&mut heap, &mut os, "/in").unwrap();
    let t0 = Instant::now();
    let mut sum = 0u64;
    let mut read = 0usize;
    while let Some(b) = ip.read_byte(&mut heap, &mut os, header).unwrap() {
        sum += b as u64;
        read += 1;
    }
    let indirect_ns = t0.elapsed().as_nanos() as f64 / read.max(1) as f64;
    std::hint::black_box(sum);
    (direct_ns, indirect_ns)
}

/// Runs the experiment.
pub fn run(quick: bool) -> (Table, Vec<E5Churn>) {
    let rows = vec![churn_unguarded(), churn_guarded(), churn_indirect()];
    let mut table = Table::new(
        "E5: port finalization — 200 ports churned under a 16-descriptor limit",
        &[
            "mechanism",
            "failed opens",
            "leaked fds",
            "lost bytes",
            "cleanup touched",
        ],
    );
    for r in &rows {
        table.row(&[
            r.mechanism.to_string(),
            fmt_count(r.failed_opens),
            fmt_count(r.leaked_fds as u64),
            fmt_count(r.lost_bytes),
            fmt_count(r.cleanup_entries_touched),
        ]);
    }
    let chars = if quick { 2_000 } else { 200_000 };
    let (direct_ns, indirect_ns) = char_cost(chars);
    table.note(format!(
        "per-char read: direct {direct_ns:.0} ns vs through forwarding header {indirect_ns:.0} ns ({:.2}x)",
        indirect_ns / direct_ns.max(0.001)
    ));
    table.note("paper: guardians prevent descriptor exhaustion and data loss; indirection works but pays per character and per scan");
    (table, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_shape_holds() {
        let (_t, rows) = run(true);
        let unguarded = &rows[0];
        let guarded = &rows[1];
        let indirect = &rows[2];
        assert!(
            unguarded.failed_opens > 0,
            "descriptor exhaustion without clean-up"
        );
        assert!(
            unguarded.lost_bytes > 0,
            "buffered data lost without clean-up"
        );
        assert_eq!(guarded.failed_opens, 0);
        assert_eq!(guarded.leaked_fds, 0);
        assert_eq!(guarded.lost_bytes, 0);
        assert_eq!(indirect.failed_opens, 0, "the workaround also works...");
        assert!(
            indirect.cleanup_entries_touched >= guarded.cleanup_entries_touched,
            "...but scans at least as many entries"
        );
    }
}
