//! Benchmark and experiment harness for the guardians reproduction.
//!
//! The paper (PLDI 1993) has no numeric tables; its evaluation is four
//! figures and a set of complexity claims. This crate regenerates all of
//! them:
//!
//! * [`experiments`] — E1..E12, one per entry in DESIGN.md's experiment
//!   index. Each returns a printable table of deterministic work counters
//!   and carries a unit test asserting the claimed shape.
//! * [`replay`] — churn-script replayer comparing table mechanisms on
//!   identical inputs.
//! * The `experiments` binary (`cargo run -p guardians-bench --bin
//!   experiments [--quick]`) prints every table — the artifact behind
//!   EXPERIMENTS.md.
//! * Criterion benches (`cargo bench`) measure the mutator-visible
//!   operations' wall-clock costs; `e13_copy` tracks the collector's
//!   copy throughput via [`copy_driver`].
//! * [`gate`] + the `bench_gate` binary — CI perf-regression gate
//!   comparing fresh `experiments --json` output against the committed
//!   `BENCH_*.json` baselines.
//! * The `gcprof` binary — runs an experiment or torture trace under the
//!   GC event trace and exports Chrome `trace_event` JSON, JSONL, a
//!   metrics snapshot, and a heap census.

pub mod copy_driver;
pub mod experiments;
pub mod gate;
pub mod replay;
