//! Replays churn scripts against the table implementations under
//! comparison, mapping abstract key ids to rooted heap keys.

use guardians_gc::{Heap, Rooted, Value};
use guardians_runtime::hashtab::content_hash;
use guardians_runtime::{GuardedHashTable, WeakKeyTable};
use guardians_workloads::{KeyGen, TableOp};
use std::collections::HashMap;

/// The mechanisms E1/E4 compare.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TableKind {
    /// Figure 1's guarded hash table.
    Guarded,
    /// Weak-key table, never scrubbed (the leak).
    WeakNoScrub,
    /// Weak-key table with a full scan after every collection.
    WeakFullScan,
}

/// What a replay observed.
#[derive(Clone, Debug, Default)]
pub struct ReplayOutcome {
    /// Entries physically in the table at the end (dead included).
    pub physical_entries: usize,
    /// Live keys at the end.
    pub live_keys: usize,
    /// Clean-up work: entries touched while removing dead associations.
    pub cleanup_entries_touched: u64,
    /// Dead entries actually removed.
    pub removed: u64,
    /// Peak physical entries over the run (the leak metric over time).
    pub peak_physical_entries: usize,
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that missed (a correctness failure for live keys).
    pub misses: u64,
}

/// Replays `script` against a fresh table of the given kind on `heap`.
pub fn replay(
    heap: &mut Heap,
    kind: TableKind,
    buckets: usize,
    script: &[TableOp],
) -> ReplayOutcome {
    let mut keys: HashMap<u64, Rooted> = HashMap::new();
    let mut out = ReplayOutcome::default();
    let mut guarded = match kind {
        TableKind::Guarded => Some(GuardedHashTable::new(heap, buckets, content_hash)),
        _ => None,
    };
    let mut weak = match kind {
        TableKind::Guarded => None,
        _ => Some(WeakKeyTable::new(heap, buckets, content_hash)),
    };

    for op in script {
        match *op {
            TableOp::Insert(id) => {
                let key = heap.make_string(&KeyGen::name(id));
                keys.insert(id, heap.root(key));
                match (&mut guarded, &mut weak) {
                    (Some(t), _) => {
                        t.access(heap, key, Value::fixnum(id as i64));
                    }
                    (_, Some(t)) => {
                        t.access(heap, key, Value::fixnum(id as i64));
                    }
                    _ => unreachable!(),
                }
            }
            TableOp::DropKey(id) => {
                keys.remove(&id);
            }
            TableOp::Lookup(id) => {
                let key = keys[&id].get();
                let found = match (&mut guarded, &mut weak) {
                    (Some(t), _) => t.get(heap, key),
                    (_, Some(t)) => t.get(heap, key),
                    _ => unreachable!(),
                };
                if found == Some(Value::fixnum(id as i64)) {
                    out.hits += 1;
                } else {
                    out.misses += 1;
                }
            }
            TableOp::Collect(g) => {
                heap.collect(g);
                if kind == TableKind::WeakFullScan {
                    if let Some(t) = weak.as_mut() {
                        out.removed += t.scrub_full_scan(heap) as u64;
                    }
                }
            }
        }
        let physical = match (&guarded, &weak) {
            (Some(t), _) => t.len(),
            (_, Some(t)) => t.physical_len(),
            _ => unreachable!(),
        };
        out.peak_physical_entries = out.peak_physical_entries.max(physical);
    }

    match (guarded, weak) {
        (Some(t), _) => {
            out.physical_entries = t.len();
            out.cleanup_entries_touched = t.removals; // guarded: touched == removed
            out.removed = t.removals;
        }
        (_, Some(t)) => {
            out.physical_entries = t.physical_len();
            out.cleanup_entries_touched = t.entries_scanned;
        }
        _ => unreachable!(),
    }
    out.live_keys = keys.len();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use guardians_workloads::{table_script, ChurnParams};

    fn small_params() -> ChurnParams {
        ChurnParams {
            ops: 2_000,
            live_target: 200,
            collect_every: 250,
            collect_generation: 3,
            ..ChurnParams::default()
        }
    }

    #[test]
    fn all_mechanisms_answer_lookups_correctly() {
        let script = table_script(&small_params());
        for kind in [
            TableKind::Guarded,
            TableKind::WeakNoScrub,
            TableKind::WeakFullScan,
        ] {
            let mut heap = Heap::default();
            let out = replay(&mut heap, kind, 64, &script);
            assert_eq!(out.misses, 0, "{kind:?} lost a live key");
            assert!(out.hits > 0);
            heap.verify().unwrap();
        }
    }

    #[test]
    fn guarded_table_tracks_live_keys_but_unscrubbed_weak_table_leaks() {
        let script = table_script(&small_params());
        let mut h1 = Heap::default();
        let guarded = replay(&mut h1, TableKind::Guarded, 64, &script);
        let mut h2 = Heap::default();
        let leaky = replay(&mut h2, TableKind::WeakNoScrub, 64, &script);

        // Scrubbing lags by one collection window, so allow some slack
        // over the live population — but nowhere near the leak.
        assert!(
            guarded.physical_entries < leaky.physical_entries / 2,
            "guarded table stays near the live population: {} vs leak {}",
            guarded.physical_entries,
            leaky.physical_entries
        );
        assert!(
            leaky.physical_entries > guarded.physical_entries * 2,
            "unscrubbed table accumulates garbage: {} vs {}",
            leaky.physical_entries,
            guarded.physical_entries
        );
    }

    #[test]
    fn full_scan_pays_far_more_cleanup_work_than_guarded() {
        let script = table_script(&small_params());
        let mut h1 = Heap::default();
        let guarded = replay(&mut h1, TableKind::Guarded, 64, &script);
        let mut h2 = Heap::default();
        let scanned = replay(&mut h2, TableKind::WeakFullScan, 64, &script);
        assert!(
            scanned.cleanup_entries_touched > guarded.cleanup_entries_touched * 3,
            "full scans touch {} entries vs guarded {}",
            scanned.cleanup_entries_touched,
            guarded.cleanup_entries_touched
        );
    }
}
