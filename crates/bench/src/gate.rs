//! The bench gate: compares a fresh `experiments --json` document against
//! a committed baseline and fails on throughput regressions.
//!
//! Design notes, earned the hard way:
//!
//! * Individual table rows are noisy (±10% run-to-run on the quick
//!   configuration; the guardian-churn e14 row swings 40%), so the gate
//!   compares the **geometric mean of a metric column per table**, which
//!   is stable to a few percent.
//! * The fresh side may supply **several runs**; the gate takes the best
//!   (per metric). The committed baseline is a single run, so best-of-N
//!   against it cancels scheduler noise without hiding real regressions —
//!   a true 20% slowdown shifts the whole distribution.
//! * Only *regressions* fail. Improvements are reported but pass; the
//!   baseline is refreshed by committing a new BENCH_*.json.
//! * Baseline and fresh documents must agree on the `quick` flag: quick
//!   and full runs measure different working-set sizes and their
//!   throughputs are not comparable (quick e11 copy throughput sits ~25%
//!   below full).
//!
//! No serde in the workspace, so this module carries a small recursive-
//! descent JSON parser sufficient for the documents the `experiments`
//! binary emits.

use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------

/// A parsed JSON value (numbers as `f64`, objects in insertion order not
/// preserved — keyed lookups only, which is all the gate needs).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            loop {
                out.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(out));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut out = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                out.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(out));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs never appear in our own output.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 passes through untouched.
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .map_err(|e| e.to_string())?
        .parse::<f64>()
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

// ---------------------------------------------------------------------
// Metric extraction
// ---------------------------------------------------------------------

/// Which way a metric is good.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Bigger numbers are better (throughput).
    HigherIsBetter,
    /// Smaller numbers are better (latency).
    LowerIsBetter,
}

/// One gated metric: a column of a named table, aggregated by geometric
/// mean across rows.
#[derive(Clone, Debug)]
pub struct GateSpec {
    /// Table `name` key in the experiments document (e.g. `"e11"`).
    pub table: &'static str,
    /// Header of the metric column.
    pub column: &'static str,
    /// Which way is good.
    pub direction: Direction,
}

/// The default gate: e11 copy throughput, e14 staged eval latency, e17
/// serial-engine copy throughput, e18 pause latency, and e19 VM eval
/// latency. E17's parallel columns are *not* gated — their values depend
/// on the runner's core count — but the 1-worker column exercises the
/// serial engine through the E17 workload mix and is host-shape
/// independent. E18's p50/p99 columns gate the incremental engine's
/// reason to exist: the per-table geomean spans the serial row and every
/// budget row, so a latency regression in either engine (or a budget
/// that stops slicing) fails. E19's `vm us/eval` column gates the
/// bytecode tier's headline: the committed BENCH_e19.json baseline
/// records the ≥1.8x-over-staged throughput, so a dispatch-loop or
/// inline-cache regression that erodes it fails here. E22's GC-work
/// geomean column is a *deterministic* proxy (words copied + guardian
/// entries visited — no wall clock), so its gate is noise-free: the
/// per-table geomean spans the static sweep and both autotuner rows, and
/// a controller change that worsens any configuration's policy outcome
/// shifts it.
pub fn default_specs() -> Vec<GateSpec> {
    vec![
        GateSpec {
            table: "e11",
            column: "copy Mw/s",
            direction: Direction::HigherIsBetter,
        },
        GateSpec {
            table: "e14",
            column: "staged us/eval",
            direction: Direction::LowerIsBetter,
        },
        GateSpec {
            table: "e17",
            column: "copy Mw/s (1w)",
            direction: Direction::HigherIsBetter,
        },
        GateSpec {
            table: "e18",
            column: "pause p50 (us)",
            direction: Direction::LowerIsBetter,
        },
        GateSpec {
            table: "e18",
            column: "pause p99 (us)",
            direction: Direction::LowerIsBetter,
        },
        GateSpec {
            table: "e19",
            column: "vm us/eval",
            direction: Direction::LowerIsBetter,
        },
        GateSpec {
            table: "e21",
            column: "fleet kreq/s",
            direction: Direction::HigherIsBetter,
        },
        GateSpec {
            table: "e21",
            column: "worst zone p99 (us)",
            direction: Direction::LowerIsBetter,
        },
        GateSpec {
            table: "e22",
            column: "work geomean (kw)",
            direction: Direction::LowerIsBetter,
        },
    ]
}

/// Finds the table with `"name": name` (falling back to a title starting
/// with `"<NAME>:"` for documents that predate table names).
fn find_table<'a>(doc: &'a Json, name: &str) -> Result<&'a Json, String> {
    let tables = doc
        .get("tables")
        .and_then(Json::as_arr)
        .ok_or("document has no \"tables\" array")?;
    let upper = format!("{}:", name.to_uppercase());
    tables
        .iter()
        .find(|t| {
            t.get("name").and_then(Json::as_str) == Some(name)
                || t.get("title")
                    .and_then(Json::as_str)
                    .is_some_and(|s| s.starts_with(&upper))
        })
        .ok_or(format!("table {name:?} not found in document"))
}

/// Merges several experiment documents into one by concatenating their
/// `tables` arrays. The committed baselines live one experiment per file
/// (`BENCH_e11.json`, `BENCH_e14.json`), while `compare` wants a single
/// document covering every gated table. The `quick` flags must agree.
pub fn merge_docs(docs: &[Json]) -> Result<Json, String> {
    let first = docs.first().ok_or("no documents to merge")?;
    let quick = first.get("quick").cloned().unwrap_or(Json::Null);
    let mut tables = Vec::new();
    for (i, d) in docs.iter().enumerate() {
        if d.get("quick").cloned().unwrap_or(Json::Null) != quick {
            return Err(format!(
                "quick-flag mismatch between merged documents 0 and {i}"
            ));
        }
        tables.extend_from_slice(
            d.get("tables")
                .and_then(Json::as_arr)
                .ok_or(format!("merged document {i} has no \"tables\" array"))?,
        );
    }
    let mut obj = BTreeMap::new();
    obj.insert("quick".to_string(), quick);
    obj.insert("tables".to_string(), Json::Arr(tables));
    Ok(Json::Obj(obj))
}

/// Extracts the geometric mean of `spec.column` across the table's rows.
/// Cells are formatted strings, so thousands separators are stripped.
pub fn metric_of(doc: &Json, spec: &GateSpec) -> Result<f64, String> {
    let table = find_table(doc, spec.table)?;
    let headers = table
        .get("headers")
        .and_then(Json::as_arr)
        .ok_or("table has no headers")?;
    let col = headers
        .iter()
        .position(|h| h.as_str() == Some(spec.column))
        .ok_or(format!(
            "column {:?} not found in table {:?}",
            spec.column, spec.table
        ))?;
    let rows = table
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("table has no rows")?;
    if rows.is_empty() {
        return Err(format!("table {:?} has no rows", spec.table));
    }
    let mut log_sum = 0.0;
    for (i, row) in rows.iter().enumerate() {
        let cell = row
            .as_arr()
            .and_then(|r| r.get(col))
            .and_then(Json::as_str)
            .ok_or(format!("table {:?} row {i}: bad cell", spec.table))?;
        let v: f64 = cell
            .replace(',', "")
            .parse()
            .map_err(|e| format!("table {:?} row {i} cell {cell:?}: {e}", spec.table))?;
        if v <= 0.0 {
            return Err(format!(
                "table {:?} row {i}: non-positive metric {v}",
                spec.table
            ));
        }
        log_sum += v.ln();
    }
    Ok((log_sum / rows.len() as f64).exp())
}

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------

/// One metric's verdict.
#[derive(Clone, Debug)]
pub struct GateLine {
    /// `table/column`.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Best fresh value across the supplied runs.
    pub fresh: f64,
    /// Fresh relative to baseline in the *bad* direction: `0.20` means
    /// 20% worse, negative means improved.
    pub regression: f64,
    /// Whether the regression stays within tolerance.
    pub pass: bool,
}

impl std::fmt::Display for GateLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:4} {:<22} baseline {:>10.2}  fresh {:>10.2}  change {:>+6.1}%",
            if self.pass { "ok" } else { "FAIL" },
            self.metric,
            self.baseline,
            self.fresh,
            100.0 * self.regression
        )
    }
}

/// Compares baseline vs N fresh runs over `specs`. `tolerance` is the
/// maximum allowed relative regression (0.15 = fail beyond 15% worse).
///
/// # Errors
///
/// Malformed documents, missing tables/columns, or a `quick`-flag
/// mismatch between baseline and any fresh document.
pub fn compare(
    baseline: &Json,
    fresh_runs: &[Json],
    specs: &[GateSpec],
    tolerance: f64,
) -> Result<Vec<GateLine>, String> {
    if fresh_runs.is_empty() {
        return Err("no fresh runs supplied".to_string());
    }
    let base_quick = baseline.get("quick").and_then(Json::as_bool);
    for (i, f) in fresh_runs.iter().enumerate() {
        let fq = f.get("quick").and_then(Json::as_bool);
        if fq != base_quick {
            return Err(format!(
                "quick-flag mismatch: baseline {base_quick:?}, fresh run {i} {fq:?} — \
                 quick and full measurements are not comparable"
            ));
        }
    }
    let mut out = Vec::new();
    for spec in specs {
        let base = metric_of(baseline, spec)?;
        let mut best: Option<f64> = None;
        for f in fresh_runs {
            let v = metric_of(f, spec)?;
            best = Some(match (best, spec.direction) {
                (None, _) => v,
                (Some(b), Direction::HigherIsBetter) => b.max(v),
                (Some(b), Direction::LowerIsBetter) => b.min(v),
            });
        }
        let fresh = best.expect("at least one fresh run");
        let regression = match spec.direction {
            Direction::HigherIsBetter => (base - fresh) / base,
            Direction::LowerIsBetter => (fresh - base) / base,
        };
        out.push(GateLine {
            metric: format!("{}/{}", spec.table, spec.column),
            baseline: base,
            fresh,
            regression,
            pass: regression <= tolerance,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(quick: bool, mwps: &[f64], us: &[f64]) -> Json {
        let rows = |vals: &[f64]| {
            vals.iter()
                .map(|v| format!("[\"cfg\",\"{v:.1}\"]"))
                .collect::<Vec<_>>()
                .join(",")
        };
        // Two latency columns sharing the same values: the e18 table
        // carries both gated percentiles.
        let wide_rows = |vals: &[f64]| {
            vals.iter()
                .map(|v| format!("[\"cfg\",\"{v:.1}\",\"{v:.1}\"]"))
                .collect::<Vec<_>>()
                .join(",")
        };
        let text = format!(
            "{{\"quick\":{quick},\"tables\":[\
             {{\"name\":\"e11\",\"title\":\"E11: x\",\"headers\":[\"configuration\",\"copy Mw/s\"],\
              \"rows\":[{mw}],\"notes\":[]}},\
             {{\"name\":\"e14\",\"title\":\"E14: y\",\"headers\":[\"workload\",\"staged us/eval\"],\
              \"rows\":[{us}],\"notes\":[]}},\
             {{\"name\":\"e17\",\"title\":\"E17: z\",\"headers\":[\"configuration\",\"copy Mw/s (1w)\"],\
              \"rows\":[{mw}],\"notes\":[]}},\
             {{\"name\":\"e18\",\"title\":\"E18: w\",\"headers\":[\"pause budget\",\
              \"pause p50 (us)\",\"pause p99 (us)\"],\
              \"rows\":[{wus}],\"notes\":[]}},\
             {{\"name\":\"e19\",\"title\":\"E19: v\",\"headers\":[\"workload\",\"vm us/eval\"],\
              \"rows\":[{us}],\"notes\":[]}},\
             {{\"name\":\"e21\",\"title\":\"E21: f\",\"headers\":[\"engine\",\
              \"fleet kreq/s\",\"worst zone p99 (us)\"],\
              \"rows\":[{fleet}],\"notes\":[]}},\
             {{\"name\":\"e22\",\"title\":\"E22: g\",\"headers\":[\"config\",\
              \"work geomean (kw)\"],\
              \"rows\":[{us}],\"notes\":[]}}]}}",
            mw = rows(mwps),
            us = rows(us),
            wus = wide_rows(us),
            fleet = mwps
                .iter()
                .zip(us)
                .map(|(m, u)| format!("[\"cfg\",\"{m:.1}\",\"{u:.1}\"]"))
                .collect::<Vec<_>>()
                .join(",")
        );
        Json::parse(&text).expect("test doc parses")
    }

    #[test]
    fn parser_round_trips_experiment_shapes() {
        let j = Json::parse(r#"{"a":[1,2.5,-3e2],"b":"x\n\"y\"","c":true,"d":null}"#).unwrap();
        assert_eq!(j.get("b").and_then(Json::as_str), Some("x\n\"y\""));
        assert_eq!(
            j.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(j.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("d"), Some(&Json::Null));
        assert!(Json::parse("{\"a\":1} junk").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn thousands_separators_and_geomean() {
        let j = Json::parse(
            "{\"quick\":true,\"tables\":[{\"name\":\"e11\",\"headers\":[\"k\",\"copy Mw/s\"],\
             \"rows\":[[\"a\",\"1,000\"],[\"b\",\"10\"]],\"notes\":[]}]}",
        )
        .unwrap();
        let spec = &default_specs()[0];
        let m = metric_of(&j, spec).unwrap();
        assert!(
            (m - 100.0).abs() < 1e-9,
            "geomean of 1000 and 10 is 100, got {m}"
        );
    }

    #[test]
    fn identical_runs_pass() {
        let base = doc(true, &[60.0, 61.0], &[900.0, 400.0]);
        let lines = compare(&base, std::slice::from_ref(&base), &default_specs(), 0.15).unwrap();
        assert!(lines.iter().all(|l| l.pass), "{lines:?}");
        assert!(lines.iter().all(|l| l.regression.abs() < 1e-9));
    }

    #[test]
    fn injected_20_percent_regression_fails_at_15_tolerance() {
        let base = doc(true, &[60.0, 61.0], &[900.0, 400.0]);
        // Throughput down 20%, latency up 20%.
        let slow = doc(true, &[48.0, 48.8], &[1080.0, 480.0]);
        let lines = compare(&base, &[slow], &default_specs(), 0.15).unwrap();
        assert!(lines.iter().all(|l| !l.pass), "{lines:?}");
        assert!(lines.iter().all(|l| (l.regression - 0.20).abs() < 1e-6));
    }

    #[test]
    fn improvements_and_small_noise_pass() {
        let base = doc(true, &[60.0, 61.0], &[900.0, 400.0]);
        let faster = doc(true, &[80.0, 80.0], &[500.0, 300.0]);
        let noisy = doc(true, &[55.0, 56.5], &[960.0, 430.0]); // ~8% worse
        for fresh in [faster, noisy] {
            let lines = compare(&base, &[fresh], &default_specs(), 0.15).unwrap();
            assert!(lines.iter().all(|l| l.pass), "{lines:?}");
        }
    }

    #[test]
    fn best_of_n_takes_the_best_fresh_run() {
        let base = doc(true, &[60.0, 60.0], &[900.0, 400.0]);
        let bad = doc(true, &[40.0, 40.0], &[2000.0, 900.0]);
        let good = doc(true, &[59.0, 59.0], &[910.0, 405.0]);
        let lines = compare(&base, &[bad, good], &default_specs(), 0.15).unwrap();
        assert!(
            lines.iter().all(|l| l.pass),
            "best-of-2 must pass: {lines:?}"
        );
    }

    #[test]
    fn merged_single_table_baselines_gate_like_one_document() {
        // Split the baseline the way the committed files are: one table
        // per document.
        let both = doc(true, &[60.0], &[900.0]);
        let e11_only = Json::parse(
            "{\"quick\":true,\"tables\":[{\"name\":\"e11\",\"headers\":[\"k\",\"copy Mw/s\"],\
             \"rows\":[[\"a\",\"60.0\"]],\"notes\":[]}]}",
        )
        .unwrap();
        let e14_only = Json::parse(
            "{\"quick\":true,\"tables\":[{\"name\":\"e14\",\"headers\":[\"k\",\"staged us/eval\"],\
             \"rows\":[[\"a\",\"900.0\"]],\"notes\":[]}]}",
        )
        .unwrap();
        let e17_only = Json::parse(
            "{\"quick\":true,\"tables\":[{\"name\":\"e17\",\"headers\":[\"k\",\"copy Mw/s (1w)\"],\
             \"rows\":[[\"a\",\"60.0\"]],\"notes\":[]}]}",
        )
        .unwrap();
        let e18_only = Json::parse(
            "{\"quick\":true,\"tables\":[{\"name\":\"e18\",\
             \"headers\":[\"k\",\"pause p50 (us)\",\"pause p99 (us)\"],\
             \"rows\":[[\"a\",\"900.0\",\"900.0\"]],\"notes\":[]}]}",
        )
        .unwrap();
        let e19_only = Json::parse(
            "{\"quick\":true,\"tables\":[{\"name\":\"e19\",\"headers\":[\"k\",\"vm us/eval\"],\
             \"rows\":[[\"a\",\"900.0\"]],\"notes\":[]}]}",
        )
        .unwrap();
        let e21_only = Json::parse(
            "{\"quick\":true,\"tables\":[{\"name\":\"e21\",\
             \"headers\":[\"k\",\"fleet kreq/s\",\"worst zone p99 (us)\"],\
             \"rows\":[[\"a\",\"60.0\",\"900.0\"]],\"notes\":[]}]}",
        )
        .unwrap();
        let e22_only = Json::parse(
            "{\"quick\":true,\"tables\":[{\"name\":\"e22\",\
             \"headers\":[\"k\",\"work geomean (kw)\"],\
             \"rows\":[[\"a\",\"900.0\"]],\"notes\":[]}]}",
        )
        .unwrap();
        let merged = merge_docs(&[
            e11_only,
            e14_only.clone(),
            e17_only,
            e18_only,
            e19_only,
            e21_only,
            e22_only,
        ])
        .unwrap();
        let lines = compare(&merged, &[both], &default_specs(), 0.15).unwrap();
        assert!(lines.iter().all(|l| l.pass && l.regression.abs() < 1e-9));
        let err = merge_docs(&[merged, doc(false, &[1.0], &[1.0])]).unwrap_err();
        assert!(err.contains("quick-flag mismatch"), "{err}");
        assert!(merge_docs(&[e14_only]).is_ok());
    }

    #[test]
    fn quick_flag_mismatch_is_an_error() {
        let base = doc(false, &[60.0], &[900.0]);
        let fresh = doc(true, &[60.0], &[900.0]);
        let err = compare(&base, &[fresh], &default_specs(), 0.15).unwrap_err();
        assert!(err.contains("quick-flag mismatch"), "{err}");
    }
}
