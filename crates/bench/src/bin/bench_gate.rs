//! CI perf-regression gate.
//!
//! Compares one or more fresh `experiments --json` documents against a
//! committed baseline and exits non-zero if a gated metric regressed
//! beyond tolerance. See [`guardians_bench::gate`] for the statistical
//! design (per-table geometric means, best-of-N fresh runs).
//!
//! ```text
//! bench_gate --baseline BENCH_e11.json --baseline BENCH_e14.json \
//!            --fresh fresh1.json --fresh fresh2.json
//! bench_gate --baseline B.json --fresh F.json --tolerance 0.10
//! bench_gate --baseline B.json --fresh F.json --scale-fresh 0.8   # demo: inject -20%
//! ```
//!
//! `--baseline` repeats: the committed baselines live one experiment per
//! file and are merged before comparison. Each `--fresh` document must
//! contain every gated table (generate with `--only e11 e14 e17 e18`).
//!
//! `--scale-fresh <f>` multiplies every fresh metric by `f` after
//! extraction (throughput) or divides latency by `f` — i.e. `0.8`
//! simulates the machine running 20% slower. It exists so the gate's
//! failure path can be demonstrated without doctoring JSON files.

use guardians_bench::gate::{compare, default_specs, merge_docs, Direction, Json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baselines: Vec<String> = Vec::new();
    let mut fresh: Vec<String> = Vec::new();
    let mut tolerance = 0.15;
    let mut scale_fresh = 1.0f64;
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("error: {} requires an argument", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--baseline" => {
                baselines.push(need(i).to_string());
                i += 2;
            }
            "--fresh" => {
                fresh.push(need(i).to_string());
                i += 2;
            }
            "--tolerance" => {
                tolerance = need(i).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --tolerance: {e}");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--scale-fresh" => {
                scale_fresh = need(i).parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --scale-fresh: {e}");
                    std::process::exit(2);
                });
                i += 2;
            }
            other => {
                eprintln!(
                    "error: unknown argument {other:?}\n\
                     usage: bench_gate --baseline <json> [--baseline <json>...] \
                     --fresh <json> [--fresh <json>...] [--tolerance 0.15] [--scale-fresh 1.0]"
                );
                std::process::exit(2);
            }
        }
    }
    if baselines.is_empty() {
        eprintln!("error: at least one --baseline is required");
        std::process::exit(2);
    }
    if fresh.is_empty() {
        eprintln!("error: at least one --fresh is required");
        std::process::exit(2);
    }

    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: reading {path}: {e}");
            std::process::exit(2);
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: parsing {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline_docs: Vec<Json> = baselines.iter().map(|p| load(p)).collect();
    let base_doc = merge_docs(&baseline_docs).unwrap_or_else(|e| {
        eprintln!("bench_gate: error: {e}");
        std::process::exit(2);
    });
    let fresh_docs: Vec<Json> = fresh.iter().map(|p| load(p)).collect();

    let specs = default_specs();
    let mut lines = match compare(&base_doc, &fresh_docs, &specs, tolerance) {
        Ok(lines) => lines,
        Err(e) => {
            eprintln!("bench_gate: error: {e}");
            std::process::exit(2);
        }
    };
    if scale_fresh != 1.0 {
        // Re-derive each verdict with the injected slowdown applied.
        for (line, spec) in lines.iter_mut().zip(&specs) {
            line.fresh = match spec.direction {
                Direction::HigherIsBetter => line.fresh * scale_fresh,
                Direction::LowerIsBetter => line.fresh / scale_fresh,
            };
            line.regression = match spec.direction {
                Direction::HigherIsBetter => (line.baseline - line.fresh) / line.baseline,
                Direction::LowerIsBetter => (line.fresh - line.baseline) / line.baseline,
            };
            line.pass = line.regression <= tolerance;
        }
        println!("(demo: fresh metrics scaled by {scale_fresh})");
    }

    println!(
        "bench gate: baseline [{}], best of {} fresh run(s), tolerance {:.0}%",
        baselines.join(", "),
        fresh_docs.len(),
        tolerance * 100.0
    );
    let mut failed = false;
    for line in &lines {
        println!("{line}");
        failed |= !line.pass;
    }
    if failed {
        eprintln!("bench_gate: FAIL — regression beyond tolerance");
        std::process::exit(1);
    }
    println!("bench_gate: ok");
}
