//! Open-ended torture soak: `cargo run --release --bin torture -- [args]`.
//!
//! Runs seed after seed through the model-based rig (see the
//! `guardians-torture` crate), printing a progress line per batch and a
//! summary at the end. On the first divergence it shrinks the trace to a
//! locally minimal regression and prints it ready to commit.
//!
//! Arguments (all optional, any order):
//!   --seeds N        number of seeds to run            (default 200)
//!   --start N        first seed                        (default 0)
//!   --ops N          ops per trace                     (default 10000)
//!   --workers N      collector workers for the soak traces (default 1,
//!                    the serial engine; >1 selects the parallel engine
//!                    and the oracle checks it op-for-op)
//!   --pause-budget N run the soak traces under the bounded-pause
//!                    incremental engine with an N-microsecond budget
//!                    (0 = one work unit per increment, the finest
//!                    slicing; omit the flag for the default engine).
//!                    Applies to the soak and traced legs, not the
//!                    fault sweep
//!   --autotune M     run the soak and traced legs with the GC policy
//!                    autotuner enabled: off | observe | active
//!                    (default off). The rig keeps its shadow model in
//!                    lockstep with controller-driven promotion retunes,
//!                    so an active soak is the autotuner's oracle check
//!   --fault-sweep N  additionally run an exhaustive acquisition-fault
//!                    sweep on the first N seeds with short traces
//!                    (default 0 = none)
//!   --sweep-ops N    ops per fault-sweep trace         (default 150)
//!   --traced N       re-run the first N seeds with the GC event trace
//!                    enabled and cross-checked against the shadow model
//!                    after every collection      (default 0 = none)
//!   --scheme-seeds N additionally run N seeds of the scheme-differential
//!                    leg: the seed's guardian-heavy Scheme workload under
//!                    the staged anchor vs the tier named by
//!                    --scheme-interp, on the seed's rotated heap config
//!                    (plus --workers / --pause-budget overrides)
//!                    (default 0 = none)
//!   --scheme-forms N top-level forms per scheme workload  (default 200)
//!   --scheme-interp M the tier the scheme leg checks against the staged
//!                    anchor: naive | vm                   (default vm)
//!   --zone-soak N    additionally run N seeds of the multi-zone soak:
//!                    a randomized create/dispatch/evict/teardown schedule
//!                    over a shared-pool zone fleet, every teardown
//!                    private-replay oracle-checked; on divergence the
//!                    schedule is ddmin-shrunk and written ready to
//!                    commit                               (default 0 = none)
//!   --zone-ops N     ops per zone-soak schedule           (default 400)
//!   --zones N        max zones per zone-soak schedule     (default 6)
//!   --fail-out PATH  on divergence, also write the shrunken regression
//!                    trace to PATH (CI uploads it as an artifact)

use std::time::Instant;

fn main() {
    let mut seeds: u64 = 200;
    let mut start: u64 = 0;
    let mut ops: usize = 10_000;
    let mut workers: usize = 1;
    let mut pause_budget: Option<u64> = None;
    let mut autotune = guardians_gc::AutotuneMode::Off;
    let mut sweep_seeds: u64 = 0;
    let mut sweep_ops: usize = 150;
    let mut traced_seeds: u64 = 0;
    let mut scheme_seeds: u64 = 0;
    let mut scheme_forms: usize = 200;
    let mut scheme_interp = guardians_torture::InterpMode::Vm;
    let mut zone_seeds: u64 = 0;
    let mut zone_ops: usize = 400;
    let mut max_zones: usize = 6;
    let mut fail_out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| -> u64 {
            args.get(i + 1)
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("{} needs a numeric argument", args[i]))
        };
        match args[i].as_str() {
            "--seeds" => seeds = val(i),
            "--start" => start = val(i),
            "--ops" => ops = val(i) as usize,
            "--workers" => workers = (val(i) as usize).max(1),
            "--pause-budget" => pause_budget = Some(val(i)),
            "--autotune" => {
                autotune = args
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("--autotune needs off|observe|active"))
                    .parse()
                    .unwrap_or_else(|e| panic!("--autotune: {e}"));
            }
            "--fault-sweep" => sweep_seeds = val(i),
            "--sweep-ops" => sweep_ops = val(i) as usize,
            "--traced" => traced_seeds = val(i),
            "--scheme-seeds" => scheme_seeds = val(i),
            "--scheme-forms" => scheme_forms = val(i) as usize,
            "--scheme-interp" => {
                scheme_interp = args
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("--scheme-interp needs naive|vm"))
                    .parse()
                    .unwrap_or_else(|e| panic!("--scheme-interp: {e}"));
            }
            "--zone-soak" => zone_seeds = val(i),
            "--zone-ops" => zone_ops = val(i) as usize,
            "--zones" => max_zones = (val(i) as usize).max(1),
            "--fail-out" => {
                fail_out = Some(
                    args.get(i + 1)
                        .unwrap_or_else(|| panic!("--fail-out needs a path argument"))
                        .clone(),
                );
            }
            other => panic!("unknown argument {other:?}"),
        }
        i += 2;
    }

    println!(
        "torture soak: {seeds} seeds from {start}, {ops} ops each, {workers} collector worker{}{}{}",
        if workers == 1 { "" } else { "s" },
        match pause_budget {
            Some(us) => format!(", {us} us pause budget (incremental engine)"),
            None => String::new(),
        },
        match autotune {
            guardians_gc::AutotuneMode::Off => String::new(),
            mode => format!(", autotuner {mode}"),
        }
    );
    let t0 = Instant::now();
    let mut total_collections = 0u64;
    let mut total_checks = 0u64;
    let mut total_finalized = 0u64;
    let mut total_polled = 0u64;
    for seed in start..start + seeds {
        let mut trace = guardians_torture::generate(seed, ops);
        trace.config.workers = workers;
        trace.config.pause_budget = pause_budget;
        trace.config.autotune = autotune;
        match guardians_torture::run_trace(&trace) {
            Ok(stats) => {
                total_collections += stats.collections;
                total_checks += stats.checks;
                total_finalized += stats.finalized;
                total_polled += stats.polled;
                if (seed - start + 1).is_multiple_of(25) {
                    let done = (seed - start + 1) as f64;
                    println!(
                        "  {done:>5} seeds, {:.1} seeds/s, {total_collections} collections, \
                         {total_checks} checks, {total_finalized} finalized, {total_polled} polled",
                        done / t0.elapsed().as_secs_f64()
                    );
                }
            }
            Err(failure) => {
                eprintln!("{failure}");
                let report = guardians_torture::explain(&trace, &failure);
                eprintln!("{report}");
                write_failure(fail_out.as_deref(), &format!("{failure}\n{report}\n"));
                std::process::exit(1);
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    println!(
        "PASS: {seeds} seeds x {ops} ops in {elapsed:.1}s ({:.2} seeds/s), \
         {total_collections} collections, {total_checks} oracle checks, \
         {total_finalized} finalized, {total_polled} polled",
        seeds as f64 / elapsed
    );

    if sweep_seeds > 0 {
        println!("fault sweep: {sweep_seeds} seeds, {sweep_ops} ops, every acquisition offset");
        let t1 = Instant::now();
        let mut runs = 0u64;
        let mut fired = 0u64;
        for seed in start..start + sweep_seeds {
            match guardians_torture::fault_sweep(seed, sweep_ops, 1) {
                Ok((r, f)) => {
                    runs += r;
                    fired += f;
                }
                Err(failure) => {
                    eprintln!("{failure}");
                    eprintln!("(failure arose during the fault sweep of seed {seed})");
                    write_failure(
                        fail_out.as_deref(),
                        &format!("{failure}\n(during the fault sweep of seed {seed})\n"),
                    );
                    std::process::exit(1);
                }
            }
        }
        println!(
            "PASS: fault sweep, {runs} faulted runs, {fired} faults fired, {:.1}s",
            t1.elapsed().as_secs_f64()
        );
    }

    if traced_seeds > 0 {
        println!("traced soak: {traced_seeds} seeds, {ops} ops, event-vs-model cross-check");
        let t2 = Instant::now();
        let mut events = 0usize;
        for seed in start..start + traced_seeds {
            let mut trace = guardians_torture::generate(seed, ops);
            trace.config.pause_budget = pause_budget;
            trace.config.autotune = autotune;
            match guardians_torture::run_trace_traced(&trace) {
                Ok((_, evs)) => events += evs.len(),
                Err(failure) => {
                    eprintln!("{failure}");
                    let report = guardians_torture::explain(&trace, &failure);
                    eprintln!("{report}");
                    write_failure(fail_out.as_deref(), &format!("{failure}\n{report}\n"));
                    std::process::exit(1);
                }
            }
        }
        println!(
            "PASS: traced soak, {events} events cross-checked, {:.1}s",
            t2.elapsed().as_secs_f64()
        );
    }

    if scheme_seeds > 0 {
        println!(
            "scheme differential: {scheme_seeds} seeds x ~{scheme_forms} forms, \
             {scheme_interp} tier vs the staged anchor"
        );
        let t3 = Instant::now();
        let mut forms = 0usize;
        let mut collections = 0u64;
        let mut polled = 0u64;
        for seed in start..start + scheme_seeds {
            let mut cfg = guardians_torture::config_for_seed(seed);
            cfg.interp = scheme_interp;
            cfg.workers = workers;
            cfg.pause_budget = pause_budget;
            match guardians_torture::run_scheme_differential(seed, scheme_forms, &cfg) {
                Ok(stats) => {
                    forms += stats.forms;
                    collections += stats.collections;
                    polled += stats.polled;
                }
                Err(failure) => {
                    eprintln!("{failure}");
                    write_failure(fail_out.as_deref(), &format!("{failure}\n"));
                    std::process::exit(1);
                }
            }
        }
        println!(
            "PASS: scheme differential, {forms} forms, {collections} collections, \
             {polled} polls, {:.1}s",
            t3.elapsed().as_secs_f64()
        );
    }

    if zone_seeds > 0 {
        println!(
            "zone soak: {zone_seeds} seeds x {zone_ops} ops, up to {max_zones} zones \
             on a shared pool, private-replay oracle at every teardown"
        );
        let t4 = Instant::now();
        let mut soak_ops = 0u64;
        let mut zones_checked = 0u64;
        let mut requests = 0u64;
        let mut reclaimed = 0u64;
        for seed in start..start + zone_seeds {
            let schedule = guardians_zones::soak::generate(seed, zone_ops, max_zones);
            match guardians_zones::soak::run_schedule(&schedule) {
                Ok(stats) => {
                    soak_ops += stats.ops;
                    zones_checked += stats.zones_checked;
                    requests += stats.requests;
                    reclaimed += stats.reclaimed;
                }
                Err(failure) => {
                    eprintln!("{failure}");
                    // Shrink the schedule to a locally minimal failing op
                    // subsequence (skipped ops on dead zones keep every
                    // subsequence a valid schedule), then print it ready
                    // to commit as a regression.
                    let minimal = guardians_torture::ddmin(&schedule.ops, |ops| {
                        guardians_zones::soak::run_schedule(&guardians_zones::soak::SoakSchedule {
                            seed,
                            ops: ops.to_vec(),
                        })
                        .is_err()
                    });
                    let shrunk = guardians_zones::soak::SoakSchedule { seed, ops: minimal };
                    let text = shrunk.to_text();
                    eprintln!(
                        "shrunken schedule ({} of {} ops):\n{text}",
                        shrunk.ops.len(),
                        schedule.ops.len()
                    );
                    write_failure(fail_out.as_deref(), &format!("{failure}\n{text}"));
                    std::process::exit(1);
                }
            }
        }
        println!(
            "PASS: zone soak, {soak_ops} ops, {zones_checked} zones oracle-checked, \
             {requests} requests, {reclaimed} reclaimed, {:.1}s",
            t4.elapsed().as_secs_f64()
        );
    }
}

/// Writes the failure report where CI can pick it up as an artifact.
fn write_failure(path: Option<&str>, report: &str) {
    if let Some(path) = path {
        match std::fs::write(path, report) {
            Ok(()) => eprintln!("(wrote failing trace to {path})"),
            Err(e) => eprintln!("(could not write {path}: {e})"),
        }
    }
}
