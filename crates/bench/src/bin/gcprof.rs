//! GC profiler: runs an experiment workload or a torture trace with the
//! event trace enabled and exports everything the observability layer
//! produces — a Chrome `trace_event` document (load in
//! `chrome://tracing` or Perfetto), a JSONL event stream, a metrics
//! snapshot, and a live-heap census — plus a terminal report with pause
//! percentiles.
//!
//! ```text
//! gcprof --scenario e11 --quick --out-dir gcprof-out
//! gcprof --scenario e14 --quick --out-dir gcprof-out
//! gcprof --scenario e18 --quick --out-dir gcprof-out
//! gcprof --scenario e19 --quick --out-dir gcprof-out
//! gcprof --scenario e21 --quick --out-dir gcprof-out
//! gcprof --scenario e22 --quick --out-dir gcprof-out
//! gcprof --scenario torture --seed 7 --ops 2000 --out-dir gcprof-out
//! ```
//!
//! `e18` runs the same lifetime workload as `e11` under the bounded-pause
//! incremental engine (100 us budget), so the two profiles diff directly:
//! one whole-collection pause sample becomes many per-increment samples.
//!
//! `e22` runs E22's three adversarial policy workloads on actively
//! autotuned heaps and additionally writes each run's decision trace as
//! JSONL (`e22.<workload>.decisions.jsonl`): one line per controller
//! decision with the full sensor snapshot it acted on, so a policy
//! regression can be diffed decision-by-decision against the trace.

use guardians_gc::{
    chrome_trace_json, decisions_jsonl, events_jsonl, replay_stats, AutotuneConfig, GcConfig,
    GcEvent, Heap, Promotion, TraceConfig, TracedEvent,
};
use guardians_scheme::{Interp, InterpConfig};
use guardians_workloads::{
    run_burst_workload, run_cache_workload, run_lifetime_workload, run_pool_workload, BurstParams,
    CacheParams, LifetimeParams, PolicyStats, PoolParams,
};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let scenario = get("--scenario").unwrap_or_else(|| {
        eprintln!(
            "usage: gcprof --scenario <e11|e14|e18|e19|e21|e22|torture> [--quick] [--seed N] \
             [--ops N] [--out-dir DIR]"
        );
        std::process::exit(2);
    });
    let quick = args.iter().any(|a| a == "--quick");
    let seed: u64 = get("--seed").map_or(7, |s| s.parse().expect("--seed: u64"));
    let ops: usize = get("--ops").map_or(2_000, |s| s.parse().expect("--ops: usize"));
    let out_dir = get("--out-dir").unwrap_or_else(|| "gcprof-out".to_string());
    std::fs::create_dir_all(&out_dir).expect("create --out-dir");

    match scenario.as_str() {
        "e11" => profile_e11(quick, &out_dir),
        "e14" => profile_e14(quick, &out_dir),
        "e18" => profile_e18(quick, &out_dir),
        "e19" => profile_e19(quick, &out_dir),
        "e21" => profile_e21(quick, &out_dir),
        "e22" => profile_e22(quick, &out_dir),
        "torture" => profile_torture(seed, ops, &out_dir),
        other => {
            eprintln!(
                "error: unknown scenario {other:?} (expected e11, e14, e18, e19, e21, e22, or \
                 torture)"
            );
            std::process::exit(2);
        }
    }
}

/// Tracing configuration for profiling runs: census at every collection
/// end, sparse allocation sampling, a ring large enough that nothing is
/// dropped on the sizes profiled here.
fn profile_trace_config() -> TraceConfig {
    TraceConfig {
        capacity: 1 << 20,
        alloc_sample_every: 4_096,
        census_at_collection_end: true,
    }
}

fn write_exports(out_dir: &str, stem: &str, events: &[TracedEvent]) {
    let chrome = Path::new(out_dir).join(format!("{stem}.trace.json"));
    let jsonl = Path::new(out_dir).join(format!("{stem}.events.jsonl"));
    std::fs::write(&chrome, chrome_trace_json(events)).expect("write chrome trace");
    std::fs::write(&jsonl, events_jsonl(events)).expect("write jsonl");
    println!(
        "wrote {} ({} events) and {}",
        chrome.display(),
        events.len(),
        jsonl.display()
    );
}

fn print_pause_report(heap: &mut Heap) {
    let m = heap.metrics();
    println!("collections: {}", m.counter("gc.collections"));
    if let Some(h) = m.get_histogram("gc.pause_ns") {
        let q = |p: f64| h.quantile(p).unwrap_or(0) / 1_000;
        println!(
            "pause (us): p50 {}  p95 {}  p99 {}  max {}",
            q(0.50),
            q(0.95),
            q(0.99),
            h.max().unwrap_or(0) / 1_000
        );
    }
    println!(
        "guardian: visited {}  finalized {}  queue depth {}",
        m.counter("gc.guardian.visited"),
        m.counter("gc.guardian.finalized"),
        m.gauge("guardian.queue_depth")
    );
}

fn profile_e11(quick: bool, out_dir: &str) {
    // The paper-policy configuration from E11's table (4 generations,
    // next-generation promotion, 4^i collection schedule).
    let config = GcConfig {
        generations: 4,
        promotion: Promotion::NextGeneration,
        trigger_bytes: 128 * 1024,
        frequency: (0..4).map(|i| 4u64.pow(i)).collect(),
        ..GcConfig::new()
    };
    let mut heap = Heap::new(config);
    heap.enable_tracing(profile_trace_config());
    let params = LifetimeParams {
        allocations: if quick { 30_000 } else { 300_000 },
        ..LifetimeParams::default()
    };
    let stats = run_lifetime_workload(&mut heap, &params);
    heap.verify().expect("heap valid after workload");
    let events = heap.drain_trace_events();
    assert_eq!(heap.trace_dropped(), 0, "profiling ring sized to not drop");

    println!("== gcprof e11 (lifetime workload, paper policy) ==");
    println!(
        "workload: {} allocations, {} collections, {} words copied",
        params.allocations, stats.collections, stats.words_copied
    );
    print_pause_report(&mut heap);
    let census = heap.census();
    println!(
        "census: {} live objects, {} live words across {} generations",
        census.total_objects(),
        census.total_words(),
        census.generations.len()
    );
    std::fs::write(
        Path::new(out_dir).join("e11.metrics.json"),
        heap.metrics_json(),
    )
    .expect("write metrics");
    std::fs::write(Path::new(out_dir).join("e11.census.json"), census.to_json())
        .expect("write census");
    write_exports(out_dir, "e11", &events);
}

fn profile_e18(quick: bool, out_dir: &str) {
    // The E18 configuration: the paper policy with a 4x trigger and a
    // larger survivor window so stop-the-world pauses would exceed the
    // budget, run under the bounded-pause engine slicing each collection
    // into 100 us increments interleaved with the mutator.
    let config = GcConfig {
        generations: 4,
        promotion: Promotion::NextGeneration,
        trigger_bytes: 512 * 1024,
        frequency: (0..4).map(|i| 4u64.pow(i)).collect(),
        pause_budget: Some(std::time::Duration::from_micros(100)),
        ..GcConfig::new()
    };
    let mut heap = Heap::new(config);
    heap.enable_tracing(profile_trace_config());
    let params = LifetimeParams {
        allocations: if quick { 100_000 } else { 400_000 },
        window: 2048,
        list_len: 8,
        ..LifetimeParams::default()
    };
    let stats = run_lifetime_workload(&mut heap, &params);
    while heap.incremental_in_progress() {
        heap.gc_step();
    }
    heap.verify().expect("heap valid after workload");
    let events = heap.drain_trace_events();
    assert_eq!(heap.trace_dropped(), 0, "profiling ring sized to not drop");

    println!("== gcprof e18 (lifetime workload, 100 us pause budget) ==");
    println!(
        "workload: {} allocations, {} collections in {} increments, {} words copied",
        params.allocations,
        stats.collections,
        heap.metrics().counter("gc.increments"),
        stats.words_copied
    );
    print_pause_report(&mut heap);
    std::fs::write(
        Path::new(out_dir).join("e18.metrics.json"),
        heap.metrics_json(),
    )
    .expect("write metrics");
    write_exports(out_dir, "e18", &events);
}

fn profile_e14(quick: bool, out_dir: &str) {
    // The same programs E14 times (list churn and guardian churn are the
    // allocation-heavy ones worth attributing), run under the staged
    // evaluator with both tracing and site profiling enabled.
    let programs: [(&str, &str, &str, usize); 2] = [
        (
            "list-churn",
            "(define (iota n) \
               (let lp ((i 0) (acc '())) \
                 (if (= i n) (reverse acc) (lp (+ i 1) (cons i acc))))) \
             (define (filter p l) \
               (cond ((null? l) '()) \
                     ((p (car l)) (cons (car l) (filter p (cdr l)))) \
                     (else (filter p (cdr l))))) \
             (define (churn n) \
               (length (map (lambda (x) (* x x)) (filter odd? (iota n)))))",
            "(churn 250)",
            if quick { 20 } else { 80 },
        ),
        (
            "guardian-churn",
            "(define (gchurn n) \
               (let ((g (make-guardian))) \
                 (let lp ((i 0)) \
                   (unless (= i n) (g (cons i i)) (lp (+ i 1)))) \
                 (collect 3) \
                 (let drain ((k 0)) \
                   (if (g) (drain (+ k 1)) k))))",
            "(gchurn 500)",
            if quick { 6 } else { 24 },
        ),
    ];
    let mut it = Interp::with_interp_config(InterpConfig::staged());
    it.heap_mut().enable_tracing(profile_trace_config());
    it.heap_mut().enable_site_profile();
    for (name, setup, driver, iters) in programs {
        it.eval_str(setup).expect("setup evaluates");
        for _ in 0..iters {
            it.eval_to_string(driver).expect("driver evaluates");
        }
        println!("ran {name} x{iters}");
    }
    let events = it.heap_mut().drain_trace_events();
    let sites = it.heap_mut().take_site_profile();

    println!("== gcprof e14 (staged evaluator, site attribution) ==");
    println!("allocation sites by words (top 10):");
    for (site, s) in sites.iter().take(10) {
        println!(
            "  {:>10} words  {:>8} allocs  {site}",
            s.words, s.allocations
        );
    }
    print_pause_report(it.heap_mut());
    std::fs::write(
        Path::new(out_dir).join("e14.metrics.json"),
        it.heap_mut().metrics_json(),
    )
    .expect("write metrics");
    write_exports(out_dir, "e14", &events);
}

fn profile_e19(quick: bool, out_dir: &str) {
    // E14's allocation-heavy programs run under the bytecode VM with site
    // profiling on, which also arms the per-opcode dispatch counters: the
    // profile shows where the words come from *and* where the dispatch
    // loop spends its instructions.
    let programs: [(&str, &str, &str, usize); 2] = [
        (
            "list-churn",
            "(define (iota n) \
               (let lp ((i 0) (acc '())) \
                 (if (= i n) (reverse acc) (lp (+ i 1) (cons i acc))))) \
             (define (filter p l) \
               (cond ((null? l) '()) \
                     ((p (car l)) (cons (car l) (filter p (cdr l)))) \
                     (else (filter p (cdr l))))) \
             (define (churn n) \
               (length (map (lambda (x) (* x x)) (filter odd? (iota n)))))",
            "(churn 250)",
            if quick { 20 } else { 80 },
        ),
        (
            "guardian-churn",
            "(define (gchurn n) \
               (let ((g (make-guardian))) \
                 (let lp ((i 0)) \
                   (unless (= i n) (g (cons i i)) (lp (+ i 1)))) \
                 (collect 3) \
                 (let drain ((k 0)) \
                   (if (g) (drain (+ k 1)) k))))",
            "(gchurn 500)",
            if quick { 6 } else { 24 },
        ),
    ];
    let mut it = Interp::with_interp_config(InterpConfig::vm());
    it.heap_mut().enable_tracing(profile_trace_config());
    it.heap_mut().enable_site_profile();
    for (name, setup, driver, iters) in programs {
        it.eval_str(setup).expect("setup evaluates");
        for _ in 0..iters {
            it.eval_to_string(driver).expect("driver evaluates");
        }
        println!("ran {name} x{iters}");
    }
    let events = it.heap_mut().drain_trace_events();
    let sites = it.heap_mut().take_site_profile();

    println!("== gcprof e19 (bytecode VM, site attribution + dispatch mix) ==");
    println!("allocation sites by words (top 10):");
    for (site, s) in sites.iter().take(10) {
        println!(
            "  {:>10} words  {:>8} allocs  {site}",
            s.words, s.allocations
        );
    }
    let mut dispatches: Vec<(&str, u64)> = it
        .heap_mut()
        .metrics()
        .counters()
        .filter(|(k, _)| k.starts_with("vm.dispatch."))
        .collect();
    dispatches.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let total: u64 = dispatches.iter().map(|&(_, n)| n).sum();
    println!("dispatch counters ({total} insns, top 10):");
    for (key, n) in dispatches.iter().take(10) {
        println!("  {n:>10}  {key}");
    }
    print_pause_report(it.heap_mut());
    std::fs::write(
        Path::new(out_dir).join("e19.metrics.json"),
        it.heap_mut().metrics_json(),
    )
    .expect("write metrics");
    write_exports(out_dir, "e19", &events);
}

fn profile_e21(quick: bool, out_dir: &str) {
    use guardians_zones::{session_zone, Engine, Request, ZoneConfig, ZoneManager};

    // E21's fleet shape — 8 zones alternating typed/Scheme over one shared
    // segment pool, engines cycling through the zone matrix — but driven
    // single-threaded through the manager so every zone's heap stays
    // reachable for tracing. Each zone gets its own trace ring, census,
    // and metrics snapshot; the fleet rollup lands in e21.fleet.json.
    const ZONES: usize = 8;
    let mut mgr = ZoneManager::new();
    for id in 0..ZONES as u64 {
        let base = if id % 2 == 0 {
            ZoneConfig::typed()
        } else {
            ZoneConfig::scheme()
        };
        let cfg = base
            .with_engine(Engine::MATRIX[(id % 3) as usize])
            .with_trigger_bytes(1 << 16);
        mgr.create_zone(id, &cfg)
            .enable_tracing(profile_trace_config());
    }
    let sessions: u64 = if quick { 400 } else { 1_500 };
    let rounds: u32 = if quick { 2 } else { 4 };
    let start = std::time::Instant::now();
    for s in 0..sessions {
        mgr.dispatch(session_zone(s, ZONES), Request::Open { session: s });
    }
    for round in 0..rounds {
        for s in 0..sessions {
            mgr.dispatch(
                session_zone(s, ZONES),
                Request::Work {
                    session: s,
                    amount: 1 + (s as u32 + round) % 5,
                },
            );
        }
    }
    for s in (0..sessions).step_by(2) {
        mgr.dispatch(session_zone(s, ZONES), Request::Evict { session: s });
    }
    mgr.quiesce();
    let elapsed_ns = start.elapsed().as_nanos() as u64;

    println!("== gcprof e21 (multi-tenant zone fleet, shared segment pool) ==");
    let pool_stats = mgr.pool_stats();
    let mut snaps = Vec::new();
    for id in mgr.zone_ids() {
        let zone = mgr.zone_mut(id).expect("zone exists");
        zone.verify().expect("zone heap valid after workload");
        let events = zone.drain_trace_events();
        assert_eq!(
            zone.heap().trace_dropped(),
            0,
            "profiling ring sized to not drop"
        );
        let snap = zone.snapshot();
        println!(
            "zone {id} [{}/{}]: {} requests, {} collections, {} reclaimed, pause p99 {} us",
            snap.engine,
            snap.workload,
            snap.obs.requests,
            snap.obs.collections,
            snap.obs.reclaimed_sessions,
            snap.pause_p99_ns / 1_000
        );
        let census = zone.heap().census();
        std::fs::write(
            Path::new(out_dir).join(format!("e21.zone{id}.census.json")),
            census.to_json(),
        )
        .expect("write zone census");
        std::fs::write(
            Path::new(out_dir).join(format!("e21.zone{id}.metrics.json")),
            zone.heap_mut().metrics_json(),
        )
        .expect("write zone metrics");
        write_exports(out_dir, &format!("e21.zone{id}"), &events);
        snaps.push(snap);
    }
    let fleet = guardians_zones::fleet_stats_json(&snaps, &pool_stats, elapsed_ns);
    let fleet_path = Path::new(out_dir).join("e21.fleet.json");
    std::fs::write(&fleet_path, &fleet).expect("write fleet stats");
    let agg = guardians_zones::FleetStats::aggregate(&snaps);
    println!(
        "fleet: {} zones, {} sessions, {} requests, {} reclaimed, worst zone p99 {} us",
        agg.zones,
        agg.sessions_opened,
        agg.requests,
        agg.reclaimed_sessions,
        agg.worst_pause_p99_ns / 1_000
    );
    println!("wrote {}", fleet_path.display());
}

fn profile_e22(quick: bool, out_dir: &str) {
    // E22's three adversarial policy workloads, each on a fresh default
    // heap with the autotuner active — the configuration whose behavior
    // the experiment gates. Alongside the usual trace/metrics exports,
    // each run's controller decisions land in a JSONL file: one line per
    // decision with the full sensor snapshot (survival ratios, guardian
    // pressure, parked-entry EWMA inputs) it acted on.
    let scale = if quick { 1 } else { 3 };
    let cache = CacheParams {
        rounds: 8_000 * scale,
        ..CacheParams::default()
    };
    let burst = BurstParams {
        bursts: 150 * scale,
        requests_per_burst: 2048,
        request_len: 40,
        ..BurstParams::default()
    };
    let pool = PoolParams {
        rounds: 8_000 * scale,
        ..PoolParams::default()
    };
    type Workload<'a> = &'a dyn Fn(&mut Heap) -> PolicyStats;
    let runs: [(&str, Workload); 3] = [
        ("cache", &|h| run_cache_workload(h, &cache)),
        ("burst", &|h| run_burst_workload(h, &burst)),
        ("pool", &|h| run_pool_workload(h, &pool)),
    ];

    println!("== gcprof e22 (policy workloads, autotuner active, decision traces) ==");
    for (name, workload) in runs {
        let mut heap = Heap::new(GcConfig::new());
        heap.enable_autotune(AutotuneConfig::active());
        heap.enable_tracing(profile_trace_config());
        let stats = workload(&mut heap);
        heap.verify().expect("heap valid after workload");
        let events = heap.drain_trace_events();
        assert_eq!(heap.trace_dropped(), 0, "profiling ring sized to not drop");
        let decisions = heap.take_autotune_decisions();

        println!(
            "{name}: {} collections, {} kw GC work, drag peak {}, {} decisions",
            stats.collections,
            stats.gc_work() / 1000,
            stats.drag_peak,
            decisions.len()
        );
        for d in &decisions {
            println!(
                "  collection {:>4}: {} {} -> {} (sensor {})",
                d.collection_index, d.knob, d.from, d.to, d.sensor
            );
        }
        print_pause_report(&mut heap);
        let jsonl_path = Path::new(out_dir).join(format!("e22.{name}.decisions.jsonl"));
        std::fs::write(&jsonl_path, decisions_jsonl(&decisions)).expect("write decision trace");
        println!(
            "wrote {} ({} decisions)",
            jsonl_path.display(),
            decisions.len()
        );
        std::fs::write(
            Path::new(out_dir).join(format!("e22.{name}.metrics.json")),
            heap.metrics_json(),
        )
        .expect("write metrics");
        write_exports(out_dir, &format!("e22.{name}"), &events);
    }
}

fn profile_torture(seed: u64, ops: usize, out_dir: &str) {
    let (stats, events) = guardians_torture::check_seed_traced(seed, ops)
        .unwrap_or_else(|f| panic!("torture seed diverged: {f}"));
    println!("== gcprof torture (seed {seed}, {ops} ops) ==");
    println!(
        "run: {} collections, {} oracle checks, {} finalized, {} polled",
        stats.collections, stats.checks, stats.finalized, stats.polled
    );
    // The event stream alone reconstructs the collector-side stats — the
    // same parity contract the rig asserts after every collection.
    let derived = replay_stats(&events);
    println!(
        "replayed from events: {} collections, {} words copied, total GC {:?}",
        derived.collections, derived.total_words_copied, derived.total_gc_time
    );
    let app_markers = events
        .iter()
        .filter(|e| matches!(e.event, GcEvent::App { .. }))
        .count();
    if app_markers > 0 {
        println!("app markers interleaved: {app_markers}");
    }
    write_exports(out_dir, &format!("torture-{seed}"), &events);
}
