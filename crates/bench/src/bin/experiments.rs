//! Regenerates every experiment table (E1..E12, E14, E17..E22) —
//! the artifact behind EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p guardians-bench --bin experiments           # full
//! cargo run -p guardians-bench --bin experiments -- --quick          # small
//! cargo run -p guardians-bench --bin experiments -- --only e3 e4    # subset
//! cargo run -p guardians-bench --bin experiments -- --json out.json # machine-readable
//! ```
//!
//! `--json <path>` additionally writes the selected tables as a JSON
//! document `{"quick": bool, "tables": [...]}` (see `BENCH_e11.json` for
//! a checked-in example).

use guardians_bench::experiments as ex;
use guardians_workloads::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path: Option<String> = args.iter().position(|a| a == "--json").map(|i| {
        match args.get(i + 1).filter(|p| !p.starts_with("--")) {
            Some(p) => p.clone(),
            None => {
                eprintln!("error: --json requires a path argument");
                std::process::exit(2);
            }
        }
    });
    let only: Vec<String> = match args.iter().position(|a| a == "--only") {
        Some(i) => args[i + 1..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .map(|s| s.to_lowercase())
            .collect(),
        None => Vec::new(),
    };
    const NAMES: [&str; 19] = [
        "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e14", "e17",
        "e18", "e19", "e20", "e21", "e22",
    ];
    for o in &only {
        if !NAMES.contains(&o.as_str()) {
            eprintln!("error: unknown experiment {o:?} (expected one of e1..e12, e14, e17..e22)");
            std::process::exit(2);
        }
    }
    let wanted = |name: &str| only.is_empty() || only.iter().any(|o| o == name);

    println!("Guardians in a Generation-Based Garbage Collector (PLDI 1993)");
    println!(
        "Reproduction experiment suite{}",
        if quick { " (quick mode)" } else { "" }
    );
    println!();

    type Runner = fn(bool) -> Table;
    let suite: Vec<(&str, Runner)> = vec![
        ("e1", |q| ex::e1::run(q).0),
        ("e2", |q| ex::e2::run(q).0),
        ("e3", |q| ex::e3::run(q).0),
        ("e4", |q| ex::e4::run(q).0),
        ("e5", |q| ex::e5::run(q).0),
        ("e6", |q| ex::e6::run(q).0),
        ("e7", |q| ex::e7::run(q).0),
        ("e8", |q| ex::e8::run(q).0),
        ("e9", |q| ex::e9::run(q).0),
        ("e10", |q| ex::e10::run(q).0),
        ("e11", |q| ex::e11::run(q).0),
        ("e12", |q| ex::e12::run(q).0),
        ("e14", |q| ex::e14::run(q).0),
        ("e17", |q| ex::e17::run(q).0),
        ("e18", |q| ex::e18::run(q).0),
        ("e19", |q| ex::e19::run(q).0),
        ("e20", |q| ex::e20::run(q).0),
        ("e21", |q| ex::e21::run(q).0),
        ("e22", |q| ex::e22::run(q).0),
    ];
    let mut json_tables: Vec<String> = Vec::new();
    for (name, run) in suite {
        if wanted(name) {
            let table = run(quick);
            println!("{}", table.render());
            json_tables.push(table.to_json_named(name));
        }
    }
    if let Some(path) = json_path {
        let doc = format!(
            "{{\"quick\":{quick},\"tables\":[{}]}}\n",
            json_tables.join(",")
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
