//! Property test: the tconc queue against a `VecDeque` model, with
//! collections of random generations interleaved between operations. The
//! queue's contents are fixnums (collection-immune values), so any
//! divergence is a structural failure of the tconc pairs surviving the
//! copying collector.

use guardians_gc::{GcConfig, Heap, Value};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Debug)]
enum Op {
    Append(i64),
    Pop,
    Len,
    Collect(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<i64>().prop_map(|v| Op::Append(v % 1_000_000)),
        3 => Just(Op::Pop),
        1 => Just(Op::Len),
        2 => (0u8..4).prop_map(Op::Collect),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn tconc_matches_a_vecdeque_across_collections(
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        let mut heap = Heap::new(GcConfig::new());
        let tc_root = {
            let tc = heap.make_tconc();
            heap.root(tc)
        };
        let mut model: VecDeque<i64> = VecDeque::new();
        for op in ops {
            let tc = tc_root.get();
            match op {
                Op::Append(v) => {
                    heap.tconc_append(tc, Value::fixnum(v));
                    model.push_back(v);
                }
                Op::Pop => {
                    let got = heap.tconc_pop(tc).map(|v| v.as_fixnum());
                    prop_assert_eq!(got, model.pop_front(), "pop diverged");
                }
                Op::Len => {
                    prop_assert_eq!(heap.tconc_len(tc), model.len(), "len diverged");
                    prop_assert_eq!(heap.tconc_is_empty(tc), model.is_empty());
                }
                Op::Collect(g) => {
                    let g = g.min(heap.config().max_generation());
                    heap.collect(g);
                    heap.verify().expect("heap valid after collection");
                }
            }
        }
        // Drain both: they must agree to the end.
        let tc = tc_root.get();
        while let Some(v) = heap.tconc_pop(tc) {
            prop_assert_eq!(Some(v.as_fixnum()), model.pop_front(), "final drain diverged");
        }
        prop_assert!(model.is_empty(), "model has leftovers the tconc lost");
    }
}
