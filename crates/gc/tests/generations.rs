//! Generational behaviour: aging, promotion, remembered sets, and the
//! generation-friendliness of guardian processing (the paper's central
//! implementation claim).

use guardians_gc::{GcConfig, Heap, Value};

#[test]
fn survivors_age_one_generation_per_collection() {
    let mut h = Heap::default();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let r = h.root(x);
    assert_eq!(h.generation_of(r.get()), Some(0));
    h.collect(0);
    assert_eq!(h.generation_of(r.get()), Some(1));
    h.collect(1);
    assert_eq!(h.generation_of(r.get()), Some(2));
    h.collect(2);
    assert_eq!(h.generation_of(r.get()), Some(3));
    // Generation 3 is the oldest: survivors of collecting it stay there.
    h.collect(3);
    assert_eq!(h.generation_of(r.get()), Some(3));
    assert_eq!(h.car(r.get()), Value::fixnum(1));
    h.verify().unwrap();
}

#[test]
fn young_collection_does_not_move_old_objects() {
    let mut h = Heap::default();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let r = h.root(x);
    h.collect(0);
    let addr = h.address_of(r.get()).unwrap();
    h.collect(0);
    h.collect(0);
    assert_eq!(
        h.address_of(r.get()),
        Some(addr),
        "gen-1 object untouched by gen-0 GCs"
    );
}

#[test]
fn old_to_young_pointer_survives_via_write_barrier() {
    let mut h = Heap::default();
    let vec = h.make_vector(4, Value::NIL);
    let vr = h.root(vec);
    h.collect(0);
    h.collect(1); // vector now in generation 2
    assert_eq!(h.generation_of(vr.get()), Some(2));

    // Mutate the old vector to point at a brand-new pair.
    let young = h.cons(Value::fixnum(77), Value::NIL);
    let v = vr.get();
    h.vector_set(v, 0, young);
    h.collect(0);
    h.verify().unwrap();
    let survivor = h.vector_ref(vr.get(), 0);
    assert_eq!(
        h.car(survivor),
        Value::fixnum(77),
        "remembered set saved the young pair"
    );
    assert_eq!(h.generation_of(survivor), Some(1));
    let report = h.last_report().unwrap();
    assert!(
        report.dirty_segments_scanned >= 1,
        "the dirtied segment was scanned"
    );
}

#[test]
fn clean_old_segments_are_never_scanned() {
    let mut h = Heap::default();
    // Build a large old structure, never mutated afterwards.
    let mut head = Value::NIL;
    for i in 0..1000 {
        head = h.cons(Value::fixnum(i), head);
    }
    let r = h.root(head);
    h.collect(0);
    h.collect(1); // structure parked in generation 2
                  // Churn some young garbage and collect generation 0 repeatedly.
    for _ in 0..5 {
        for _ in 0..100 {
            let _ = h.cons(Value::NIL, Value::NIL);
        }
        h.collect(0);
        let report = h.last_report().unwrap();
        assert_eq!(
            report.dirty_segments_scanned, 0,
            "no mutation → no dirty scans"
        );
        assert!(
            report.words_copied < 100,
            "old structure is not being re-copied"
        );
    }
    assert_eq!(h.car(r.get()), Value::fixnum(999));
}

#[test]
fn guardian_entries_park_with_their_objects() {
    // THE generation-friendliness property (experiment E3's correctness
    // core): entries whose objects live in old generations are not even
    // visited by young collections.
    let mut h = Heap::default();
    let g = h.make_guardian();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let r = h.root(x);
    g.register(&mut h, x);

    h.collect(0); // entry migrates to protected[1]
    assert_eq!(h.last_report().unwrap().guardian_entries_visited, 1);
    h.collect(0); // protected[1] untouched
    assert_eq!(h.last_report().unwrap().guardian_entries_visited, 0);
    h.collect(0);
    assert_eq!(h.last_report().unwrap().guardian_entries_visited, 0);

    // Drop the object: a young collection cannot prove it dead...
    r.set(Value::FALSE);
    h.collect(0);
    assert_eq!(g.poll(&mut h), None);
    // ...but a collection of its generation can.
    h.collect(1);
    assert_eq!(h.last_report().unwrap().guardian_entries_visited, 1);
    let saved = g.poll(&mut h).expect("proven dead by gen-1 collection");
    assert_eq!(h.car(saved), Value::fixnum(1));
    h.verify().unwrap();
}

#[test]
fn flat_ablation_visits_every_entry_every_collection() {
    let mut h = Heap::new(GcConfig {
        flat_protected: true,
        ..GcConfig::new()
    });
    let g = h.make_guardian();
    let mut roots = Vec::new();
    for i in 0..50 {
        let x = h.cons(Value::fixnum(i), Value::NIL);
        roots.push(h.root(x));
        g.register(&mut h, x);
    }
    h.collect(0);
    assert_eq!(h.last_report().unwrap().guardian_entries_visited, 50);
    h.collect(0);
    // The flat list pays for all 50 entries on every single collection —
    // the overhead the paper's design eliminates.
    assert_eq!(h.last_report().unwrap().guardian_entries_visited, 50);
    h.verify().unwrap();
}

#[test]
fn flat_ablation_still_finalizes_correctly() {
    let mut h = Heap::new(GcConfig {
        flat_protected: true,
        ..GcConfig::new()
    });
    let g = h.make_guardian();
    let x = h.cons(Value::fixnum(9), Value::NIL);
    let r = h.root(x);
    g.register(&mut h, x);
    h.collect(0);
    h.collect(0);
    r.set(Value::FALSE);
    h.collect(3);
    assert_eq!(g.poll(&mut h).map(|v| h.car(v)), Some(Value::fixnum(9)));
}

#[test]
fn maybe_collect_fires_on_the_allocation_trigger() {
    let mut h = Heap::new(GcConfig {
        trigger_bytes: 4096,
        ..GcConfig::new()
    });
    assert!(h.maybe_collect().is_none(), "nothing allocated yet");
    for _ in 0..300 {
        let _ = h.cons(Value::NIL, Value::NIL); // 300 * 16 bytes > 4096
    }
    let report = h.maybe_collect().expect("trigger crossed");
    assert_eq!(report.collected_generation, 0);
    assert!(h.maybe_collect().is_none(), "counter reset");
}

#[test]
fn maybe_collect_follows_the_generation_schedule() {
    let mut h = Heap::new(GcConfig {
        trigger_bytes: 0,
        frequency: vec![1, 2, 4, 8],
        ..GcConfig::new()
    });
    let mut gens = Vec::new();
    for _ in 0..8 {
        let _ = h.cons(Value::NIL, Value::NIL);
        gens.push(h.maybe_collect().unwrap().collected_generation);
    }
    assert_eq!(gens, vec![0, 1, 0, 2, 0, 1, 0, 3]);
}

#[test]
fn garbage_is_actually_reclaimed() {
    let mut h = Heap::default();
    for _ in 0..10_000 {
        let _ = h.cons(Value::NIL, Value::NIL);
    }
    let before = h.capacity_bytes();
    h.collect(0);
    let after = h.capacity_bytes();
    assert!(
        after < before / 2,
        "dead segments returned to the pool: {before} -> {after}"
    );
    assert!(h.last_report().unwrap().segments_freed > 0);
}

#[test]
fn large_objects_survive_and_die_correctly() {
    let mut h = Heap::default();
    let big = h.make_vector(5000, Value::fixnum(3)); // ~10 segments
    let r = h.root(big);
    h.collect(0);
    h.verify().unwrap();
    let big = r.get();
    assert_eq!(h.vector_len(big), 5000);
    assert_eq!(h.vector_ref(big, 4999), Value::fixnum(3));
    assert_eq!(h.generation_of(big), Some(1));

    let occupied = h.capacity_bytes();
    drop(r);
    h.collect(1);
    h.verify().unwrap();
    assert!(h.capacity_bytes() < occupied, "large run reclaimed");
}

#[test]
fn deep_structure_survives_collection() {
    let mut h = Heap::default();
    let mut head = Value::NIL;
    for i in 0..50_000 {
        head = h.cons(Value::fixnum(i), head);
    }
    let r = h.root(head);
    h.collect(0);
    h.verify().unwrap();
    // Walk the whole copied list.
    let mut cur = r.get();
    let mut expected = 49_999;
    while !cur.is_nil() {
        assert_eq!(h.car(cur).as_fixnum(), expected);
        expected -= 1;
        cur = h.cdr(cur);
    }
    assert_eq!(expected, -1);
}

#[test]
fn all_object_kinds_survive_collection_with_contents() {
    let mut h = Heap::default();
    let s = h.make_string("the quick brown fox");
    let sym = h.make_symbol("state");
    let bv = h.make_bytevector(13, 0x5A);
    let fl = h.make_flonum(6.25);
    let bx = h.make_box(Value::fixnum(-4));
    let vec = h.make_vector(2, s);
    let rec = h.make_record(sym, &[bv, fl, bx, vec]);
    let weak = h.weak_cons(rec, Value::fixnum(1));
    let r = h.root(rec);
    let w = h.root(weak);

    h.collect(0);
    h.collect(1);
    h.verify().unwrap();

    let rec = r.get();
    assert_eq!(h.symbol_name(h.record_descriptor(rec)), "state");
    let bv = h.record_ref(rec, 0);
    assert_eq!(h.bytevector_value(bv), vec![0x5A; 13]);
    assert_eq!(h.flonum_value(h.record_ref(rec, 1)), 6.25);
    assert_eq!(h.box_ref(h.record_ref(rec, 2)), Value::fixnum(-4));
    let v = h.record_ref(rec, 3);
    assert_eq!(h.string_value(h.vector_ref(v, 1)), "the quick brown fox");
    // The weak pair's referent survived: the weak car was forwarded.
    assert_eq!(h.car(w.get()), rec);
}

#[test]
fn collecting_the_oldest_generation_reclaims_old_garbage() {
    let mut h = Heap::default();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let r = h.root(x);
    for g in [0u8, 1, 2, 3] {
        h.collect(g);
    }
    assert_eq!(h.generation_of(r.get()), Some(3));
    let before = h.capacity_bytes();
    drop(r);
    h.collect(3);
    h.verify().unwrap();
    assert!(h.capacity_bytes() <= before);
}

#[test]
fn guardian_entry_for_old_object_crawls_up_to_it() {
    // Registering an already-old object puts the entry on protected[0];
    // the entry must migrate upward collection by collection without ever
    // falsely finalizing the (live) object.
    let mut h = Heap::default();
    let x = h.cons(Value::fixnum(6), Value::NIL);
    let r = h.root(x);
    h.collect(0);
    h.collect(1); // x in generation 2
    let g = h.make_guardian();
    g.register(&mut h, r.get());

    h.collect(0);
    h.collect(0);
    assert_eq!(g.poll(&mut h), None);
    h.verify().unwrap();

    drop(r);
    h.collect(2);
    let saved = g
        .poll(&mut h)
        .expect("found dead once its generation was collected");
    assert_eq!(h.car(saved), Value::fixnum(6));
}

#[test]
fn pointer_free_objects_are_copied_without_scanning() {
    // Strings, bytevectors, and flonums live in the pure space (the
    // paper's cited segregate-by-characteristics design): the collector
    // copies them but never scans their payloads.
    let mut h = Heap::default();
    let mut keep = Vec::new();
    for i in 0..200 {
        let s = h.make_string(&format!("payload string number {i:03}"));
        keep.push(h.root(s));
    }
    let bv = h.make_bytevector(10_000, 0xEE);
    keep.push(h.root(bv));
    h.collect(0);
    h.verify().unwrap();
    let report = h.last_report().unwrap();
    assert!(
        report.pure_words_skipped > 1_000,
        "the pure-space scan skip did real work: {}",
        report.pure_words_skipped
    );
    // Contents intact after the unscanned copy.
    for (i, r) in keep[..200].iter().enumerate() {
        assert_eq!(
            h.string_value(r.get()),
            format!("payload string number {i:03}")
        );
    }
    assert_eq!(h.bytevector_ref(keep[200].get(), 9_999), 0xEE);
}

#[test]
fn pure_space_objects_interlink_correctly_with_typed_ones() {
    // A vector (typed, scanned) holding strings (pure, unscanned): the
    // scan of the vector forwards the strings; the strings' segments are
    // never scanned.
    let mut h = Heap::default();
    let v = h.make_vector(50, Value::NIL);
    for i in 0..50 {
        let s = h.make_string(&format!("{i}"));
        h.vector_set(v, i, s);
    }
    let r = h.root(v);
    h.collect(0);
    h.collect(1);
    h.verify().unwrap();
    for i in 0..50 {
        let s = h.vector_ref(r.get(), i);
        assert_eq!(h.string_value(s), format!("{i}"));
    }
}

#[test]
fn capped_promotion_is_a_tenure_ceiling() {
    use guardians_gc::Promotion;
    let mut h = Heap::new(GcConfig {
        promotion: Promotion::Capped(2),
        ..GcConfig::new()
    });
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let r = h.root(x);
    for g in [0u8, 1, 2, 3, 3] {
        h.collect(g);
        h.verify().unwrap();
    }
    assert_eq!(
        h.generation_of(r.get()),
        Some(2),
        "never promoted past the cap"
    );
    assert_eq!(h.car(r.get()), Value::fixnum(1));

    // Guardian entries park at the cap too and stay generation-friendly.
    let g = h.make_guardian();
    let y = h.cons(Value::fixnum(2), Value::NIL);
    let yr = h.root(y);
    g.register(&mut h, y);
    h.collect(0);
    h.collect(1);
    h.collect(2);
    h.collect(0);
    assert_eq!(
        h.last_report().unwrap().guardian_entries_visited,
        0,
        "parked at gen 2"
    );
    yr.set(Value::FALSE);
    h.collect(2);
    assert_eq!(g.poll(&mut h).map(|v| h.car(v)), Some(Value::fixnum(2)));
}

#[test]
fn same_generation_promotion_works_end_to_end() {
    use guardians_gc::Promotion;
    let mut h = Heap::new(GcConfig {
        promotion: Promotion::SameGeneration,
        ..GcConfig::new()
    });
    let x = h.cons(Value::fixnum(7), Value::NIL);
    let r = h.root(x);
    h.collect(0);
    assert_eq!(h.generation_of(r.get()), Some(1), "leaves the nursery once");
    for _ in 0..3 {
        h.collect(1);
        h.verify().unwrap();
        assert_eq!(h.generation_of(r.get()), Some(1), "then stays put");
    }
    // Guardians still work under the two-speed policy.
    let g = h.make_guardian();
    g.register(&mut h, r.get());
    r.set(Value::FALSE);
    h.collect(1);
    assert_eq!(g.poll(&mut h).map(|v| h.car(v)), Some(Value::fixnum(7)));
    h.verify().unwrap();
}
