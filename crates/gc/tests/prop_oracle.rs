//! Model-based property test: random mutator programs are run against
//! both the real heap and a shadow *oracle* that computes reachability,
//! guardian deliveries, weak-pointer breaks, and generation aging from
//! first principles. After every collection the two worlds must agree on:
//!
//! * which objects are reachable from the roots, with intact identity and
//!   link structure;
//! * each object's generation;
//! * exactly which (id, guardian) deliveries each live guardian yields,
//!   with registration multiplicity;
//! * which weak pointers are broken vs. forwarded (including the
//!   guardian-salvage interaction: weak pointers to salvaged objects are
//!   *not* broken);
//! * full structural heap validity ([`Heap::verify`]).
//!
//! Heap objects are vectors `[id, left, right, weak-pair]` so the oracle
//! can identify them; the weak-pair slot gives every object one weak
//! out-edge, which is mutated freely to exercise the dirty-weak-segment
//! paths.

use guardians_gc::{GcConfig, Guardian, Heap, Promotion, Rooted, Value};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Payload length of a "large" node: with the header and the four
/// bookkeeping slots this exceeds two segments, so the vector body lives
/// in a multi-segment run and is forwarded with cross-run bulk copies.
const LARGE_PAYLOAD: usize = 1200;

#[derive(Clone, Debug)]
enum Op {
    /// Allocate a node; optionally root it. Large nodes carry a
    /// multi-segment payload that must survive copying intact.
    New {
        rooted: bool,
        large: bool,
    },
    /// Set a strong link (side 0 = left, 1 = right) between reachable nodes.
    Link {
        from: usize,
        to: usize,
        side: u8,
    },
    /// Clear a strong link.
    Unlink {
        from: usize,
        side: u8,
    },
    /// Point a node's weak edge at a reachable node.
    SetWeak {
        from: usize,
        to: usize,
    },
    /// Root an already-reachable node.
    AddRoot {
        node: usize,
    },
    /// Drop one root.
    DropRoot {
        root: usize,
    },
    NewGuardian,
    DropGuardian {
        guardian: usize,
    },
    /// Register a reachable node with a live guardian.
    Register {
        node: usize,
        guardian: usize,
    },
    Collect {
        gen: u8,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (any::<bool>(), 0u8..8).prop_map(|(rooted, l)| Op::New { rooted, large: l == 0 }),
        3 => (any::<usize>(), any::<usize>(), 0u8..2).prop_map(|(from, to, side)| Op::Link { from, to, side }),
        1 => (any::<usize>(), 0u8..2).prop_map(|(from, side)| Op::Unlink { from, side }),
        2 => (any::<usize>(), any::<usize>()).prop_map(|(from, to)| Op::SetWeak { from, to }),
        1 => any::<usize>().prop_map(|node| Op::AddRoot { node }),
        2 => any::<usize>().prop_map(|root| Op::DropRoot { root }),
        1 => Just(Op::NewGuardian),
        1 => any::<usize>().prop_map(|guardian| Op::DropGuardian { guardian }),
        3 => (any::<usize>(), any::<usize>()).prop_map(|(node, guardian)| Op::Register { node, guardian }),
        2 => (0u8..4).prop_map(|gen| Op::Collect { gen }),
    ]
}

#[derive(Clone, Debug)]
struct MNode {
    left: Option<u32>,
    right: Option<u32>,
    weak: Option<u32>,
    gen: u8,
}

#[derive(Clone, Debug)]
struct MEntry {
    obj: u32,
    guardian: usize,
    gen: u8,
}

/// Oracle-side guardian state.
///
/// A dropped guardian's objects are only released once its death is
/// *proven* — i.e. once a collection covers the generation its tconc
/// lives in. Until then the collector (correctly, conservatively) treats
/// the old-generation tconc as live: entries are held, dead objects are
/// even resurrected into the zombie tconc, retained there until the
/// tconc's generation is finally collected. The oracle models all of
/// that.
#[derive(Clone, Debug)]
struct MGuardian {
    /// The Rust handle (the root) still exists.
    alive: bool,
    /// Death has been proven by a collection covering the tconc.
    dead_proven: bool,
    /// Generation the tconc currently lives in.
    tconc_gen: u8,
    /// Objects resurrected into the tconc while it was an unproven
    /// zombie: retained by the tconc, never deliverable.
    pending: Vec<u32>,
    /// Deliveries awaiting the post-collection drain (alive guardians).
    expected: Vec<u32>,
}

/// The oracle.
#[derive(Default)]
struct Model {
    nodes: BTreeMap<u32, MNode>,
    roots: BTreeSet<u32>,
    entries: Vec<MEntry>,
    guardians: Vec<MGuardian>,
    next_id: u32,
}

impl Model {
    fn closure(&self, seeds: impl IntoIterator<Item = u32>) -> BTreeSet<u32> {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<u32> = seeds.into_iter().collect();
        while let Some(id) = stack.pop() {
            if !self.nodes.contains_key(&id) || !seen.insert(id) {
                continue;
            }
            let n = &self.nodes[&id];
            stack.extend(n.left);
            stack.extend(n.right);
            // weak edges do not retain
        }
        seen
    }

    fn reachable_from_roots(&self) -> BTreeSet<u32> {
        self.closure(self.roots.iter().copied())
    }

    /// Whether guardian `gi`'s tconc counts as accessible (the paper's
    /// `forwarded?` on the tconc) for a collection of generation `g`:
    /// the handle is live, or death is not yet proven because the tconc
    /// sits in an uncollected older generation.
    fn tconc_ok(&self, gi: usize, g: u8) -> bool {
        let gd = &self.guardians[gi];
        gd.alive || (!gd.dead_proven && gd.tconc_gen > g)
    }

    fn collect(&mut self, g: u8, target: u8) {
        // Seeds: roots, objects in uncollected generations, and objects
        // retained by surviving (alive or unproven-zombie) tconcs.
        let auto: Vec<u32> = self
            .nodes
            .iter()
            .filter(|(_, n)| n.gen > g)
            .map(|(id, _)| *id)
            .collect();
        let held: Vec<u32> = (0..self.guardians.len())
            .filter(|&gi| self.tconc_ok(gi, g))
            .flat_map(|gi| self.guardians[gi].pending.to_vec())
            .collect();
        let survivors = self.closure(self.roots.iter().copied().chain(auto).chain(held));

        // Guardian entry processing (paper block structure).
        let mut delivered: Vec<(usize, u32)> = Vec::new();
        let mut kept = Vec::new();
        for mut e in std::mem::take(&mut self.entries) {
            if e.gen > g {
                kept.push(e); // parked in an older protected list
                continue;
            }
            let tconc_ok = self.tconc_ok(e.guardian, g);
            if survivors.contains(&e.obj) {
                if tconc_ok {
                    e.gen = target;
                    kept.push(e);
                }
                // proven-dead guardian: entry dropped though the object lives
            } else if tconc_ok {
                delivered.push((e.guardian, e.obj));
            }
            // dead object + proven-dead guardian: dropped silently
        }
        self.entries = kept;

        // Resurrection closure of finalized objects (delivered to alive
        // guardians or parked in zombie tconcs — both are saved).
        let resurrected = self.closure(delivered.iter().map(|(_, id)| *id));
        let live: BTreeSet<u32> = survivors.union(&resurrected).copied().collect();

        for (id, n) in self.nodes.iter_mut() {
            if live.contains(id) && n.gen <= g {
                n.gen = target;
            }
        }
        self.nodes.retain(|id, _| live.contains(id));
        for n in self.nodes.values_mut() {
            if let Some(t) = n.weak {
                if !live.contains(&t) {
                    n.weak = None; // broken
                }
            }
        }
        for (gi, id) in delivered {
            if self.guardians[gi].alive {
                self.guardians[gi].expected.push(id);
            } else {
                // Saved into the zombie tconc: retained but undeliverable.
                self.guardians[gi].pending.push(id);
            }
        }

        // Tconc fates: age surviving tconcs; prove zombie deaths.
        for gd in &mut self.guardians {
            if gd.dead_proven {
                continue;
            }
            if gd.alive {
                if gd.tconc_gen <= g {
                    gd.tconc_gen = target;
                }
            } else if gd.tconc_gen <= g {
                // The collection covered the zombie tconc: death proven,
                // its pending objects lose their last support.
                gd.dead_proven = true;
                gd.pending.clear();
            } else {
                // Still unproven; pending survivors age with the rest.
            }
        }
        // Hygiene: prune pending ids that are no longer modelled.
        for gd in &mut self.guardians {
            gd.pending.retain(|id| self.nodes.contains_key(id));
        }
    }
}

/// Deterministic payload pattern for large-node slot `k`.
fn payload_word(id: u32, k: usize) -> i64 {
    id as i64 * 10_000 + k as i64
}

/// Heap-side state.
struct World {
    heap: Heap,
    model: Model,
    roots: HashMap<u32, Rooted>,
    guardians: Vec<Option<Guardian>>,
    /// id -> current heap value, refreshed by walking from the roots.
    id2val: HashMap<u32, Value>,
}

impl World {
    fn new(promotion: Promotion) -> World {
        World {
            heap: Heap::new(GcConfig {
                promotion,
                ..GcConfig::new()
            }),
            model: Model::default(),
            roots: HashMap::new(),
            guardians: Vec::new(),
            id2val: HashMap::new(),
        }
    }

    fn node_id(&self, v: Value) -> u32 {
        self.heap.vector_ref(v, 0).as_fixnum() as u32
    }

    /// Recomputes id→value by walking the heap graph from the roots.
    fn rebuild_id_map(&mut self) {
        self.id2val.clear();
        let mut stack: Vec<Value> = self.roots.values().map(|r| r.get()).collect();
        while let Some(v) = stack.pop() {
            if !self.heap.is_vector(v) {
                continue;
            }
            let id = self.node_id(v);
            if self.id2val.insert(id, v).is_some() {
                continue;
            }
            for side in [1, 2] {
                let link = self.heap.vector_ref(v, side);
                if !link.is_false() {
                    stack.push(link);
                }
            }
        }
    }

    fn reachable_ids(&self) -> Vec<u32> {
        let mut ids: Vec<u32> = self.id2val.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn pick_reachable(&self, raw: usize) -> Option<u32> {
        let ids = self.reachable_ids();
        if ids.is_empty() {
            None
        } else {
            Some(ids[raw % ids.len()])
        }
    }

    fn pick_live_guardian(&self, raw: usize) -> Option<usize> {
        let live: Vec<usize> = self
            .guardians
            .iter()
            .enumerate()
            .filter(|(_, g)| g.is_some())
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            None
        } else {
            Some(live[raw % live.len()])
        }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::New { rooted, large } => {
                let id = self.model.next_id;
                self.model.next_id += 1;
                let wp = self.heap.weak_cons(Value::FALSE, Value::NIL);
                let len = if large { 4 + LARGE_PAYLOAD } else { 4 };
                let v = self.heap.make_vector(len, Value::FALSE);
                self.heap.vector_set(v, 0, Value::fixnum(id as i64));
                self.heap.vector_set(v, 3, wp);
                // A recognisable payload pattern; checked after every
                // collection to prove cross-run copies move bodies intact.
                for k in 4..len {
                    self.heap
                        .vector_set(v, k, Value::fixnum(payload_word(id, k)));
                }
                self.model.nodes.insert(
                    id,
                    MNode {
                        left: None,
                        right: None,
                        weak: None,
                        gen: 0,
                    },
                );
                if rooted {
                    self.roots.insert(id, self.heap.root(v));
                    self.model.roots.insert(id);
                    self.id2val.insert(id, v);
                } else {
                    // Only reachable if later linked before a collection;
                    // keep it addressable until then.
                    self.id2val.insert(id, v);
                }
            }
            Op::Link { from, to, side } => {
                let (Some(f), Some(t)) = (self.pick_reachable(from), self.pick_reachable(to))
                else {
                    return;
                };
                let fv = self.id2val[&f];
                let tv = self.id2val[&t];
                self.heap.vector_set(fv, 1 + side as usize, tv);
                let n = self.model.nodes.get_mut(&f).expect("model node");
                if side == 0 {
                    n.left = Some(t);
                } else {
                    n.right = Some(t);
                }
            }
            Op::Unlink { from, side } => {
                let Some(f) = self.pick_reachable(from) else {
                    return;
                };
                let fv = self.id2val[&f];
                self.heap.vector_set(fv, 1 + side as usize, Value::FALSE);
                let n = self.model.nodes.get_mut(&f).expect("model node");
                if side == 0 {
                    n.left = None;
                } else {
                    n.right = None;
                }
            }
            Op::SetWeak { from, to } => {
                let (Some(f), Some(t)) = (self.pick_reachable(from), self.pick_reachable(to))
                else {
                    return;
                };
                let fv = self.id2val[&f];
                let tv = self.id2val[&t];
                let wp = self.heap.vector_ref(fv, 3);
                self.heap.set_car(wp, tv);
                self.model.nodes.get_mut(&f).expect("model node").weak = Some(t);
            }
            Op::AddRoot { node } => {
                let Some(id) = self.pick_reachable(node) else {
                    return;
                };
                if self.roots.contains_key(&id) {
                    return;
                }
                let v = self.id2val[&id];
                self.roots.insert(id, self.heap.root(v));
                self.model.roots.insert(id);
            }
            Op::DropRoot { root } => {
                let mut keys: Vec<u32> = self.roots.keys().copied().collect();
                keys.sort_unstable();
                if keys.is_empty() {
                    return;
                }
                let id = keys[root % keys.len()];
                self.roots.remove(&id);
                self.model.roots.remove(&id);
            }
            Op::NewGuardian => {
                let g = self.heap.make_guardian();
                self.guardians.push(Some(g));
                self.model.guardians.push(MGuardian {
                    alive: true,
                    dead_proven: false,
                    tconc_gen: 0,
                    pending: Vec::new(),
                    expected: Vec::new(),
                });
            }
            Op::DropGuardian { guardian } => {
                let Some(i) = self.pick_live_guardian(guardian) else {
                    return;
                };
                self.guardians[i] = None;
                self.model.guardians[i].alive = false;
            }
            Op::Register { node, guardian } => {
                let (Some(id), Some(gi)) =
                    (self.pick_reachable(node), self.pick_live_guardian(guardian))
                else {
                    return;
                };
                let v = self.id2val[&id];
                let g = self.guardians[gi].as_ref().expect("live guardian");
                g.register(&mut self.heap, v);
                self.model.entries.push(MEntry {
                    obj: id,
                    guardian: gi,
                    gen: 0,
                });
            }
            Op::Collect { gen } => self.collect_and_check(gen),
        }
    }

    fn collect_and_check(&mut self, gen: u8) {
        let gen = gen.min(self.heap.config().max_generation());
        let target = self
            .heap
            .config()
            .promotion
            .target(gen, self.heap.config().max_generation());
        self.heap.collect(gen);
        self.heap.verify().expect("heap verifies after collection");
        self.model.collect(gen, target);
        self.rebuild_id_map();

        // 1. Reachability agreement.
        let heap_reachable: BTreeSet<u32> = self.id2val.keys().copied().collect();
        let model_reachable = self.model.reachable_from_roots();
        assert_eq!(
            heap_reachable, model_reachable,
            "root-reachable sets diverged"
        );

        // 2. Structure, generation, and weak-edge agreement per node.
        for (&id, &v) in &self.id2val {
            let m = &self.model.nodes[&id];
            assert_eq!(
                self.heap.generation_of(v),
                Some(m.gen),
                "generation of node {id} diverged"
            );
            for (side, expect) in [(1usize, m.left), (2usize, m.right)] {
                let link = self.heap.vector_ref(v, side);
                match expect {
                    Some(t) => assert_eq!(self.node_id(link), t, "link of node {id} diverged"),
                    None => assert!(link.is_false(), "node {id} should have no link {side}"),
                }
            }
            // Large-node payloads (multi-segment runs) survive bit-intact.
            for k in 4..self.heap.vector_len(v) {
                assert_eq!(
                    self.heap.vector_ref(v, k).as_fixnum(),
                    payload_word(id, k),
                    "payload word {k} of large node {id} corrupted by copying"
                );
            }
            let wp = self.heap.vector_ref(v, 3);
            let wcar = self.heap.car(wp);
            match m.weak {
                Some(t) => {
                    assert!(
                        self.heap.is_vector(wcar),
                        "weak edge of node {id} wrongly broken (expected node {t})"
                    );
                    assert_eq!(self.node_id(wcar), t, "weak edge of node {id} diverged");
                }
                None => {
                    assert!(
                        wcar.is_false(),
                        "weak edge of node {id} should be broken, points to node {}",
                        self.node_id(wcar)
                    );
                }
            }
        }

        // 3. Guardian deliveries, as multisets of ids, drained right away.
        for (gi, slot) in self.guardians.iter().enumerate() {
            let Some(g) = slot else { continue };
            let mut got: Vec<u32> = Vec::new();
            let mut polled = Vec::new();
            while let Some(v) = g.poll(&mut self.heap) {
                assert!(self.heap.is_vector(v), "delivered value is a node");
                got.push(self.heap.vector_ref(v, 0).as_fixnum() as u32);
                polled.push(v);
            }
            got.sort_unstable();
            let mut want = std::mem::take(&mut self.model.guardians[gi].expected);
            want.sort_unstable();
            assert_eq!(got, want, "guardian {gi} deliveries diverged");
        }
    }
}

/// Scripted regression: large nodes (multi-segment runs) linked from a
/// small rooted node survive repeated promotions — each one a cross-run
/// bulk copy — with payloads intact, including after old-generation
/// mutation marks the run's head segment dirty for the remembered set.
#[test]
fn large_object_runs_survive_cross_run_copies() {
    let mut w = World::new(Promotion::NextGeneration);
    w.apply(&Op::NewGuardian);
    w.apply(&Op::New {
        rooted: true,
        large: false,
    }); // node 0: the anchor
    w.apply(&Op::New {
        rooted: false,
        large: true,
    }); // node 1
    w.apply(&Op::New {
        rooted: false,
        large: true,
    }); // node 2
    w.apply(&Op::Link {
        from: 0,
        to: 1,
        side: 0,
    });
    w.apply(&Op::Link {
        from: 1,
        to: 2,
        side: 1,
    });
    // Promote through every generation: each collection forwards both
    // large runs with cross-run copy_words calls.
    for gen in [0u8, 0, 1, 2, 3] {
        w.apply(&Op::Collect { gen });
    }
    // Mutate a link on the (now old) large node: its run head goes dirty
    // and the next young collection scans the run via the remembered set.
    w.apply(&Op::New {
        rooted: false,
        large: true,
    }); // node 3, generation 0
    w.apply(&Op::Link {
        from: 1,
        to: 3,
        side: 0,
    });
    w.apply(&Op::Collect { gen: 0 });
    // Drop the anchor: everything (runs included) must be reclaimed
    // without tripping verification.
    w.apply(&Op::DropRoot { root: 0 });
    w.apply(&Op::Collect { gen: 3 });
    w.apply(&Op::Collect { gen: 3 });
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn random_mutators_agree_with_the_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        policy in 0u8..3,
    ) {
        let promotion = match policy {
            0 => Promotion::NextGeneration,
            1 => Promotion::Capped(2),
            _ => Promotion::SameGeneration,
        };
        let mut w = World::new(promotion);
        // Always have at least one guardian in play.
        w.apply(&Op::NewGuardian);
        for op in &ops {
            w.apply(op);
        }
        // Final full collection: everything must still agree.
        w.collect_and_check(3);
        w.collect_and_check(3);
    }
}
