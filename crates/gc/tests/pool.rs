//! Shared-pool multi-heap contracts: several heaps drawing on one
//! [`SegmentPool`] must behave exactly like private heaps (byte-identical
//! observables), surface pool/watermark scarcity as clean
//! [`GcError::Exhausted`]s on the `try_*` paths, return every segment on
//! teardown, and keep their metrics/census strictly per-heap.

use guardians_gc::{GcConfig, GcError, Heap, SegmentPool, Value};

/// A deterministic churn workload: list building with a rooted survivor
/// window, guardian registrations, explicit collections. Returns the
/// heap's deterministic observables.
fn churn(h: &mut Heap, items: i64) -> (u64, u64, u64, u64, String) {
    let g = h.make_guardian();
    let mut window = Vec::new();
    for i in 0..items {
        let s = h.make_string(&format!("session-{i}"));
        let p = h.cons(Value::fixnum(i), s);
        g.register(h, p);
        window.push(h.root(p));
        if window.len() > 32 {
            window.remove(0);
        }
        if i % 100 == 99 {
            h.collect(0);
        }
    }
    h.collect(h.config().generations - 1);
    let salvaged = g.drain(h).len() as u64;
    let stats = h.stats();
    (
        stats.objects_allocated,
        stats.total_words_copied,
        salvaged,
        h.collection_count(),
        h.census().to_json(),
    )
}

#[test]
fn pooled_heaps_match_private_observables_exactly() {
    let pool = SegmentPool::unbounded();
    let mut private = Heap::new(GcConfig::default());
    let mut pooled_a = Heap::with_pool(GcConfig::default(), pool.clone(), None);
    let mut pooled_b = Heap::with_pool(GcConfig::default(), pool.clone(), Some(4096));

    let want = churn(&mut private, 700);
    assert_eq!(churn(&mut pooled_a, 700), want, "pooled == private");
    assert_eq!(churn(&mut pooled_b, 700), want, "watermarked == private");

    pooled_a.verify().expect("pooled heap verifies");
    pooled_b.verify().expect("watermarked heap verifies");
}

#[test]
fn watermark_exhaustion_leaves_siblings_byte_identical() {
    // Zone A is quota-capped far below the pool capacity; draining A must
    // not perturb B in any observable way.
    let pool = SegmentPool::with_capacity(4096);
    let mut a = Heap::with_pool(GcConfig::default(), pool.clone(), Some(4));
    let mut b = Heap::with_pool(GcConfig::default(), pool.clone(), None);
    let mut solo = Heap::new(GcConfig::default());

    // Exhaust A: keep everything rooted so collection cannot help.
    let mut a_roots = Vec::new();
    let exhausted = loop {
        match a.try_cons(Value::fixnum(1), Value::NIL) {
            Ok(p) => a_roots.push(a.root(p)),
            Err(GcError::Exhausted { needed, remaining }) => break (needed, remaining),
        }
    };
    assert_eq!(exhausted, (1, 0), "clean refusal at the watermark");
    assert!(pool.remaining() > 0, "pool itself has headroom left");
    a.verify().expect("exhausted heap intact");

    // B (pool-backed) and a private solo heap run the same workload.
    assert_eq!(churn(&mut b, 500), churn(&mut solo, 500));
    b.verify().expect("sibling verifies");

    // A can still *collect* within its watermark once roots drop.
    a_roots.clear();
    a.collect(0);
    a.verify().expect("exhausted zone recovers by collecting");
    assert!(a.try_cons(Value::fixnum(2), Value::NIL).is_ok());
}

#[test]
fn pool_exhaustion_is_shared_scarcity_and_teardown_restores_it() {
    let pool = SegmentPool::with_capacity(12);
    let mut b = Heap::with_pool(GcConfig::default(), pool.clone(), None);
    // B takes one segment up front so it exists before scarcity hits.
    let keep = {
        let p = b.cons(Value::fixnum(7), Value::NIL);
        b.root(p)
    };

    // A, unmarked, drains the rest of the pool.
    let mut a = Heap::with_pool(GcConfig::default(), pool.clone(), None);
    let mut a_roots = Vec::new();
    while let Ok(v) = a.try_make_vector(400, Value::NIL) {
        a_roots.push(a.root(v));
    }
    assert_eq!(pool.remaining(), 0);
    // Scarcity is shared: B's preflight refuses a fresh-segment demand.
    let err = b.try_make_vector(400, Value::NIL).unwrap_err();
    let GcError::Exhausted { remaining, .. } = err;
    assert_eq!(remaining, 0);

    // Tearing A down returns its segments; B is immediately unblocked.
    let a_outstanding: usize = a.generation_usage().iter().map(|u| u.segments).sum();
    drop(a_roots);
    drop(a);
    assert!(pool.remaining() >= a_outstanding as u64);
    b.try_make_vector(400, Value::NIL)
        .expect("teardown restored shared capacity");
    assert_eq!(b.car(keep.get()), Value::fixnum(7));
    b.verify().expect("sibling valid throughout");

    drop(keep);
    drop(b);
    let stats = pool.stats();
    assert_eq!(stats.outstanding, 0, "every segment returned");
    assert_eq!(stats.attached_tables, 0, "no lingering owners");
}

#[test]
fn metrics_and_census_stay_per_heap() {
    // The cross-zone bleed check: collecting (and allocating) in one heap
    // must leave a sibling's metrics registry, pause histogram, and
    // census untouched — telemetry is attributable per zone.
    let pool = SegmentPool::unbounded();
    let mut busy = Heap::with_pool(GcConfig::default(), pool.clone(), None);
    let mut idle = Heap::with_pool(GcConfig::default(), pool.clone(), None);
    let idle_census_before = idle.census();

    let _ = churn(&mut busy, 600);
    assert!(busy.metrics().counter("gc.collections") > 0);
    assert!(busy.metrics().get_histogram("gc.pause_ns").is_some());

    assert_eq!(idle.metrics().counter("gc.collections"), 0);
    assert!(
        idle.metrics().get_histogram("gc.pause_ns").is_none(),
        "no pause sample leaked across heaps"
    );
    assert_eq!(idle.census(), idle_census_before);
    assert_eq!(idle.collection_count(), 0);
}
