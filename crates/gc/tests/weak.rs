//! Weak-pair semantics (paper Sections 2–4) and their interaction with
//! guardians.

use guardians_gc::{Heap, Value};

fn full_collect(h: &mut Heap) {
    h.collect(h.config().max_generation());
    h.verify().expect("heap valid after collection");
}

#[test]
fn weak_car_breaks_when_referent_dies() {
    let mut h = Heap::default();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let w = h.weak_cons(x, Value::fixnum(2));
    let r = h.root(w);
    full_collect(&mut h);
    let w = r.get();
    assert_eq!(h.car(w), Value::FALSE, "#f is placed in the car field");
    assert_eq!(h.cdr(w), Value::fixnum(2), "cdr is a normal pointer");
}

#[test]
fn weak_car_follows_surviving_referent() {
    let mut h = Heap::default();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let xr = h.root(x);
    let w = h.weak_cons(x, Value::NIL);
    let wr = h.root(w);
    full_collect(&mut h);
    assert_eq!(
        h.car(wr.get()),
        xr.get(),
        "weak car updated to the new address"
    );
    assert_eq!(h.car(xr.get()), Value::fixnum(1));
}

#[test]
fn weak_pointer_does_not_keep_referent_alive() {
    // "an object that is not accessible except by way of one or more weak
    // sets is ultimately discarded".
    let mut h = Heap::default();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let w1 = h.weak_cons(x, Value::NIL);
    let w2 = h.weak_cons(x, Value::NIL);
    let r1 = h.root(w1);
    let r2 = h.root(w2);
    full_collect(&mut h);
    assert_eq!(h.car(r1.get()), Value::FALSE);
    assert_eq!(
        h.car(r2.get()),
        Value::FALSE,
        "every weak pointer to it is broken"
    );
}

#[test]
fn strong_cdr_keeps_referent_alive_for_the_weak_car() {
    // Same object weakly in one pair's car and strongly in another's cdr.
    let mut h = Heap::default();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let strong = h.cons(Value::NIL, x);
    let weak = h.weak_cons(x, Value::NIL);
    let sr = h.root(strong);
    let wr = h.root(weak);
    full_collect(&mut h);
    let alive = h.cdr(sr.get());
    assert_eq!(h.car(wr.get()), alive, "weak car sees the surviving object");
}

#[test]
fn guardian_saved_object_keeps_its_weak_pointers() {
    // The ordering requirement in Section 4: the weak pass runs after the
    // guardian pass, "so if the car field of a weak pair points to an
    // object that has been salvaged, the object will still be in the car
    // field after collection."
    let mut h = Heap::default();
    let g = h.make_guardian();
    let x = h.cons(Value::fixnum(42), Value::NIL);
    let w = h.weak_cons(x, Value::NIL);
    let wr = h.root(w);
    g.register(&mut h, x);

    full_collect(&mut h);
    let saved = g.poll(&mut h).expect("salvaged");
    assert_eq!(
        h.car(wr.get()),
        saved,
        "weak pointer NOT broken for a salvaged object"
    );
    assert_eq!(h.car(saved), Value::fixnum(42));
}

#[test]
fn weak_registration_does_not_block_guardian_transfer() {
    // "The existence of a weak pointer to an object in the car field of a
    // weak pair does not prevent the object from being transferred from
    // the accessible list of a guardian to the inaccessible list."
    let mut h = Heap::default();
    let g = h.make_guardian();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let w = h.weak_cons(x, Value::NIL);
    let _wr = h.root(w);
    g.register(&mut h, x);
    full_collect(&mut h);
    assert!(
        g.poll(&mut h).is_some(),
        "weak pointer alone does not make x accessible"
    );
}

#[test]
fn weak_car_non_pointer_is_untouched() {
    let mut h = Heap::default();
    let w1 = h.weak_cons(Value::fixnum(5), Value::NIL);
    let w2 = h.weak_cons(Value::FALSE, Value::NIL);
    let w3 = h.weak_cons(Value::char('q'), Value::NIL);
    let (r1, r2, r3) = (h.root(w1), h.root(w2), h.root(w3));
    full_collect(&mut h);
    assert_eq!(h.car(r1.get()), Value::fixnum(5));
    assert_eq!(h.car(r2.get()), Value::FALSE);
    assert_eq!(h.car(r3.get()), Value::char('q'));
}

#[test]
fn old_weak_pair_mutated_to_young_referent() {
    // A weak pair aged into an old generation, then set-car!'d to a young
    // object: the write barrier must get the weak pair into the weak pass
    // even though its own generation is not collected.
    let mut h = Heap::default();
    let w = h.weak_cons(Value::NIL, Value::NIL);
    let wr = h.root(w);
    h.collect(0);
    h.collect(1); // weak pair in generation 2
    assert_eq!(h.generation_of(wr.get()), Some(2));

    // Case 1: young referent dies.
    let young = h.cons(Value::fixnum(1), Value::NIL);
    h.set_car(wr.get(), young);
    h.collect(0);
    h.verify().unwrap();
    assert_eq!(
        h.car(wr.get()),
        Value::FALSE,
        "dead young referent broken in old weak pair"
    );

    // Case 2: young referent survives.
    let young2 = h.cons(Value::fixnum(2), Value::NIL);
    let keep = h.root(young2);
    h.set_car(wr.get(), young2);
    h.collect(0);
    h.verify().unwrap();
    assert_eq!(
        h.car(wr.get()),
        keep.get(),
        "surviving young referent forwarded"
    );
    assert_eq!(h.car(keep.get()), Value::fixnum(2));
}

#[test]
fn clean_old_weak_pairs_are_not_scanned() {
    let mut h = Heap::default();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let xr = h.root(x);
    let w = h.weak_cons(x, Value::NIL);
    let _wr = h.root(w);
    h.collect(0);
    h.collect(1); // both in generation 2, weak pair clean
    let _ = xr;
    h.collect(0);
    let report = h.last_report().unwrap();
    assert_eq!(
        report.weak_pairs_scanned, 0,
        "no young weak pairs, no dirty old ones"
    );
}

#[test]
fn weak_list_partial_deaths() {
    // A list of weak pairs over objects with mixed lifetimes.
    let mut h = Heap::default();
    let mut keep_roots = Vec::new();
    let mut list = Value::NIL;
    for i in 0..20 {
        let obj = h.cons(Value::fixnum(i), Value::NIL);
        if i % 3 == 0 {
            keep_roots.push(h.root(obj));
        }
        list = h.weak_cons(obj, list);
    }
    let lr = h.root(list);
    full_collect(&mut h);

    let mut cur = lr.get();
    let mut idx = 19i64;
    while !cur.is_nil() {
        let car = h.car(cur);
        if idx % 3 == 0 {
            assert!(car.is_pair_ptr(), "kept object {idx} survives");
            assert_eq!(h.car(car), Value::fixnum(idx));
        } else {
            assert_eq!(car, Value::FALSE, "dropped object {idx} broken");
        }
        idx -= 1;
        cur = h.cdr(cur);
    }
    assert_eq!(idx, -1);
}

#[test]
fn self_referential_weak_pair() {
    let mut h = Heap::default();
    let w = h.weak_cons(Value::NIL, Value::NIL);
    h.set_car(w, w); // weak pointer to itself
    let r = h.root(w);
    full_collect(&mut h);
    let w = r.get();
    assert_eq!(
        h.car(w),
        w,
        "rooted self-weak pair keeps (forwarded) self pointer"
    );
    h.verify().unwrap();
}

#[test]
fn chain_of_weak_pairs_is_itself_collectable() {
    let mut h = Heap::default();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let mut w = h.weak_cons(x, Value::NIL);
    for _ in 0..100 {
        w = h.weak_cons(x, w);
    }
    // Nothing rooted: everything dies.
    let before = {
        full_collect(&mut h);
        h.capacity_bytes()
    };
    for _ in 0..100 {
        let _ = h.weak_cons(Value::NIL, Value::NIL);
    }
    full_collect(&mut h);
    assert!(
        h.capacity_bytes() <= before,
        "dead weak chains are reclaimed"
    );
}

#[test]
fn broken_weak_car_counts_are_reported() {
    let mut h = Heap::default();
    let mut weaks = Vec::new();
    for i in 0..10 {
        let obj = h.cons(Value::fixnum(i), Value::NIL);
        let w = h.weak_cons(obj, Value::NIL);
        weaks.push(h.root(w));
    }
    full_collect(&mut h);
    let report = h.last_report().unwrap();
    assert_eq!(report.weak_cars_broken, 10);
    assert_eq!(report.weak_cars_forwarded, 0);
    assert!(report.weak_pairs_scanned >= 10);
}

#[test]
fn ablation_weak_pass_before_guardians_breaks_salvaged_objects() {
    // DESIGN.md decision 4: running the weak pass first (the ablation)
    // wrongly breaks weak pointers to objects the guardian pass then
    // salvages — exactly the failure the paper's ordering rule prevents.
    use guardians_gc::GcConfig;
    let mut h = Heap::new(GcConfig {
        ablate_weak_pass_first: true,
        ..GcConfig::new()
    });
    let g = h.make_guardian();
    let x = h.cons(Value::fixnum(42), Value::NIL);
    let w = h.weak_cons(x, Value::NIL);
    let wr = h.root(w);
    g.register(&mut h, x);

    h.collect(h.config().max_generation());
    h.verify().unwrap();
    let saved = g.poll(&mut h).expect("still salvaged");
    assert_eq!(
        h.car(saved),
        Value::fixnum(42),
        "the object itself is intact"
    );
    assert_eq!(
        h.car(wr.get()),
        Value::FALSE,
        "ablation: the weak pointer broke even though the object survives — \
         the inconsistency the paper's ordering avoids"
    );
}
