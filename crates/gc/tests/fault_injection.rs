//! Segment-exhaustion fault injection: the `try_*` entry points must
//! either complete or fail with a clean [`GcError::Exhausted`] leaving the
//! heap untouched and `verify()`-valid — never a partial mutation. The
//! torture crate sweeps the fault across whole op traces; these tests pin
//! the contract for each entry point in isolation.

use guardians_gc::{GcConfig, GcError, Heap, Value};

fn exhausted(e: GcError) -> (u64, u64) {
    match e {
        GcError::Exhausted { needed, remaining } => (needed, remaining),
    }
}

#[test]
fn try_cons_fails_cleanly_at_the_limit() {
    let mut h = Heap::default();
    // Freeze the budget at exactly what has been acquired so far: the
    // next segment acquisition must fail.
    let p = h.cons(Value::fixnum(1), Value::fixnum(2));
    let _r = h.root(p);
    h.set_acquisition_fault(Some(h.acquisitions()));

    // The open pair segment still has room: these succeed without
    // acquiring anything.
    for i in 0..10 {
        h.try_cons(Value::fixnum(i), Value::NIL)
            .expect("fits the open cursor");
    }

    // A typed allocation needs a fresh segment and must fail cleanly.
    let before = h.stats().objects_allocated;
    let err = h.try_make_vector(4, Value::NIL).unwrap_err();
    let (needed, remaining) = exhausted(err);
    assert_eq!((needed, remaining), (1, 0));
    assert_eq!(h.stats().objects_allocated, before, "no partial mutation");
    h.verify().expect("heap intact after clean failure");

    // Lifting the fault un-wedges the heap.
    h.set_acquisition_fault(None);
    let v = h.try_make_vector(4, p).expect("budget lifted");
    assert_eq!(h.vector_ref(v, 0), p);
    h.verify().expect("heap valid after recovery");
}

#[test]
fn try_large_allocations_report_run_demand() {
    let mut h = Heap::default();
    h.set_acquisition_fault(Some(h.acquisitions() + 2));
    // 2000 fixnum slots + header needs a 4-segment run: more than the
    // remaining 2.
    let err = h.try_make_vector(2000, Value::NIL).unwrap_err();
    assert_eq!(exhausted(err), (4, 2));
    // A bytevector of the same footprint fails identically (pure space).
    let err = h.try_make_bytevector(2000 * 8, 0).unwrap_err();
    assert_eq!(exhausted(err).0, 4);
    h.verify().expect("heap intact");
}

#[test]
fn try_collect_fails_before_the_flip_or_runs_to_completion() {
    let mut h = Heap::default();
    let g = h.make_guardian();
    let mut keep = Vec::new();
    for i in 0..2000 {
        let s = h.make_string(&format!("obj-{i}"));
        let p = h.cons(Value::fixnum(i), s);
        if i % 3 == 0 {
            g.register(&mut h, p);
        }
        if i % 2 == 0 {
            keep.push(h.root(p));
        }
    }
    let w = {
        let target = keep[0].get();
        h.weak_cons(target, Value::NIL)
    };
    let _wr = h.root(w);

    // Budget below the reservation: the collection must refuse up front.
    let reservation = h.collection_reservation(0);
    assert!(reservation > 0);
    h.set_acquisition_fault(Some(h.acquisitions() + reservation - 1));
    let before_collections = h.collection_count();
    let usage_before: Vec<_> = h.generation_usage();
    let err = h.try_collect(0).unwrap_err();
    let (needed, remaining) = exhausted(err);
    assert_eq!(needed, reservation);
    assert_eq!(remaining, reservation - 1);
    assert_eq!(h.collection_count(), before_collections, "no flip happened");
    assert_eq!(h.generation_usage(), usage_before, "heap shape untouched");
    h.verify().expect("heap intact after refused collection");

    // Budget exactly at the reservation: the collection must run to
    // completion without tripping the mid-collection panic — this is the
    // soundness test for the worst-case bound.
    h.set_acquisition_fault(Some(h.acquisitions() + reservation));
    h.try_collect(0).expect("reservation is sufficient");
    h.verify()
        .expect("heap valid after fault-bounded collection");
    assert_eq!(
        h.generation_of(keep[0].get()),
        Some(1),
        "survivors promoted"
    );
}

#[test]
fn collections_under_tight_budgets_never_corrupt() {
    // Sweep the fault across the interesting range around a collection's
    // real demand: every offset must yield either a clean refusal or a
    // completed, verify-valid collection.
    for offset in 0..40 {
        let mut h = Heap::new(GcConfig::default());
        let g = h.make_guardian();
        let mut roots = Vec::new();
        for i in 0..500 {
            let v = h.make_vector(3, Value::fixnum(i));
            g.register(&mut h, v);
            if i % 4 != 0 {
                roots.push(h.root(v));
            }
        }
        h.set_acquisition_fault(Some(h.acquisitions() + offset));
        match h.try_collect(0) {
            Ok(_) => {
                h.verify()
                    .expect("completed collection leaves a valid heap");
                assert!(h.collection_count() == 1);
            }
            Err(GcError::Exhausted { needed, remaining }) => {
                assert!(needed > remaining, "refusal must be justified");
                h.verify()
                    .expect("refused collection leaves heap untouched");
                assert_eq!(h.collection_count(), 0);
                // The heap still works once the pressure is lifted.
                h.set_acquisition_fault(None);
                h.collect(0);
                h.verify().expect("valid after recovery collection");
            }
        }
    }
}

#[test]
fn guardians_and_weak_pairs_survive_budgeted_collections() {
    let mut h = Heap::default();
    let g = h.make_guardian();
    let p = h.cons(Value::fixnum(7), Value::NIL);
    g.register(&mut h, p);
    let w = h.weak_cons(p, Value::NIL);
    let wr = h.root(w);
    // Drop the only strong reference; collect under an exact-reservation
    // budget. The guardian must still salvage the pair and the weak car
    // must still be forwarded (not broken), fault or no fault.
    let reservation = h.collection_reservation(0);
    h.set_acquisition_fault(Some(h.acquisitions() + reservation));
    h.try_collect(0).expect("within reservation");
    let salvaged = g.poll(&mut h).expect("guardian saved the pair");
    assert_eq!(h.car(salvaged), Value::fixnum(7));
    assert_eq!(h.car(wr.get()), salvaged, "weak car forwarded, not broken");
    h.verify().expect("valid");
}

#[test]
#[should_panic(expected = "infallible path")]
fn infallible_allocation_across_the_limit_trips_the_tripwire() {
    let mut h = Heap::default();
    h.set_acquisition_fault(Some(h.acquisitions()));
    // Infallible `cons` needs a segment it cannot acquire: the tripwire
    // panic (not silent corruption) is the specified behaviour.
    let _ = h.cons(Value::NIL, Value::NIL);
}
