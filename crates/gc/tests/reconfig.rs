//! Mid-run policy reconfiguration property tests.
//!
//! The autotuner retunes `trigger_bytes`, `promotion`, and the
//! `frequency` ladder on a live heap, always between collections. These
//! tests pin down what makes that safe:
//!
//! 1. Policy fields are pure collection-time parameters: changes applied
//!    *before the first collection* leave every observable identical to
//!    a fresh heap constructed with the final configuration and replayed.
//! 2. Changes applied *mid-run* (between collections) keep the three
//!    engines — serial, parallel workers=4, incremental pause-budget —
//!    in exact agreement on counters, guardian deliveries (content and
//!    order), weak-pointer observables, and survivor placement.
//! 3. A suspended incremental collection rejects policy changes: the
//!    setters panic rather than let a collection see two configurations.

use guardians_gc::{GcConfig, Heap, Promotion, Rooted, Value};
use proptest::prelude::*;
use std::time::Duration;

#[derive(Clone, Debug)]
enum Step {
    /// Allocate an id-tagged pair and root it; optionally guard it and
    /// watch it through a weak pair.
    Alloc { guarded: bool, weak: bool },
    /// Drop one root (modular index, `swap_remove` for determinism).
    DropRoot { idx: usize },
    /// Explicit full-stop collection of generations `0..=gen % gens`.
    Collect { gen: u8 },
    /// Policy change: set the allocation trigger.
    SetTrigger { bytes: usize },
    /// Policy change: set the promotion strategy (0 = next, 1 = cap 1,
    /// 2 = cap 2, 3 = same-generation).
    SetPromotion { p: u8 },
    /// Policy change: swap in one of the canned frequency ladders.
    SetFrequency { ladder: u8 },
}

fn is_policy(s: &Step) -> bool {
    matches!(
        s,
        Step::SetTrigger { .. } | Step::SetPromotion { .. } | Step::SetFrequency { .. }
    )
}

fn promotion_of(p: u8) -> Promotion {
    match p % 4 {
        0 => Promotion::NextGeneration,
        1 => Promotion::Capped(1),
        2 => Promotion::Capped(2),
        _ => Promotion::SameGeneration,
    }
}

fn ladder_of(l: u8) -> Vec<u64> {
    match l % 3 {
        0 => vec![1, 4, 16, 64],
        1 => vec![1, 8, 32, 128],
        _ => vec![1, 2], // short: generations beyond it use the 4x rule
    }
}

fn apply_policy(heap: &mut Heap, step: &Step) {
    match step {
        Step::SetTrigger { bytes } => heap.set_trigger_bytes(*bytes),
        Step::SetPromotion { p } => heap.set_promotion(promotion_of(*p)),
        Step::SetFrequency { ladder } => heap.set_frequency(ladder_of(*ladder)),
        _ => unreachable!("not a policy step"),
    }
}

fn folded_config(mut cfg: GcConfig, steps: &[Step]) -> GcConfig {
    for s in steps {
        match s {
            Step::SetTrigger { bytes } => cfg.trigger_bytes = *bytes,
            Step::SetPromotion { p } => cfg.promotion = promotion_of(*p),
            Step::SetFrequency { ladder } => cfg.frequency = ladder_of(*ladder),
            _ => {}
        }
    }
    cfg
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (any::<bool>(), any::<bool>())
            .prop_map(|(guarded, weak)| Step::Alloc { guarded, weak }),
        3 => any::<usize>().prop_map(|idx| Step::DropRoot { idx }),
        3 => (0u8..4).prop_map(|gen| Step::Collect { gen }),
        1 => (0usize..4).prop_map(|t| Step::SetTrigger {
            bytes: [16, 64, 256, 1024][t] * 4096
        }),
        1 => (0u8..4).prop_map(|p| Step::SetPromotion { p }),
        1 => (0u8..3).prop_map(|l| Step::SetFrequency { ladder: l }),
    ]
}

/// Everything we compare: deterministic counters, guardian deliveries in
/// poll order, weak observables, and survivor placement.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    collections: u64,
    words_copied: u64,
    guardian_visited: u64,
    guardian_finalized: u64,
    guardian_held: u64,
    guardian_dropped: u64,
    weak_broken: u64,
    weak_forwarded: u64,
    polled: Vec<i64>,
    weak_cars: Vec<Option<i64>>,
    live_generations: Vec<(i64, u8)>,
}

/// Runs `steps` on `heap`. Policy steps are applied through the runtime
/// setters when `apply_policy_steps` is set and silently skipped
/// otherwise (the caller pre-folded them into the config).
fn run_program(mut heap: Heap, steps: &[Step], apply_policy_steps: bool) -> Outcome {
    let g = heap.make_guardian();
    let mut roots: Vec<Rooted> = Vec::new();
    let weak_watch = heap.root_vec();
    let mut next_id = 0i64;
    for step in steps {
        match step {
            Step::Alloc { guarded, weak } => {
                let node = heap.cons(Value::fixnum(next_id), Value::NIL);
                next_id += 1;
                let r = heap.root(node);
                if *guarded {
                    g.register(&mut heap, node);
                }
                if *weak {
                    let wp = heap.weak_cons(node, Value::NIL);
                    weak_watch.push(wp);
                }
                roots.push(r);
            }
            Step::DropRoot { idx } => {
                if !roots.is_empty() {
                    let i = idx % roots.len();
                    roots.swap_remove(i);
                }
            }
            Step::Collect { gen } => {
                let gen = gen % heap.config().generations;
                heap.collect(gen);
            }
            policy => {
                if apply_policy_steps {
                    apply_policy(&mut heap, policy);
                }
            }
        }
    }
    // One settling full collection so late drops are observable.
    heap.collect(heap.config().max_generation());
    heap.verify().expect("heap valid at program end");
    let mut polled = Vec::new();
    while let Some(v) = g.poll(&mut heap) {
        polled.push(heap.car(v).as_fixnum());
    }
    let weak_cars = (0..weak_watch.len())
        .map(|i| {
            let car = heap.car(weak_watch.get(i));
            car.is_ptr().then(|| heap.car(car).as_fixnum())
        })
        .collect();
    let live_generations = roots
        .iter()
        .map(|r| {
            let v = r.get();
            (
                heap.car(v).as_fixnum(),
                heap.generation_of(v).expect("rooted node is a pointer"),
            )
        })
        .collect();
    let (collections, words_copied) = (heap.collection_count(), heap.stats().total_words_copied);
    // Cumulative guardian/weak counters live in the metrics registry
    // (folded in per collection by `finish_collection`).
    let m = heap.metrics_mut();
    Outcome {
        collections,
        words_copied,
        guardian_visited: m.counter("gc.guardian.visited"),
        guardian_finalized: m.counter("gc.guardian.finalized"),
        guardian_held: m.counter("gc.guardian.held"),
        guardian_dropped: m.counter("gc.guardian.dropped"),
        weak_broken: m.counter("gc.weak.broken"),
        weak_forwarded: m.counter("gc.weak.forwarded"),
        polled,
        weak_cars,
        live_generations,
    }
}

/// The three engines the acceptance criteria name.
fn engine_config(engine: usize) -> GcConfig {
    let mut cfg = GcConfig::new();
    match engine {
        0 => {}
        1 => cfg.workers = 4,
        _ => cfg.pause_budget = Some(Duration::from_micros(100)),
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Changes applied before the first collection are indistinguishable
    /// from having constructed the heap with the final configuration:
    /// policy fields are pure collection-time parameters.
    #[test]
    fn policy_changes_before_first_collection_replay_as_fresh_config(
        steps in proptest::collection::vec(step_strategy(), 1..60),
        engine in 0usize..3,
    ) {
        let policy: Vec<Step> =
            steps.iter().filter(|s| is_policy(s)).cloned().collect();
        let program: Vec<Step> =
            steps.iter().filter(|s| !is_policy(s)).cloned().collect();
        let base = engine_config(engine);
        let mut live = Heap::new(base.clone());
        for p in &policy {
            apply_policy(&mut live, p);
        }
        let changed = run_program(live, &program, false);
        let fresh = run_program(Heap::new(folded_config(base, &policy)), &program, false);
        prop_assert_eq!(changed, fresh);
    }

    /// Mid-run changes (always between collections — the only place the
    /// setters allow them) keep all three engines in exact agreement on
    /// every observable, including guardian delivery order and survivor
    /// placement.
    #[test]
    fn mid_run_policy_changes_agree_across_engines(
        steps in proptest::collection::vec(step_strategy(), 1..80),
    ) {
        let serial = run_program(Heap::new(engine_config(0)), &steps, true);
        let parallel = run_program(Heap::new(engine_config(1)), &steps, true);
        let incremental = run_program(Heap::new(engine_config(2)), &steps, true);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial, &incremental);
    }
}

#[test]
#[should_panic(expected = "between collections")]
fn suspended_incremental_collection_rejects_policy_changes() {
    let mut cfg = GcConfig::new();
    cfg.pause_budget = Some(Duration::from_micros(100));
    let mut heap = Heap::new(cfg);
    let keep = heap.cons(Value::fixnum(1), Value::NIL);
    let _root = heap.root(keep);
    heap.begin_incremental(0);
    assert!(heap.incremental_in_progress());
    heap.set_promotion(Promotion::Capped(1)); // must panic
}

#[test]
#[should_panic(expected = "between collections")]
fn suspended_incremental_collection_rejects_autotune_enable() {
    let mut cfg = GcConfig::new();
    cfg.pause_budget = Some(Duration::from_micros(100));
    let mut heap = Heap::new(cfg);
    let keep = heap.cons(Value::fixnum(1), Value::NIL);
    let _root = heap.root(keep);
    heap.begin_incremental(0);
    heap.enable_autotune(guardians_gc::AutotuneConfig::active()); // must panic
}
