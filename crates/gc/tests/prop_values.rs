//! Property tests: value representation round trips and data integrity
//! across collections for every object kind.

use guardians_gc::{GcConfig, Heap, Value, FIXNUM_MAX, FIXNUM_MIN};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn fixnums_round_trip(n in FIXNUM_MIN..=FIXNUM_MAX) {
        let v = Value::fixnum(n);
        prop_assert!(v.is_fixnum());
        prop_assert_eq!(v.as_fixnum(), n);
        prop_assert!(!v.is_ptr());
    }

    #[test]
    fn chars_round_trip(c in any::<char>()) {
        prop_assert_eq!(Value::char(c).as_char(), Some(c));
    }

    #[test]
    fn strings_round_trip_and_survive(s in ".{0,100}") {
        let mut heap = Heap::default();
        let v = heap.make_string(&s);
        prop_assert_eq!(heap.string_value(v), s.clone());
        prop_assert_eq!(heap.string_len(v), s.len());
        let r = heap.root(v);
        heap.collect(0);
        heap.collect(1);
        prop_assert_eq!(heap.string_value(r.get()), s);
    }

    #[test]
    fn bytevectors_round_trip_and_survive(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut heap = Heap::default();
        let v = heap.make_bytevector(bytes.len(), 0);
        for (i, b) in bytes.iter().enumerate() {
            heap.bytevector_set(v, i, *b);
        }
        prop_assert_eq!(heap.bytevector_value(v), bytes.clone());
        let r = heap.root(v);
        heap.collect(0);
        prop_assert_eq!(heap.bytevector_value(r.get()), bytes);
    }

    #[test]
    fn flonums_round_trip(f in any::<f64>()) {
        let mut heap = Heap::default();
        let v = heap.make_flonum(f);
        prop_assert_eq!(heap.flonum_value(v).to_bits(), f.to_bits());
    }

    #[test]
    fn vectors_of_random_fixnums_survive_full_aging(
        items in proptest::collection::vec(FIXNUM_MIN..=FIXNUM_MAX, 0..600)
    ) {
        let mut heap = Heap::new(GcConfig::with_generations(3));
        let v = heap.make_vector(items.len(), Value::NIL);
        for (i, n) in items.iter().enumerate() {
            heap.vector_set(v, i, Value::fixnum(*n));
        }
        let r = heap.root(v);
        for g in [0u8, 1, 2, 2] {
            heap.collect(g);
            heap.verify().expect("valid after collection");
        }
        let v = r.get();
        prop_assert_eq!(heap.vector_len(v), items.len());
        for (i, n) in items.iter().enumerate() {
            prop_assert_eq!(heap.vector_ref(v, i).as_fixnum(), *n);
        }
    }
}
