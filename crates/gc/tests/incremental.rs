//! The bounded-pause (incremental) engine: work-counter parity with the
//! serial engine, guardian/weak observable equivalence across budgets,
//! the between-increment heap invariants (forwarded-on-read and
//! write-barrier coverage) under a randomized interleaved mutator, and
//! clean mid-cycle fault behaviour.

use guardians_gc::{CollectionReport, GcConfig, GcError, Heap, PhaseTimes, Value};
use std::time::Duration;

/// Deterministic xorshift64 so both heaps of a comparison run the exact
/// same operation sequence.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn incremental_config(budget: Option<Duration>) -> GcConfig {
    GcConfig {
        pause_budget: budget,
        ..GcConfig::new()
    }
}

/// Builds the same little object graph in any heap: lists, vectors,
/// strings, weak pairs, guardian registrations, and a few dropped roots,
/// using `rng` for every choice.
fn populate(h: &mut Heap, rng: &mut XorShift) -> guardians_gc::RootedVec {
    let objs = h.root_vec();
    let g = h.make_guardian();
    let _gr = h.root(g.tconc());
    for i in 0..300i64 {
        let v = match rng.below(5) {
            0 => {
                let s = h.make_string(&format!("s{i}"));
                h.cons(s, Value::fixnum(i))
            }
            1 => h.make_vector((rng.below(6) + 1) as usize, Value::fixnum(i)),
            2 => h.make_box(Value::fixnum(i)),
            3 => {
                let tail = if objs.is_empty() {
                    Value::NIL
                } else {
                    objs.get(rng.below(objs.len() as u64) as usize)
                };
                h.cons(Value::fixnum(i), tail)
            }
            _ => {
                let referent = h.cons(Value::fixnum(i), Value::NIL);
                h.weak_cons(referent, Value::fixnum(i))
            }
        };
        if rng.below(8) == 0 {
            g.register(h, v);
        }
        if rng.below(4) != 0 {
            objs.push(v);
        }
    }
    objs
}

fn work_counters(r: &CollectionReport) -> CollectionReport {
    CollectionReport {
        duration: Duration::ZERO,
        phases: PhaseTimes::default(),
        increments: 0,
        ..r.clone()
    }
}

/// With a quiescent mutator the incremental engine visits objects in the
/// same order as the serial engine, so every deterministic work counter
/// of the report is byte-identical — only timings and the increment
/// count may differ.
#[test]
fn quiescent_work_counters_match_serial_exactly() {
    let run = |budget: Option<Duration>| {
        let mut h = Heap::new(incremental_config(budget));
        let mut rng = XorShift::new(0x1E51);
        let _objs = populate(&mut h, &mut rng);
        let mut reports = Vec::new();
        for gen in [0u8, 0, 1, 0, 2] {
            reports.push(work_counters(h.collect(gen)));
        }
        h.verify().expect("valid after every collection");
        reports
    };
    let serial = run(None);
    for budget in [
        Some(Duration::ZERO),
        Some(Duration::from_micros(20)),
        Some(Duration::from_millis(5)),
    ] {
        assert_eq!(run(budget), serial, "budget {budget:?} diverged");
    }
    // The serial reports really did come from the stop-the-world engine…
    assert!(serial.iter().all(|r| r.increments == 0));
}

/// Guardian resurrection order and weak breaking are observably
/// identical across budgets (the terminal increment runs them
/// atomically).
#[test]
fn guardian_and_weak_observables_match_serial() {
    let run = |budget: Option<Duration>| {
        let mut h = Heap::new(incremental_config(budget));
        let g = h.make_guardian();
        let _gr = h.root(g.tconc());
        let mut keep = Vec::new();
        let weaks = h.root_vec();
        for i in 0..64i64 {
            let s = h.make_string(&format!("obj-{i}"));
            let p = h.cons(Value::fixnum(i), s);
            if i % 2 == 0 {
                // Registered objects are resurrected, so their weak cars
                // are forwarded; unregistered unrooted ones break.
                g.register(&mut h, p);
            }
            weaks.push(h.weak_cons(p, Value::fixnum(i)));
            if i % 3 == 0 {
                keep.push(h.root(p));
            }
        }
        h.collect(0);
        h.collect(1);
        let resurrected: Vec<i64> = g
            .drain(&mut h)
            .iter()
            .map(|&v| h.car(v).as_fixnum())
            .collect();
        let broken: Vec<bool> = (0..weaks.len())
            .map(|i| h.car(weaks.get(i)) == Value::FALSE)
            .collect();
        h.verify().expect("valid at the end");
        (resurrected, broken)
    };
    let serial = run(None);
    for budget in [Some(Duration::ZERO), Some(Duration::from_micros(100))] {
        assert_eq!(run(budget), serial, "budget {budget:?} diverged");
    }
    // Sanity: the workload actually exercises both mechanisms.
    assert!(!serial.0.is_empty(), "some objects were resurrected");
    assert!(serial.1.iter().any(|&b| b), "some weak cars broke");
    assert!(serial.1.iter().any(|&b| !b), "some weak cars survived");
}

/// The write-barrier property: however the mutator interleaves reads,
/// stores, and allocations between increments, every heap snapshot
/// passes `verify()` — which checks that each from-space pointer in a
/// non-from-space strong field is covered by the collector's remaining
/// work, and that the final heap is fully valid.
#[test]
fn interleaved_mutator_stays_covered_and_valid() {
    for seed in [0xE18u64, 0xBEEF, 0x5EED] {
        let mut h = Heap::new(incremental_config(Some(Duration::ZERO)));
        let mut rng = XorShift::new(seed);
        let objs = populate(&mut h, &mut rng);
        for round in 0..4u64 {
            h.begin_incremental((round % 2) as u8);
            h.verify().expect("valid right after the flip");
            loop {
                let done = h.gc_step().is_some();
                h.verify().expect("between-increment invariants hold");
                if done {
                    break;
                }
                // The mutator runs between increments: reads that may
                // return stale pointers, barriered stores that smuggle
                // them into already-scanned objects, and allocations.
                for _ in 0..rng.below(6) {
                    let n = objs.len() as u64;
                    let a = objs.get(rng.below(n) as usize);
                    let b = objs.get(rng.below(n) as usize);
                    match rng.below(6) {
                        0 if h.is_pair(a) && !h.is_weak_pair(a) => h.set_car(a, b),
                        1 if h.is_pair(a) && !h.is_weak_pair(a) => h.set_cdr(a, b),
                        2 if h.is_vector(a) => {
                            let i = rng.below(h.vector_len(a) as u64) as usize;
                            h.vector_set(a, i, b);
                        }
                        3 if h.is_box(a) => h.box_set(a, b),
                        4 => {
                            // Read through a possibly-stale pointer and
                            // store what comes back somewhere else.
                            let v = if h.is_pair(a) { h.car(a) } else { a };
                            if h.is_box(b) {
                                h.box_set(b, v);
                            }
                        }
                        _ => {
                            let p = h.cons(a, b);
                            objs.set(rng.below(n) as usize, p);
                        }
                    }
                }
            }
            assert!(!h.incremental_in_progress());
        }
        h.verify().expect("fully valid after the final increment");
        assert_eq!(h.collection_count(), 4);
        let r = h.last_report().unwrap();
        assert!(r.increments >= 1, "bounded-pause engine ran");
    }
}

/// A segment-exhaustion fault between increments fails cleanly: the
/// suspended collection is untouched, the heap still verifies, and
/// lifting the fault lets the same collection resume and finish.
#[test]
fn mid_cycle_exhaustion_is_clean_and_resumable() {
    let mut h = Heap::new(incremental_config(Some(Duration::ZERO)));
    let mut rng = XorShift::new(0xFA17);
    let objs = populate(&mut h, &mut rng);
    h.begin_incremental(0);
    assert!(h.gc_step().is_none(), "one increment leaves work remaining");

    h.set_acquisition_fault(Some(h.acquisitions()));
    let err = h.try_gc_step().expect_err("preflight must fail");
    let GcError::Exhausted { needed, remaining } = err;
    assert!(
        needed > remaining,
        "needed {needed} vs remaining {remaining}"
    );
    assert!(h.incremental_in_progress(), "collection stays suspended");
    h.verify().expect("heap intact after the clean failure");

    h.set_acquisition_fault(None);
    while h.try_gc_step().expect("budget lifted").is_none() {}
    h.verify().expect("resumed collection completed cleanly");
    assert!(!h.incremental_in_progress());
    // The survivors are still reachable and sane.
    for i in 0..objs.len() {
        let v = objs.get(i);
        if h.is_pair(v) && !h.is_weak_pair(v) {
            let _ = h.car(v);
        }
    }
}

/// `maybe_collect` drives the engine one increment per safe point, the
/// report counts its increments, and the metrics registry records one
/// pause sample per increment (plus the increment counter) instead of
/// one whole-collection sample.
#[test]
fn maybe_collect_paces_increments_and_metrics_record_them() {
    let mut cfg = incremental_config(Some(Duration::ZERO));
    cfg.trigger_bytes = 16 * 1024;
    let mut h = Heap::new(cfg);
    let keep = h.root_vec();
    let mut completed = 0u64;
    let mut safe_points = 0u64;
    for i in 0..30_000i64 {
        let p = h.cons(Value::fixnum(i), Value::NIL);
        if i % 50 == 0 {
            keep.push(p);
        }
        if i % 64 == 0 {
            safe_points += 1;
            if h.maybe_collect().is_some() {
                completed += 1;
            }
        }
    }
    while h.incremental_in_progress() {
        if h.gc_step().is_some() {
            completed += 1;
        }
    }
    assert!(completed >= 1, "the trigger fired at least once");
    let total_increments: u64 = h.stats().collections;
    assert_eq!(total_increments, completed);
    let increments = h.metrics().counter("gc.increments");
    assert!(
        increments > completed,
        "multi-increment collections: {increments} increments over {completed} collections"
    );
    assert!(
        safe_points > increments,
        "increments only run at safe points"
    );
    let hist = h
        .metrics()
        .get_histogram("gc.pause_ns")
        .expect("pause histogram exists");
    assert_eq!(
        hist.count(),
        increments,
        "one pause sample per increment, none for the whole collection"
    );
    h.verify().expect("valid at the end");
}
