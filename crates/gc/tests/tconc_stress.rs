//! Two-thread stress test of the tconc append/drain protocol (paper
//! Figures 2–3): a collector-side appender races a mutator-side drainer
//! with no locks, and the drainer must observe a FIFO queue with no torn
//! elements — "critical sections are unnecessary in both the mutator and
//! collector".
//!
//! [`Heap`](guardians_gc::Heap) itself is deliberately single-threaded
//! (`&mut self` everywhere), so this test models the *exact* write and
//! read sequences of `tconc.rs` over a shared arena of atomic words —
//! the same three appender writes in the same order (car of the old
//! dummy, cdr of the old dummy, then the publishing cdr-of-header last)
//! and the same drain reads (`car(tc)` vs `cdr(tc)` emptiness test, then
//! element, advance, and the pop's field-nulling) — with the
//! release/acquire pairing the protocol's correctness argument relies
//! on. The exhaustive single-threaded cut-point enumeration lives in
//! `crates/bench/src/experiments/e2.rs`; this adds real concurrency on
//! top of it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Arena of pair cells: cell `i` is words `2i` (car) and `2i + 1` (cdr).
struct Arena(Vec<AtomicU64>);

const FALSE: u64 = u64::MAX; // `#f` fill of a fresh dummy cell
const NIL: u64 = u64::MAX - 1; // `'()` written by the pop's nulling
const TC: u64 = 0; // the tconc header is cell 0

impl Arena {
    fn new(cells: usize) -> Arena {
        Arena((0..cells * 2).map(|_| AtomicU64::new(FALSE)).collect())
    }
    fn car(&self, cell: u64) -> &AtomicU64 {
        &self.0[cell as usize * 2]
    }
    fn cdr(&self, cell: u64) -> &AtomicU64 {
        &self.0[cell as usize * 2 + 1]
    }
}

/// One round: appender pushes `0..n` while the drainer pops until it has
/// seen all of them; returns the drained sequence.
fn race(n: u64) -> Vec<u64> {
    let arena = Arena::new(n as usize + 2);
    // make-tconc: (let ([z (cons #f '())]) (cons z z)) — cell 1 is the
    // initial dummy, header car and cdr both point at it.
    arena.car(TC).store(1, Ordering::Relaxed);
    arena.cdr(TC).store(1, Ordering::Relaxed);

    let mut drained = Vec::with_capacity(n as usize);
    let arena = &arena;
    std::thread::scope(|s| {
        // Collector-side appender: Figure 3's write order. The new dummy's
        // fields were filled at arena construction, so the publishing
        // store is the last of the three writes, release-ordered.
        s.spawn(|| {
            let mut last = 1u64; // only the appender moves the last pointer
            for i in 0..n {
                let fresh = last + 1;
                arena.car(last).store(i, Ordering::Release); // 1: element
                arena.cdr(last).store(fresh, Ordering::Release); // 2: link
                arena.cdr(TC).store(fresh, Ordering::Release); // 3: publish
                last = fresh;
            }
        });

        // Mutator-side drainer: tconc_pop's read/write sequence.
        let drained = &mut drained;
        s.spawn(move || {
            while drained.len() < n as usize {
                let first = arena.car(TC).load(Ordering::Relaxed); // drainer-owned
                let lastd = arena.cdr(TC).load(Ordering::Acquire);
                if first == lastd {
                    std::hint::spin_loop(); // empty at this instant
                    continue;
                }
                let v = arena.car(first).load(Ordering::Acquire);
                let next = arena.cdr(first).load(Ordering::Acquire);
                arena.car(TC).store(next, Ordering::Relaxed);
                // The pop nulls the popped cell's fields (tconc_pop does,
                // so stale reads of a recycled cell would be visible).
                arena.car(first).store(NIL, Ordering::Relaxed);
                arena.cdr(first).store(NIL, Ordering::Relaxed);
                drained.push(v);
            }
        });
    });
    drained
}

#[test]
fn concurrent_drain_observes_fifo_with_no_torn_elements() {
    // Several rounds; sizes past any buffer effects. Every drained value
    // must be the exact FIFO prefix — a torn element would surface as the
    // dummy fill (#f), the nulling (NIL), or an out-of-order value.
    for round in 0..8u64 {
        let n = 50_000 + round * 10_000;
        let got = race(n);
        assert_eq!(got.len() as u64, n, "round {round}: lost elements");
        for (i, v) in got.iter().enumerate() {
            assert!(
                *v != FALSE && *v != NIL,
                "round {round}: torn element at {i}: read an unpublished cell"
            );
            assert_eq!(*v, i as u64, "round {round}: FIFO order broken at {i}");
        }
    }
}
