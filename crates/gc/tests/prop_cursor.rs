//! Property test for `SegInfo::open_cursor` coherence (satellite of the
//! torture rig): the O(1) per-segment flag that tells the Cheney sweep
//! which segments' `used` watermarks can still move must stay an exact
//! mirror of the allocation-cursor table through any interleaving of
//! allocation (every space, including multi-segment runs), collection
//! (every generation and promotion policy), and verification.
//!
//! Two layers of checking at every step:
//! * [`Heap::open_cursor_counts`] — flags set by a linear scan of the
//!   whole segment table vs occupied cursor slots; the counts must agree.
//! * [`Heap::verify`] — the stronger per-segment statement (each flagged
//!   segment is exactly a cursor-table entry), plus full heap sanity.

use guardians_gc::{GcConfig, Heap, Promotion, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn coherent(h: &Heap, what: &str) {
    let (flagged, slots) = h.open_cursor_counts();
    assert_eq!(
        flagged, slots,
        "{what}: {flagged} open_cursor flags vs {slots} cursor slots"
    );
    h.verify()
        .unwrap_or_else(|e| panic!("{what}: verify failed: {e}"));
}

#[test]
fn open_cursor_flags_match_the_cursor_table_under_random_interleaving() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ seed);
        let config = GcConfig {
            promotion: match seed % 3 {
                0 => Promotion::NextGeneration,
                1 => Promotion::Capped(2),
                _ => Promotion::SameGeneration,
            },
            ..GcConfig::default()
        };
        let mut h = Heap::new(config);
        let keep = h.root_vec();
        for step in 0..600 {
            match rng.gen_range(0..100) {
                // Pair and weak-pair space: 2-word bumps.
                0..=34 => {
                    let p = h.cons(Value::fixnum(step), Value::NIL);
                    if rng.gen_range(0..4) == 0 {
                        keep.push(p);
                    }
                }
                35..=44 => {
                    let w = h.weak_cons(Value::FALSE, Value::NIL);
                    if rng.gen_range(0..4) == 0 {
                        keep.push(w);
                    }
                }
                // Typed space, occasionally a multi-segment run (runs
                // bypass the cursor entirely — they must not flag).
                45..=64 => {
                    let len = if rng.gen_range(0..10) == 0 {
                        rng.gen_range(600..1500)
                    } else {
                        rng.gen_range(0..12)
                    };
                    let v = h.make_vector(len, Value::fixnum(step));
                    if rng.gen_range(0..3) == 0 {
                        keep.push(v);
                    }
                }
                // Pure space.
                65..=79 => {
                    let b = h.make_bytevector(rng.gen_range(0..200), 7);
                    if rng.gen_range(0..4) == 0 {
                        keep.push(b);
                    }
                }
                // Collections reset cursors for collected + target gens.
                80..=94 => {
                    let gen = *[0, 0, 0, 1, 1, 2, 3]
                        .get(rng.gen_range(0..7usize))
                        .expect("in range");
                    h.collect(gen);
                }
                // Thin the root set so later collections actually free.
                _ => {
                    let n = keep.len();
                    keep.truncate(n - n / 4);
                }
            }
            coherent(&h, &format!("seed {seed} step {step}"));
        }
        // Final full collection: every young cursor closes.
        h.collect(h.config().generations - 1);
        coherent(&h, &format!("seed {seed} final"));
    }
}
