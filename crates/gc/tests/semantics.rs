//! The paper's Section 3 semantics, transcript by transcript.
//!
//! Every test ends with a full heap verification.

use guardians_gc::{GcConfig, Guardian, Heap, Value};

fn heap() -> Heap {
    Heap::default()
}

/// Collects every generation so "inaccessible" is always proven.
fn full_collect(h: &mut Heap) {
    h.collect(h.config().max_generation());
    h.verify().expect("heap valid after collection");
}

#[test]
fn basic_save_and_retrieve() {
    // > (define G (make-guardian))
    // > (define x (cons 'a 'b))
    // > (G x)
    // > (G)         => #f
    // > (set! x #f)
    // > (G)         => (a . b)
    // > (G)         => #f
    let mut h = heap();
    let g = h.make_guardian();
    let a = h.make_symbol("a");
    let b = h.make_symbol("b");
    let x = h.cons(a, b);
    let x_root = h.root(x);
    g.register(&mut h, x);

    full_collect(&mut h);
    assert_eq!(g.poll(&mut h), None, "(G) => #f while accessible");

    x_root.set(Value::FALSE);
    full_collect(&mut h);
    let saved = g.poll(&mut h).expect("(G) => (a . b)");
    assert_eq!(h.symbol_name(h.car(saved)), "a");
    assert_eq!(h.symbol_name(h.cdr(saved)), "b");
    assert_eq!(g.poll(&mut h), None, "(G) => #f after retrieval");
    h.verify().unwrap();
}

#[test]
fn multiple_registration_is_retrievable_multiple_times() {
    // > (G x) (G x) ... => (a . b) (a . b)
    let mut h = heap();
    let g = h.make_guardian();
    let x = h.cons(Value::fixnum(1), Value::fixnum(2));
    g.register(&mut h, x);
    g.register(&mut h, x);

    full_collect(&mut h);
    let first = g.poll(&mut h).expect("first retrieval");
    let second = g.poll(&mut h).expect("second retrieval");
    assert_eq!(first, second, "both retrievals yield the same (moved) pair");
    assert_eq!(h.car(first), Value::fixnum(1));
    assert_eq!(g.poll(&mut h), None);
}

#[test]
fn registration_with_two_guardians() {
    // > (G x) (H x) ... => both return (a . b)
    let mut h = heap();
    let g = h.make_guardian();
    let g2 = h.make_guardian();
    let x = h.cons(Value::fixnum(7), Value::NIL);
    g.register(&mut h, x);
    g2.register(&mut h, x);

    full_collect(&mut h);
    let from_g = g.poll(&mut h).expect("(G) => (a . b)");
    let from_h = g2.poll(&mut h).expect("(H) => (a . b)");
    assert_eq!(from_g, from_h);
    assert_eq!(h.car(from_g), Value::fixnum(7));
}

#[test]
fn guardian_registered_with_another_guardian() {
    // The paper's nested example:
    // > (define G (make-guardian))
    // > (define H (make-guardian))
    // > (define x (cons 'a 'b))
    // > (G H)  (H x)  (set! x #f)  (set! H #f)
    // > ((G))  => (a . b)
    let mut h = heap();
    let g = h.make_guardian();
    let g_h = h.make_guardian();
    let x = h.cons(Value::fixnum(1), Value::fixnum(2));

    // (G H): register H (its tconc) with G.
    g.register(&mut h, g_h.tconc());
    // (H x)
    g_h.register(&mut h, x);
    // (set! H #f): drop the Rust handle — the only strong reference.
    drop(g_h);

    full_collect(&mut h);

    // ((G)): retrieving from G yields the dead guardian H, which can then
    // itself be polled for x. This exercises the pend-final fixpoint: H's
    // tconc became reachable only by being resurrected for G.
    let h_tconc = g.poll(&mut h).expect("(G) yields the dropped guardian");
    let revived = Guardian::from_tconc(&mut h, h_tconc);
    let saved = revived.poll(&mut h).expect("((G)) => (a . b)");
    assert_eq!(h.car(saved), Value::fixnum(1));
    assert_eq!(h.cdr(saved), Value::fixnum(2));
    let report = h.last_report().unwrap();
    assert!(
        report.guardian_loop_iterations >= 2,
        "the nested guardian requires at least two fixpoint iterations, got {}",
        report.guardian_loop_iterations
    );
}

#[test]
fn retrieved_objects_have_no_special_status() {
    // "objects that have been retrieved from a guardian have no special
    // status": they may be used, re-registered, and dropped again.
    let mut h = heap();
    let g = h.make_guardian();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    g.register(&mut h, x);
    full_collect(&mut h);
    let x = g.poll(&mut h).expect("first death");

    // Use it normally.
    h.set_car(x, Value::fixnum(99));
    // Re-register it for a second round of finalization.
    g.register(&mut h, x);
    full_collect(&mut h);
    let x2 = g.poll(&mut h).expect("second death after re-registration");
    assert_eq!(h.car(x2), Value::fixnum(99));
}

#[test]
fn dropping_the_guardian_cancels_finalization() {
    // "Finalization of a group of objects can be canceled by simply
    // dropping all references to the guardian." The entries must also be
    // dropped so the objects are reclaimed immediately (Section 4).
    let mut h = heap();
    let keeper = h.make_guardian();
    let dropped = h.make_guardian();
    let x = h.cons(Value::fixnum(5), Value::NIL);
    keeper.register(&mut h, x);
    dropped.register(&mut h, x);
    drop(dropped);

    full_collect(&mut h);
    let report = h.last_report().unwrap();
    assert!(
        report.guardian_entries_dropped >= 1,
        "dead guardian's entry dropped"
    );
    assert_eq!(
        keeper.poll(&mut h).map(|v| h.car(v)),
        Some(Value::fixnum(5))
    );
}

#[test]
fn dropping_the_guardian_lets_objects_die_unpreserved() {
    // With no surviving guardian, the object must actually be reclaimed —
    // observable through a weak pair.
    let mut h = heap();
    let g = h.make_guardian();
    let x = h.cons(Value::fixnum(5), Value::NIL);
    let w = h.weak_cons(x, Value::NIL);
    let w_root = h.root(w);
    g.register(&mut h, x);
    drop(g);

    full_collect(&mut h);
    let w = w_root.get();
    assert_eq!(
        h.car(w),
        Value::FALSE,
        "object died with its guardian; weak pointer broken"
    );
}

#[test]
fn cyclic_structures_are_preserved_in_their_entirety() {
    // "A shared or cyclic structure consisting of inaccessible objects is
    // preserved in its entirety and each piece registered for preservation
    // with any guardian is placed in the inaccessible set for that
    // guardian. The programmer then has complete control over the order in
    // which pieces of the structure are processed."
    let mut h = heap();
    let g = h.make_guardian();
    let a = h.cons(Value::fixnum(1), Value::NIL);
    let b = h.cons(Value::fixnum(2), Value::NIL);
    h.set_cdr(a, b);
    h.set_cdr(b, a); // cycle
    g.register(&mut h, a);
    g.register(&mut h, b);

    full_collect(&mut h);
    let first = g.poll(&mut h).expect("piece one");
    let second = g.poll(&mut h).expect("piece two");
    assert_eq!(g.poll(&mut h), None);
    // The cycle is intact: each piece's cdr is the other piece.
    assert_eq!(h.cdr(first), second);
    assert_eq!(h.cdr(second), first);
    let (c1, c2) = (h.car(first).as_fixnum(), h.car(second).as_fixnum());
    assert_eq!((c1.min(c2), c1.max(c2)), (1, 2));
}

#[test]
fn shared_substructure_of_saved_objects_is_intact() {
    let mut h = heap();
    let g = h.make_guardian();
    let shared = h.make_vector(3, Value::fixnum(9));
    let x = h.cons(shared, Value::NIL);
    let y = h.cons(shared, Value::TRUE);
    g.register(&mut h, x);
    g.register(&mut h, y);

    full_collect(&mut h);
    let p1 = g.poll(&mut h).unwrap();
    let p2 = g.poll(&mut h).unwrap();
    assert_eq!(h.car(p1), h.car(p2), "sharing preserved, not duplicated");
    assert_eq!(h.vector_ref(h.car(p1), 2), Value::fixnum(9));
}

#[test]
fn saved_objects_stay_until_last_reference_drops() {
    // "Although an object returned from a guardian has been proven
    // otherwise inaccessible, it has not yet been reclaimed … and will not
    // be reclaimed until after the last reference to it within or outside
    // of the guardian system has been dropped."
    let mut h = heap();
    let g = h.make_guardian();
    let x = h.cons(Value::fixnum(8), Value::NIL);
    g.register(&mut h, x);
    full_collect(&mut h);

    // Not yet polled: the object sits in the inaccessible group, alive.
    full_collect(&mut h);
    full_collect(&mut h);
    let saved = g
        .poll(&mut h)
        .expect("still retrievable after more collections");
    assert_eq!(h.car(saved), Value::fixnum(8));

    // Now hold it via a root: further collections must keep it.
    let root = h.root(saved);
    full_collect(&mut h);
    assert_eq!(h.car(root.get()), Value::fixnum(8));
}

#[test]
fn registering_immediates_is_harmless() {
    // Fixnums and immediates can never become inaccessible; the entry is
    // simply held forever.
    let mut h = heap();
    let g = h.make_guardian();
    g.register(&mut h, Value::fixnum(42));
    g.register(&mut h, Value::FALSE);
    full_collect(&mut h);
    full_collect(&mut h);
    assert_eq!(g.poll(&mut h), None);
    assert_eq!(h.guardian_watched(g.tconc()), 2, "entries persist");
}

#[test]
fn guardian_accessible_only_from_heap_structure_still_works() {
    // A guardian's tconc stored inside a live vector (no Rust handle)
    // keeps the guardian alive.
    let mut h = heap();
    let g = h.make_guardian();
    let holder = h.make_vector(1, g.tconc());
    let holder_root = h.root(holder);
    let x = h.cons(Value::fixnum(3), Value::NIL);
    g.register(&mut h, x);
    drop(g); // only the heap reference remains

    full_collect(&mut h);
    let tconc = h.vector_ref(holder_root.get(), 0);
    let revived = Guardian::from_tconc(&mut h, tconc);
    let saved = revived
        .poll(&mut h)
        .expect("guardian alive via heap reference");
    assert_eq!(h.car(saved), Value::fixnum(3));
}

#[test]
fn poll_order_is_fifo_per_collection() {
    let mut h = heap();
    let g = h.make_guardian();
    // Two rounds of deaths: round 1 objects must come out before round 2.
    let a = h.cons(Value::fixnum(1), Value::NIL);
    g.register(&mut h, a);
    full_collect(&mut h);

    let b = h.cons(Value::fixnum(2), Value::NIL);
    g.register(&mut h, b);
    full_collect(&mut h);

    let first = g.poll(&mut h).unwrap();
    let second = g.poll(&mut h).unwrap();
    assert_eq!(h.car(first), Value::fixnum(1));
    assert_eq!(h.car(second), Value::fixnum(2));
}

#[test]
fn single_generation_heap_works() {
    let mut h = Heap::new(GcConfig::with_generations(1));
    let g = h.make_guardian();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let keep = h.make_vector(100, Value::fixnum(2));
    let keep_root = h.root(keep);
    g.register(&mut h, x);
    h.collect(0);
    h.verify().unwrap();
    assert_eq!(g.poll(&mut h).map(|v| h.car(v)), Some(Value::fixnum(1)));
    assert_eq!(h.vector_ref(keep_root.get(), 99), Value::fixnum(2));
}

#[test]
fn drain_returns_everything_pending() {
    let mut h = heap();
    let g = h.make_guardian();
    for i in 0..10 {
        let p = h.cons(Value::fixnum(i), Value::NIL);
        g.register(&mut h, p);
    }
    full_collect(&mut h);
    let dead = g.drain(&mut h);
    assert_eq!(dead.len(), 10);
    let mut values: Vec<i64> = dead.iter().map(|v| h.car(*v).as_fixnum()).collect();
    values.sort_unstable();
    assert_eq!(values, (0..10).collect::<Vec<_>>());
    assert!(g.is_empty(&h));
}
