//! Edge cases: the Section 5 agent generalisation, the Dickey-style
//! collector-invoked finalization baseline, and stress shapes for the
//! protected-list machinery.

use guardians_gc::{GcConfig, Heap, Value};

fn full_collect(h: &mut Heap) {
    h.collect(h.config().max_generation());
    h.verify().expect("heap valid after collection");
}

#[test]
fn agent_is_returned_instead_of_object() {
    // Section 5: "Rather than returning the object when it becomes
    // inaccessible, the guardian returns the agent."
    let mut h = Heap::default();
    let g = h.make_guardian();
    let desc = h.make_symbol("fd-agent");
    let agent = h.make_record(desc, &[Value::fixnum(17)]);
    let obj = h.cons(Value::fixnum(1), Value::NIL);
    g.register_with_agent(&mut h, obj, agent);

    full_collect(&mut h);
    let got = g.poll(&mut h).expect("agent delivered");
    assert!(h.is_record(got));
    assert_eq!(h.record_ref(got, 0), Value::fixnum(17));
}

#[test]
fn with_a_distinct_agent_the_object_is_discarded() {
    // "it allows objects to be discarded if something less than the
    // object is needed to perform the finalization" — observable through
    // a weak pointer to the object.
    let mut h = Heap::default();
    let g = h.make_guardian();
    let agent = h.make_box(Value::fixnum(5));
    let obj = h.cons(Value::fixnum(1), Value::NIL);
    let w = h.weak_cons(obj, Value::NIL);
    let wr = h.root(w);
    g.register_with_agent(&mut h, obj, agent);

    full_collect(&mut h);
    assert!(g.poll(&mut h).is_some(), "agent enqueued");
    assert_eq!(
        h.car(wr.get()),
        Value::FALSE,
        "object itself was NOT preserved"
    );
}

#[test]
fn agent_survives_while_object_lives() {
    // The entry is the agent's only reference; the agent must stay alive
    // as long as the (live) object might still die later.
    let mut h = Heap::default();
    let g = h.make_guardian();
    let obj = h.cons(Value::fixnum(1), Value::NIL);
    let r = h.root(obj);
    let agent = h.make_box(Value::fixnum(99));
    g.register_with_agent(&mut h, obj, agent);

    full_collect(&mut h);
    full_collect(&mut h);
    assert_eq!(g.poll(&mut h), None, "object alive, nothing delivered");

    r.set(Value::FALSE);
    full_collect(&mut h);
    let got = g.poll(&mut h).expect("object finally died");
    assert_eq!(
        h.box_ref(got),
        Value::fixnum(99),
        "agent data intact after aging"
    );
}

#[test]
fn agent_identical_to_object_behaves_like_simple_interface() {
    // "Since the agent can be the object itself, this subsumes the
    // simpler interface."
    let mut h = Heap::default();
    let g = h.make_guardian();
    let obj = h.cons(Value::fixnum(3), Value::NIL);
    g.register_with_agent(&mut h, obj, obj);
    full_collect(&mut h);
    let got = g.poll(&mut h).expect("object preserved and returned");
    assert_eq!(h.car(got), Value::fixnum(3));
}

#[test]
fn immediate_agents_work() {
    let mut h = Heap::default();
    let g = h.make_guardian();
    let obj = h.cons(Value::NIL, Value::NIL);
    g.register_with_agent(&mut h, obj, Value::fixnum(1234));
    full_collect(&mut h);
    assert_eq!(g.poll(&mut h), Some(Value::fixnum(1234)));
}

#[test]
fn mixed_registrations_on_one_object() {
    let mut h = Heap::default();
    let g = h.make_guardian();
    let obj = h.cons(Value::fixnum(7), Value::NIL);
    let agent = h.make_box(Value::fixnum(1));
    g.register(&mut h, obj); // simple: preserves obj
    g.register_with_agent(&mut h, obj, agent);
    full_collect(&mut h);
    let mut got = [g.poll(&mut h).unwrap(), g.poll(&mut h).unwrap()];
    assert_eq!(g.poll(&mut h), None);
    got.sort_by_key(|v| h.is_box(*v));
    assert_eq!(h.car(got[0]), Value::fixnum(7), "the preserved object");
    assert_eq!(h.box_ref(got[1]), Value::fixnum(1), "the agent");
}

#[test]
fn dickey_finalization_reports_dead_ids_once() {
    let mut h = Heap::default();
    let a = h.cons(Value::fixnum(1), Value::NIL);
    let b = h.cons(Value::fixnum(2), Value::NIL);
    let keep = h.root(b);
    h.register_for_finalization(a, 100);
    h.register_for_finalization(b, 200);

    full_collect(&mut h);
    assert_eq!(
        h.last_report().unwrap().finalized_ids,
        vec![100],
        "only the dead object"
    );
    full_collect(&mut h);
    assert!(
        h.last_report().unwrap().finalized_ids.is_empty(),
        "never reported twice"
    );

    drop(keep);
    full_collect(&mut h);
    assert_eq!(h.last_report().unwrap().finalized_ids, vec![200]);
}

#[test]
fn dickey_watch_lists_are_generation_friendly_but_object_is_lost() {
    let mut h = Heap::default();
    let a = h.cons(Value::fixnum(1), Value::NIL);
    let w = h.weak_cons(a, Value::NIL);
    let wr = h.root(w);
    h.register_for_finalization(a, 7);
    full_collect(&mut h);
    assert_eq!(h.last_report().unwrap().finalized_ids, vec![7]);
    // Unlike a guardian, the mechanism discards the object.
    assert_eq!(
        h.car(wr.get()),
        Value::FALSE,
        "object is gone — only the id remains"
    );
}

#[test]
fn guardian_wins_over_dickey_watch() {
    // An object both guarded and watched: the guardian pass runs first and
    // resurrects it, so the watch keeps seeing it alive.
    let mut h = Heap::default();
    let g = h.make_guardian();
    let a = h.cons(Value::fixnum(1), Value::NIL);
    g.register(&mut h, a);
    h.register_for_finalization(a, 9);
    full_collect(&mut h);
    assert!(
        h.last_report().unwrap().finalized_ids.is_empty(),
        "guardian resurrection wins"
    );
    assert!(g.poll(&mut h).is_some());
}

#[test]
fn many_guardians_many_objects_stress() {
    let mut h = Heap::default();
    let guardians: Vec<_> = (0..20).map(|_| h.make_guardian()).collect();
    let mut roots = Vec::new();
    for i in 0..400i64 {
        let obj = h.cons(Value::fixnum(i), Value::NIL);
        guardians[(i % 20) as usize].register(&mut h, obj);
        if i % 2 == 0 {
            roots.push(h.root(obj));
        }
    }
    full_collect(&mut h);
    for (k, g) in guardians.iter().enumerate() {
        let dead = g.drain(&mut h);
        // Guardian k watches objects with i % 20 == k; those died iff i is
        // odd, i.e. iff k is odd.
        let expected = if k % 2 == 1 { 20 } else { 0 };
        assert_eq!(dead.len(), expected, "guardian {k}");
        for v in dead {
            let n = h.car(v).as_fixnum();
            assert_eq!(n % 2, 1, "guardian {k} got a live object {n}");
            assert_eq!((n % 20) as usize, k, "delivered to the right guardian");
        }
    }
    // The even ones are still watched.
    let total_watched: usize = guardians
        .iter()
        .map(|g| h.guardian_watched(g.tconc()))
        .sum();
    assert_eq!(total_watched, 200);
    h.verify().unwrap();
}

#[test]
fn deep_guardian_chain_needs_proportional_fixpoint_iterations() {
    // G1 guards G2's tconc, G2 guards G3's tconc, ... Gn guards an object.
    // Dropping all of G2..Gn forces the pend-final loop to iterate ~n
    // times, resurrecting one guardian per round.
    const N: usize = 8;
    let mut h = Heap::default();
    let keeper = h.make_guardian();
    let mut chain = Vec::new();
    for _ in 0..N {
        chain.push(h.make_guardian());
    }
    keeper.register(&mut h, chain[0].tconc());
    for i in 1..N {
        let inner_tconc = chain[i].tconc();
        chain[i - 1].register(&mut h, inner_tconc);
    }
    let obj = h.cons(Value::fixnum(N as i64), Value::NIL);
    chain[N - 1].register(&mut h, obj);
    drop(chain);

    full_collect(&mut h);
    let report = h.last_report().unwrap();
    assert!(
        report.guardian_loop_iterations as usize >= N,
        "expected >= {N} fixpoint iterations, got {}",
        report.guardian_loop_iterations
    );

    // Unwind the chain from the keeper: N-1 hops between guardians, then
    // one final poll yields the innermost object.
    let mut tconc = keeper.poll(&mut h).expect("first dropped guardian");
    for _ in 1..N {
        let g = guardians_gc::Guardian::from_tconc(&mut h, tconc);
        tconc = g.poll(&mut h).expect("next link");
    }
    let last = guardians_gc::Guardian::from_tconc(&mut h, tconc);
    let obj = last.poll(&mut h).expect("the innermost object");
    assert_eq!(
        h.car(obj),
        Value::fixnum(N as i64),
        "the innermost object arrives intact"
    );
}

#[test]
fn two_generation_config_works_end_to_end() {
    let mut h = Heap::new(GcConfig::with_generations(2));
    let g = h.make_guardian();
    let x = h.cons(Value::fixnum(1), Value::NIL);
    let r = h.root(x);
    g.register(&mut h, x);
    h.collect(0);
    h.collect(1);
    h.collect(1);
    assert_eq!(
        h.generation_of(r.get()),
        Some(1),
        "capped at the oldest generation"
    );
    r.set(Value::FALSE);
    h.collect(1);
    assert_eq!(g.poll(&mut h).map(|v| h.car(v)), Some(Value::fixnum(1)));
    h.verify().unwrap();
}

#[test]
fn registrations_during_pending_retrievals_compose() {
    let mut h = Heap::default();
    let g = h.make_guardian();
    let a = h.cons(Value::fixnum(1), Value::NIL);
    g.register(&mut h, a);
    full_collect(&mut h);
    // While `a` waits in the inaccessible group, register and kill b.
    let b = h.cons(Value::fixnum(2), Value::NIL);
    g.register(&mut h, b);
    full_collect(&mut h);
    let xs: Vec<i64> = g
        .drain(&mut h)
        .into_iter()
        .map(|v| h.car(v).as_fixnum())
        .collect();
    assert_eq!(xs, vec![1, 2]);
}

#[test]
fn zombie_guardian_in_old_generation_conservatively_retains() {
    // Found by the model-based property test: a dropped guardian whose
    // tconc has aged into an uncollected generation is not *provably*
    // dead, so a young collection must treat it as live — per the paper's
    // forwarded? definition — and will resurrect registered objects into
    // the zombie tconc. Only a collection covering the tconc's generation
    // proves the death and releases everything.
    let mut h = Heap::default();
    let g = h.make_guardian();
    // Age the tconc to generation 2.
    h.collect(0);
    h.collect(1);
    assert_eq!(h.generation_of(g.tconc()), Some(2));

    // Register a fresh object, drop both it and the guardian handle.
    let obj = h.cons(Value::fixnum(1), Value::NIL);
    let w = h.weak_cons(obj, Value::NIL);
    let wr = h.root(w);
    g.register(&mut h, obj);
    drop(g);

    // A young collection cannot prove the tconc dead: the object is
    // conservatively resurrected into the zombie tconc, so the weak
    // pointer is NOT broken.
    h.collect(0);
    h.verify().unwrap();
    assert!(
        h.car(wr.get()).is_truthy(),
        "object retained by the unproven zombie tconc"
    );
    assert_eq!(h.last_report().unwrap().guardian_entries_finalized, 1);

    // Collecting the tconc's generation proves the death; the zombie and
    // its contents are reclaimed together.
    h.collect(2);
    h.verify().unwrap();
    assert_eq!(
        h.car(wr.get()),
        Value::FALSE,
        "released once death was proven"
    );
}

#[test]
fn figure_4_field_clearing_prevents_retention_through_old_pairs() {
    // "since the pair is sometimes in an older generation than the
    // objects to which it points, maintaining these pointers after they
    // are no longer needed may result in unnecessary storage retention."
    // Compare the proper pop (clears the don't-care fields) with a
    // naive pop that leaves them.
    let retention_after = |clear: bool| -> bool {
        let mut h = Heap::default();
        let g = h.make_guardian();
        // Age the guardian's tconc (header + sentinel pair) to gen 2.
        h.collect(0);
        h.collect(1);

        // A young object dies and is enqueued onto the old tconc.
        let obj = h.cons(Value::fixnum(1), Value::NIL);
        let w = h.weak_cons(obj, Value::NIL);
        let wr = h.root(w);
        g.register(&mut h, obj);
        h.collect(0);

        let tconc = g.tconc();
        if clear {
            // The paper's protocol (Figure 4).
            h.tconc_pop(tconc).expect("delivered");
        } else {
            // Naive pop: advance the header car but leave the old pair's
            // fields pointing at the popped object.
            let x = h.car(tconc);
            let rest = h.cdr(x);
            h.set_car(tconc, rest);
        }
        // The popped object is dropped either way. Does it die while the
        // tconc's own (old) generation remains uncollected?
        h.collect(0);
        h.collect(1);
        h.verify().unwrap();
        h.car(wr.get()).is_truthy()
    };
    assert!(
        !retention_after(true),
        "with field clearing, the popped object is reclaimed"
    );
    assert!(
        retention_after(false),
        "without clearing, the old pair retains the dead object until its own \
         generation is finally collected — the leak Figure 4 prevents"
    );
}
