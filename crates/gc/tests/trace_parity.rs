//! Event-vs-counter parity: the trace is only trustworthy if replaying it
//! reproduces the heap's own accounting exactly, and the metrics registry
//! must agree with both.

use guardians_gc::{
    replay_stats, GcConfig, GcEvent, Heap, HeapStats, Promotion, TraceConfig, Value,
};

/// A workload that exercises every event source: guardians (with
/// resurrection chains), weak pairs (broken and forwarded), tconc
/// appends, typed objects, multi-generation promotion.
fn churn(heap: &mut Heap, rounds: usize) {
    let g = heap.make_guardian();
    for round in 0..rounds {
        let keep = heap.root_vec();
        for i in 0..200 {
            let p = heap.cons(Value::fixnum(i), Value::NIL);
            if i % 3 == 0 {
                keep.push(p);
            }
            if i % 7 == 0 {
                g.register(heap, p);
            }
            if i % 5 == 0 {
                let w = heap.weak_cons(p, Value::NIL);
                keep.push(w);
            }
        }
        let v = heap.make_vector(40, Value::fixnum(1));
        keep.push(v);
        let s = heap.make_string("parity");
        keep.push(s);
        heap.collect((round % 2) as u8);
        while g.poll(heap).is_some() {}
    }
}

/// Copies the mutator-side fields (not derivable from a sampled trace)
/// onto a replayed stats value so whole-struct equality checks only the
/// replay-derived collector-side fields.
fn with_mutator_fields(mut replayed: HeapStats, actual: &HeapStats) -> HeapStats {
    replayed.pairs_allocated = actual.pairs_allocated;
    replayed.objects_allocated = actual.objects_allocated;
    replayed.words_allocated = actual.words_allocated;
    replayed.guardian_registrations = actual.guardian_registrations;
    replayed.guardian_polls = actual.guardian_polls;
    replayed
}

#[test]
fn replayed_trace_reproduces_heap_stats_exactly() {
    let mut heap = Heap::new(GcConfig {
        generations: 3,
        promotion: Promotion::NextGeneration,
        ..GcConfig::default()
    });
    heap.enable_tracing(TraceConfig {
        capacity: 1 << 20,
        ..TraceConfig::default()
    });
    churn(&mut heap, 12);
    assert_eq!(heap.trace_dropped(), 0, "parity needs the full history");
    let events = heap.disable_tracing();
    assert!(!events.is_empty());
    let replayed = with_mutator_fields(replay_stats(&events), heap.stats());
    assert_eq!(&replayed, heap.stats());
}

#[test]
fn per_generation_copy_events_sum_to_words_copied() {
    let mut heap = Heap::default();
    heap.enable_tracing(TraceConfig {
        capacity: 1 << 20,
        ..TraceConfig::default()
    });
    churn(&mut heap, 8);
    let events = heap.disable_tracing();
    let gen_copied: u64 = events
        .iter()
        .filter_map(|e| match e.event {
            GcEvent::GenCopied { words, .. } => Some(words),
            _ => None,
        })
        .sum();
    assert!(gen_copied > 0);
    assert_eq!(gen_copied, heap.stats().total_words_copied);
}

#[test]
fn guardian_and_weak_events_match_report_counters() {
    let mut heap = Heap::default();
    heap.enable_tracing(TraceConfig {
        capacity: 1 << 16,
        ..TraceConfig::default()
    });
    let g = heap.make_guardian();
    let keep = heap.root_vec();
    for i in 0..50 {
        let p = heap.cons(Value::fixnum(i), Value::NIL);
        g.register(&mut heap, p);
        let w = heap.weak_cons(p, Value::NIL);
        keep.push(w);
    }
    heap.drain_trace_events();
    heap.collect(0);
    let report = heap.last_report().unwrap().clone();
    let events = heap.drain_trace_events();

    let mut partition_visited = 0;
    let mut outcome = None;
    let mut weak = (0u64, 0u64, 0u64);
    let mut collector_appends = 0u64;
    for e in &events {
        match e.event {
            GcEvent::GuardianPartition { visited, .. } => partition_visited += visited,
            GcEvent::GuardianOutcome {
                finalized,
                held,
                dropped,
                loop_iterations,
            } => outcome = Some((finalized, held, dropped, loop_iterations)),
            GcEvent::WeakSweep {
                scanned,
                broken,
                forwarded,
            } => {
                weak.0 += scanned;
                weak.1 += broken;
                weak.2 += forwarded;
            }
            GcEvent::TconcAppend {
                during_collection: true,
            } => collector_appends += 1,
            _ => {}
        }
    }
    assert_eq!(partition_visited, report.guardian_entries_visited);
    assert_eq!(
        outcome,
        Some((
            report.guardian_entries_finalized,
            report.guardian_entries_held,
            report.guardian_entries_dropped,
            report.guardian_loop_iterations,
        ))
    );
    assert_eq!(weak.0, report.weak_pairs_scanned);
    assert_eq!(weak.1, report.weak_cars_broken);
    assert_eq!(weak.2, report.weak_cars_forwarded);
    assert_eq!(collector_appends, report.guardian_entries_finalized);
    // All 50 objects die guarded: every one produces a collector-side
    // tconc append, and — because the weak pass runs after the guardian
    // pass — its weak car is *forwarded* to the salvaged object, never
    // broken.
    assert_eq!(report.guardian_entries_finalized, 50);
    assert_eq!(report.weak_cars_forwarded, 50);
    assert_eq!(report.weak_cars_broken, 0);
}

#[test]
fn metrics_registry_agrees_with_stats_and_replay() {
    let mut heap = Heap::default();
    heap.enable_tracing(TraceConfig {
        capacity: 1 << 20,
        ..TraceConfig::default()
    });
    churn(&mut heap, 6);
    let events = heap.disable_tracing();
    let replayed = replay_stats(&events);
    let stats = heap.stats().clone();
    let m = heap.metrics();
    assert_eq!(m.counter("gc.collections"), stats.collections);
    assert_eq!(m.counter("gc.collections"), replayed.collections);
    assert_eq!(m.counter("gc.words_copied"), stats.total_words_copied);
    assert_eq!(m.counter("gc.words_copied"), replayed.total_words_copied);
    assert_eq!(
        m.counter("gc.guardian.visited"),
        stats.total_guardian_entries_visited
    );
    assert_eq!(m.counter("gc.weak.scanned"), stats.total_weak_pairs_scanned);
    assert_eq!(m.counter("alloc.pairs"), stats.pairs_allocated);
    assert_eq!(m.counter("guardian.polls"), stats.guardian_polls);
    let pause = m.get_histogram("gc.pause_ns").unwrap();
    assert_eq!(pause.count(), stats.collections);
    assert!(pause.quantile(0.99).unwrap() >= pause.quantile(0.5).unwrap());
    let json = heap.metrics_json();
    assert_eq!(json, heap.metrics_json(), "snapshots are deterministic");
}

#[test]
fn alloc_sampling_and_site_attribution() {
    let mut heap = Heap::default();
    heap.enable_tracing(TraceConfig {
        capacity: 1 << 16,
        alloc_sample_every: 10,
        ..TraceConfig::default()
    });
    heap.enable_site_profile();
    heap.set_alloc_site("test.cons");
    for i in 0..100 {
        let _ = heap.cons(Value::fixnum(i), Value::NIL);
    }
    heap.set_alloc_site("test.vector");
    let _ = heap.make_vector(10, Value::NIL);
    let events = heap.disable_tracing();
    let samples: Vec<_> = events
        .iter()
        .filter_map(|e| match e.event {
            GcEvent::AllocSample { space, words, site } => Some((space, words, site)),
            _ => None,
        })
        .collect();
    assert_eq!(samples.len(), 10, "every 10th of 101 allocations");
    assert!(samples.iter().all(|s| s.2 == Some("test.cons")));
    let profile = heap.take_site_profile();
    assert_eq!(profile.len(), 2);
    assert_eq!(profile[0].0, "test.cons", "sorted by words desc");
    assert_eq!(profile[0].1.allocations, 100);
    assert_eq!(profile[0].1.words, 200);
    assert_eq!(profile[1].0, "test.vector");
    assert_eq!(profile[1].1.words, 11);
    assert!(!heap.site_profile_enabled());
}

#[test]
fn disabled_tracing_emits_nothing() {
    let mut heap = Heap::default();
    churn(&mut heap, 2);
    assert!(!heap.tracing_enabled());
    assert!(heap.drain_trace_events().is_empty());
    assert_eq!(heap.trace_dropped(), 0);
    assert_eq!(heap.disable_tracing(), vec![]);
}

#[test]
fn census_at_collection_end_emits_per_generation_events() {
    let mut heap = Heap::default();
    heap.enable_tracing(TraceConfig {
        capacity: 1 << 16,
        census_at_collection_end: true,
        ..TraceConfig::default()
    });
    let p = heap.cons(Value::fixnum(1), Value::NIL);
    let _r = heap.root(p);
    heap.collect(0);
    let events = heap.drain_trace_events();
    let census: Vec<_> = events
        .iter()
        .filter_map(|e| match e.event {
            GcEvent::CensusGen {
                generation, pairs, ..
            } => Some((generation, pairs)),
            _ => None,
        })
        .collect();
    assert_eq!(census.len(), 4, "one event per generation");
    assert_eq!(census[1].0, 1);
    assert!(census[1].1 >= 1, "the survivor pair was promoted to gen 1");
}
