//! Headers for typed (non-pair) heap objects.
//!
//! The first word of every object in [`Space::Typed`] is a header encoding
//! the object kind and its length. Pairs (and weak pairs) have no header;
//! their kind is implied by the space of their segment, exactly as in the
//! paper's description of Chez Scheme's heap.
//!
//! [`Space::Typed`]: guardians_segments::Space::Typed

use crate::value::{TAG_BITS, TAG_HEADER, TAG_MASK};

/// The kind of a typed heap object.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ObjKind {
    /// A vector of `len` traced values.
    Vector,
    /// An immutable UTF-8 string of `len` bytes (untraced payload).
    String,
    /// A symbol: a traced name (string) and a traced extra slot.
    Symbol,
    /// A byte vector of `len` bytes (untraced payload).
    Bytevector,
    /// A single traced cell.
    Box,
    /// A 64-bit float (untraced payload).
    Flonum,
    /// A record: a traced descriptor followed by `len - 1` traced fields.
    Record,
}

impl ObjKind {
    /// Number of object kinds (the length of [`ObjKind::ALL`]).
    pub const COUNT: usize = 7;

    /// Every kind, in [`ObjKind::index`] order.
    pub const ALL: [ObjKind; ObjKind::COUNT] = [
        ObjKind::Vector,
        ObjKind::String,
        ObjKind::Symbol,
        ObjKind::Bytevector,
        ObjKind::Box,
        ObjKind::Flonum,
        ObjKind::Record,
    ];

    fn code(self) -> u64 {
        match self {
            ObjKind::Vector => 1,
            ObjKind::String => 2,
            ObjKind::Symbol => 3,
            ObjKind::Bytevector => 4,
            ObjKind::Box => 5,
            ObjKind::Flonum => 6,
            ObjKind::Record => 7,
        }
    }

    fn from_code(code: u64) -> Option<ObjKind> {
        ObjKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Dense index in `0..ObjKind::COUNT`, for per-kind tables (census,
    /// profiles).
    pub fn index(self) -> usize {
        self.code() as usize - 1
    }

    /// Stable lower-case name, used in census JSON and reports.
    pub fn name(self) -> &'static str {
        match self {
            ObjKind::Vector => "vector",
            ObjKind::String => "string",
            ObjKind::Symbol => "symbol",
            ObjKind::Bytevector => "bytevector",
            ObjKind::Box => "box",
            ObjKind::Flonum => "flonum",
            ObjKind::Record => "record",
        }
    }
}

/// A decoded object header.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Header {
    /// Object kind.
    pub kind: ObjKind,
    /// Length in kind-specific units: values for `Vector`, total content
    /// words (descriptor + fields) for `Record`, bytes for `String` and
    /// `Bytevector`, and ignored (1) for `Box` and `Flonum`.
    pub len: usize,
}

const KIND_SHIFT: u32 = TAG_BITS;
const KIND_MASK: u64 = 0x1F;
const LEN_SHIFT: u32 = 8;

impl Header {
    /// Creates a header.
    pub fn new(kind: ObjKind, len: usize) -> Header {
        Header { kind, len }
    }

    /// Encodes the header into a heap word.
    pub fn encode(self) -> u64 {
        ((self.len as u64) << LEN_SHIFT) | (self.kind.code() << KIND_SHIFT) | TAG_HEADER
    }

    /// Decodes a heap word as a header, if it is one.
    pub fn decode(word: u64) -> Option<Header> {
        if word & TAG_MASK != TAG_HEADER {
            return None;
        }
        let kind = ObjKind::from_code((word >> KIND_SHIFT) & KIND_MASK)?;
        Some(Header {
            kind,
            len: (word >> LEN_SHIFT) as usize,
        })
    }

    /// Content words following the header (total object size is this + 1).
    pub fn content_words(self) -> usize {
        match self.kind {
            ObjKind::Vector | ObjKind::Record => self.len,
            ObjKind::String | ObjKind::Bytevector => self.len.div_ceil(8),
            ObjKind::Box | ObjKind::Flonum => 1,
            ObjKind::Symbol => 2,
        }
    }

    /// Number of leading content words holding traced values.
    pub fn traced_words(self) -> usize {
        match self.kind {
            ObjKind::Vector | ObjKind::Record => self.len,
            ObjKind::Box => 1,
            ObjKind::Symbol => 2,
            ObjKind::String | ObjKind::Bytevector | ObjKind::Flonum => 0,
        }
    }

    /// Total object size in words (header included).
    pub fn total_words(self) -> usize {
        1 + self.content_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_kinds() {
        for kind in ObjKind::ALL {
            for len in [0usize, 1, 7, 8, 9, 1000] {
                let h = Header::new(kind, len);
                assert_eq!(Header::decode(h.encode()), Some(h), "{kind:?} len {len}");
            }
        }
    }

    #[test]
    fn rejects_non_headers() {
        assert_eq!(Header::decode(0), None); // fixnum 0
        assert_eq!(Header::decode(crate::Value::FALSE.raw()), None);
        // Valid header tag but bogus kind code.
        assert_eq!(Header::decode(TAG_HEADER | (31 << KIND_SHIFT)), None);
    }

    #[test]
    fn byte_lengths_round_up_to_words() {
        assert_eq!(Header::new(ObjKind::String, 0).content_words(), 0);
        assert_eq!(Header::new(ObjKind::String, 1).content_words(), 1);
        assert_eq!(Header::new(ObjKind::String, 8).content_words(), 1);
        assert_eq!(Header::new(ObjKind::String, 9).content_words(), 2);
    }

    #[test]
    fn traced_words_never_exceed_content() {
        for kind in ObjKind::ALL {
            for len in [0usize, 3, 64] {
                let h = Header::new(kind, len);
                assert!(h.traced_words() <= h.content_words(), "{kind:?}");
            }
        }
    }

    #[test]
    fn strings_and_flonums_are_untraced() {
        assert_eq!(Header::new(ObjKind::String, 100).traced_words(), 0);
        assert_eq!(Header::new(ObjKind::Flonum, 1).traced_words(), 0);
        assert_eq!(Header::new(ObjKind::Bytevector, 64).traced_words(), 0);
    }

    #[test]
    fn vectors_and_records_trace_everything() {
        assert_eq!(Header::new(ObjKind::Vector, 12).traced_words(), 12);
        assert_eq!(Header::new(ObjKind::Record, 4).traced_words(), 4);
    }
}
