#![warn(missing_docs)]

//! A generation-based copying garbage collector with **guardians** and
//! **weak pairs** — a from-scratch reproduction of:
//!
//! > R. Kent Dybvig, Carl Bruggeman, and David Eby.
//! > *Guardians in a Generation-Based Garbage Collector.* PLDI 1993.
//!
//! Guardians let a program save otherwise-inaccessible objects from
//! deallocation so that clean-up ("finalization") actions can be performed
//! later, **under full program control**: the collector never runs user
//! code, so no critical sections, no allocation restrictions inside
//! clean-up actions, and no collector-imposed ordering for shared or
//! cyclic structures.
//!
//! The implementation is *generation-friendly* exactly as the paper
//! defines it: guardian support costs the collector work proportional to
//! the collection work already being done (objects parked in uncollected
//! older generations are never visited), and costs the mutator work
//! proportional to the number of clean-up actions actually performed.
//!
//! # Architecture
//!
//! * [`Value`] — tagged 64-bit values (fixnums, immediates, pairs, typed
//!   objects), dereferenced through the [`Heap`].
//! * [`Heap`] — segment-backed bump allocation per space × generation
//!   (over [`guardians_segments`]), write barrier, explicit-safe-point
//!   collection, roots.
//! * [`Guardian`] — the paper's Section 3 interface, including multiple
//!   registration, multiple guardians per object, guardians guarding
//!   guardians, and the Section 5 *agent* generalisation.
//! * Weak pairs — [`Heap::weak_cons`]; car fields are weak pointers
//!   broken to `#f` when their referent is reclaimed, *after* the
//!   guardian pass so guardian-saved objects keep their weak references.
//! * [`Heap::register_for_finalization`] — the collector-invoked baseline
//!   mechanism the paper compares against (Section 2).
//!
//! # Example: the paper's opening example
//!
//! ```
//! use guardians_gc::{Heap, Value};
//!
//! let mut heap = Heap::default();
//! // > (define G (make-guardian))
//! let g = heap.make_guardian();
//! // > (define x (cons 'a 'b))
//! let a = heap.make_symbol("a");
//! let b = heap.make_symbol("b");
//! let x = heap.cons(a, b);
//! let x_root = heap.root(x);
//! // > (G x)
//! g.register(&mut heap, x);
//! // > (G)  =>  #f        — x is still accessible through the binding
//! heap.collect(0);
//! assert_eq!(g.poll(&mut heap), None);
//! // > (set! x #f)
//! x_root.set(Value::FALSE);
//! // ... after a collection proves the pair inaccessible. The pair
//! // survived one collection, so it now lives in generation 1 and only a
//! // collection of generation >= 1 can prove it dead:
//! heap.collect(1);
//! // > (G)  =>  (a . b)   — saved from destruction, data intact
//! let saved = g.poll(&mut heap).expect("retrievable exactly once");
//! assert_eq!(heap.symbol_name(heap.car(saved)), "a");
//! // > (G)  =>  #f
//! assert_eq!(g.poll(&mut heap), None);
//! ```

mod access;
mod autotune;
mod census;
mod collect;
mod config;
mod error;
mod guardian;
mod header;
mod heap;
mod inspect;
mod metrics;
mod roots;
mod stats;
mod tconc;
mod trace;
mod value;
mod verify;

pub use autotune::{
    decisions_jsonl, AutotuneConfig, AutotuneMode, PolicyController, PolicyDecision, PolicySensors,
    PolicyUpdate, StepOutcome,
};
pub use census::{GenCensus, HeapCensus, KindCensus};
pub use config::{GcConfig, Promotion};
pub use error::GcError;
pub use guardian::Guardian;
pub use header::{Header, ObjKind};
pub use heap::Heap;
pub use inspect::GenerationUsage;
pub use metrics::{pause_bounds, Histogram, MetricsRegistry};
pub use roots::{Rooted, RootedVec};
pub use stats::{CollectionReport, HeapStats, PhaseTimes};
pub use trace::{
    chrome_trace_json, events_jsonl, replay_stats, GcEvent, GcPhase, SiteStats, TraceConfig,
    TracedEvent,
};
pub use value::{Value, FIXNUM_MAX, FIXNUM_MIN};
pub use verify::VerifyError;

// The shared-capacity types, re-exported so multi-heap embedders (the
// zone layer) need not depend on the segments crate directly.
pub use guardians_segments::{PoolStats, SegmentPool};
