//! The parallel copy/scan engine (`GcConfig::workers > 1`).
//!
//! The serial engine in [`super`] is a single-threaded Cheney loop; this
//! module runs the same collection as a sequence of *parallel regions*.
//! Inside a region, `workers` scoped threads run the copy/scan loop over
//! work-stealing chunks; between regions the main thread holds the whole
//! `&mut Heap` and runs the order-sensitive logic (root forwarding, the
//! guardian blocks, finalizers) exactly as the serial engine does. The
//! phase structure — and therefore the paper's §4 guardian semantics,
//! including the weak-after-guardian ordering — is unchanged; only the
//! transitive reachability closures inside each phase are parallel.
//!
//! # What runs where
//!
//! * **Remset**: the main thread drains the dirty index (same skip rules
//!   as [`super::remset`]) into per-segment shard units; workers scan the
//!   shards. Spans of copied-but-unscanned to-space words are *deferred*
//!   to the sweep, mirroring the serial remset phase which forwards but
//!   never sweeps.
//! * **Sweep**: workers drain the deferred spans and then chase the
//!   closure to fixpoint through the shared work pool.
//! * **Guardians**: blocks 1–3 run on the main thread in protected-list
//!   order, so entries are partitioned, finalized, and appended to their
//!   tconcs in *registration order* — the deterministic merge that keeps
//!   tconc contents identical across worker counts. The reachability
//!   closure after each fixpoint round (the serial engine's
//!   `kleene-sweep`) runs as a parallel region; the round barrier
//!   preserves the paper's ordering.
//! * **Weak pass**: segment-sharded over the same unit pool discipline,
//!   read-mostly (no copying can happen there).
//!
//! # Copy protocol
//!
//! Forwarding is claim-then-copy: a worker CASes [`fwd::BUSY`] into the
//! object's first word (Acquire), copies the body into its private bump
//! region, then publishes the forwarding word with a Release store.
//! Losers of the race spin until the forwarding word appears. Exactly one
//! worker copies each object, which is what makes `pairs_copied`,
//! `objects_copied`, and `words_copied` schedule-independent (and equal
//! to the serial engine's).
//!
//! # Sharing discipline
//!
//! Workers share only:
//!
//! * the segment **table lock** ([`TableCore`]) for segment allocation
//!   and region open/close — never for word access;
//! * the **work pool** (queue + condvar) of scan [`Unit`]s;
//! * read-only views: the from-space bitset and the flip-time
//!   [`Snapshot`] of segment base pointers.
//!
//! Word traffic goes through raw segment base pointers under the
//! disjointness contract documented on `Segment::base_ptr`: every word is
//! either (a) private to the worker that bump-allocated it, (b) part of
//! exactly one scan unit, consumed by exactly one worker, or (c) a
//! from-space object's first word, accessed atomically. Lock order is
//! table → pool; a span produced while closing a region is pushed only
//! after the table lock is dropped.
//!
//! # Counter parity
//!
//! `workers <= 1` never enters this module, so the serial engine's
//! counters stay bit-identical (the `counter_parity` regression test).
//! For `workers > 1`, copy counters, guardian counters, tconc contents
//! and order, and weak `broken`/`forwarded` counts are
//! schedule-independent and equal to the serial engine's; segment counts
//! (`segments_allocated`), `weak_pairs_scanned` coverage in the ablation
//! mode, and per-phase wall times may differ. [`PhaseTimes::worker_time`]
//! accumulates the workers' region residence time (thread-seconds, not
//! wall time).
//!
//! [`PhaseTimes::worker_time`]: crate::PhaseTimes

use super::{emit_phase, FromSpaceMap};
use crate::header::Header;
use crate::heap::{GuardEntry, Heap};
use crate::stats::CollectionReport;
use crate::trace::{GcEvent, GcPhase};
use crate::value::{fwd, Value};
use guardians_segments::{SegIndex, SegmentTable, Space, WordAddr, NO_OWNER, SEGMENT_WORDS};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Snapshot: flip-time segment facts, readable without the table lock
// ---------------------------------------------------------------------

/// Flip-time facts about one segment.
#[derive(Copy, Clone)]
struct SnapSeg {
    /// Base of the segment's word storage (null if the index was
    /// unallocated at flip time).
    base: *mut u64,
    space: Space,
    /// Generation at flip time; `u8::MAX` for unallocated indices.
    gen: u8,
}

/// Immutable per-segment table captured at the flip: base pointers,
/// spaces, and generations of every segment that existed then (heads
/// *and* run tails, so large-object sources resolve chunk by chunk).
/// Segments created during the collection are beyond this snapshot;
/// from-space metadata never changes while the collection runs, and
/// segment storage is stable (`Segment` owns its words through a pointer
/// that survives table growth), so reads here need no lock.
struct Snapshot {
    segs: Vec<SnapSeg>,
}

// SAFETY: the snapshot is written once on the main thread before any
// worker exists and read-only afterwards; the base pointers it hands out
// are used under the segment disjointness contract (`Segment::base_ptr`).
unsafe impl Sync for Snapshot {}

impl Snapshot {
    fn capture(heap: &Heap) -> Snapshot {
        let mut segs = vec![
            SnapSeg {
                base: std::ptr::null_mut(),
                space: Space::Pair,
                gen: u8::MAX,
            };
            heap.segs.segments_total()
        ];
        for (seg, info) in heap.segs.iter() {
            segs[seg.index()] = SnapSeg {
                base: heap.segs.base_ptr(seg),
                space: info.space,
                gen: info.generation,
            };
        }
        Snapshot { segs }
    }

    #[inline]
    fn base(&self, seg: SegIndex) -> *mut u64 {
        self.segs[seg.index()].base
    }

    #[inline]
    fn space(&self, seg: SegIndex) -> Space {
        self.segs[seg.index()].space
    }

    /// Flip-time generation, or `u8::MAX` (never "younger" than anything)
    /// for indices beyond the snapshot.
    #[inline]
    fn gen_of(&self, seg: SegIndex) -> u8 {
        self.segs.get(seg.index()).map_or(u8::MAX, |s| s.gen)
    }
}

// ---------------------------------------------------------------------
// Per-worker allocation regions
// ---------------------------------------------------------------------

/// One open bump-allocation region in to-space: a segment privately owned
/// by a worker (its `SegInfo::owner` is set while open), with the live
/// watermark kept here — the table's `used` is synced only when the
/// region closes, so the hot allocation path takes no lock.
struct Region {
    seg: SegIndex,
    base: *mut u64,
    space: Space,
    /// Words bump-allocated so far (the region-local `used`).
    used: usize,
    /// Words already scanned by the owner's self-scan. Invariant: always
    /// advanced *before* the span `[scanned, used)` is walked, so a close
    /// that interrupts a scan pushes only the disjoint remainder.
    scanned: usize,
}

/// A worker's open regions, one per space. Worker 0's doubles as the main
/// thread's allocation state between regions.
struct WorkerRegions {
    open: [Option<Region>; 4],
}

// SAFETY: a region's base pointer targets a segment exclusively owned by
// the worker holding this value (enforced by `SegInfo::owner`); handing
// the struct to that one thread cannot alias.
unsafe impl Send for WorkerRegions {}

impl WorkerRegions {
    fn new() -> WorkerRegions {
        WorkerRegions {
            open: [None, None, None, None],
        }
    }

    /// Whether any open region still has unscanned, scannable words.
    fn has_unscanned(&self) -> bool {
        self.open
            .iter()
            .flatten()
            .any(|r| r.space != Space::Pure && r.scanned < r.used)
    }
}

// ---------------------------------------------------------------------
// Scan units: the currency of the work pool
// ---------------------------------------------------------------------

/// One shard of scanning work. Every unit's words are disjoint from every
/// other unit's, and each unit is consumed by exactly one worker — the
/// invariant that makes the plain (non-atomic) word access inside
/// [`scan_unit`] sound.
enum Unit {
    /// The unscanned suffix `[lo, hi)` of a closed to-space region.
    /// `lo` is always an object boundary (pair- or header-aligned).
    Span {
        base: *mut u64,
        space: Space,
        lo: usize,
        hi: usize,
    },
    /// A freshly copied multi-segment Typed object; pushed only after its
    /// copy completed. One base pointer per segment of the run.
    Run {
        bases: Box<[*mut u64]>,
        total: usize,
    },
    /// A dirty old-generation Pair/Typed segment (remset shard). `bases`
    /// are frozen run chunk bases; `gen` is the holder's generation for
    /// the still-dirty recomputation.
    Dirty {
        seg: SegIndex,
        bases: Box<[*mut u64]>,
        space: Space,
        gen: u8,
        used: usize,
    },
    /// A dirty old-generation weak-pair segment: cdrs (odd offsets) are
    /// traced here, cars are left for the weak pass (which receives the
    /// segment index through [`ParState::old_weak_dirty`]).
    DirtyWeak { base: *mut u64, used: usize },
}

// SAFETY: the pointers inside a unit refer to words no other live unit or
// open region covers (see the type docs); moving the unit to the worker
// that consumes it transfers that exclusive claim.
unsafe impl Send for Unit {}

// ---------------------------------------------------------------------
// Shared state for one parallel region
// ---------------------------------------------------------------------

/// The segment table plus the acquisition budget, guarded by one mutex.
/// Workers take this lock only to open/close regions and allocate
/// large-object runs — never for word traffic.
struct TableCore<'a> {
    segs: &'a mut SegmentTable,
    /// Mirror of [`Heap::acquisitions`]; written back when the region
    /// ends.
    acquisitions: u64,
    limit: Option<u64>,
}

struct WorkPool {
    queue: VecDeque<Unit>,
    /// Workers currently parked in [`next_unit`].
    idle: usize,
    /// Set once all workers are idle with an empty queue: the region's
    /// transitive closure is complete.
    done: bool,
}

struct Shared<'a> {
    table: Mutex<TableCore<'a>>,
    pool: Mutex<WorkPool>,
    cv: Condvar,
    /// Scan units parked for the *next* region (remset mode).
    deferred: Mutex<Vec<Unit>>,
    from_space: &'a FromSpaceMap,
    snap: &'a Snapshot,
    target: u8,
    trace_on: bool,
    workers: usize,
    /// Remset mode: freshly produced spans go to `deferred` instead of
    /// the pool, and workers skip self-scanning — the serial remset phase
    /// forwards but never sweeps, and the sweep phase picks the spans up.
    defer_spans: bool,
}

/// Per-worker scratch: counters mirroring the [`CollectionReport`]
/// fields the copy loop touches, merged by the main thread when the
/// region ends.
struct WorkerCtx {
    id: u8,
    regions: WorkerRegions,
    pairs_copied: u64,
    objects_copied: u64,
    words_copied: u64,
    pure_words_skipped: u64,
    segments_allocated: u64,
    /// Per-source-generation copy accounting (only when tracing).
    copied_per_gen: Vec<u64>,
    /// `SegmentsAcquired` counts, spliced into the trace at region end.
    acquired_events: Vec<u64>,
    /// Weak-pair to-space segments this worker closed.
    weak_closed: Vec<SegIndex>,
    /// Dirty shards that still hold old→young pointers.
    still_dirty: Vec<SegIndex>,
    /// Region residence time (includes idle waits at the pool).
    busy: Duration,
}

impl WorkerCtx {
    fn new(id: u8, regions: WorkerRegions, gens: usize) -> WorkerCtx {
        WorkerCtx {
            id,
            regions,
            pairs_copied: 0,
            objects_copied: 0,
            words_copied: 0,
            pure_words_skipped: 0,
            segments_allocated: 0,
            copied_per_gen: vec![0; gens],
            acquired_events: Vec::new(),
            weak_closed: Vec::new(),
            still_dirty: Vec::new(),
            busy: Duration::ZERO,
        }
    }
}

/// Mirrors [`Heap::note_acquisitions`] through the table lock, including
/// the fault-injection tripwire with the identical message: crossing the
/// configured limit inside the collector means `try_collect`'s worst-case
/// reservation was unsound, racing workers or not.
fn note_acquisitions_mt(core: &mut TableCore<'_>, ctx: &mut WorkerCtx, n: u64) {
    if let Some(limit) = core.limit {
        assert!(
            core.acquisitions + n <= limit,
            "segment-acquisition fault fired inside an infallible path: \
             {} acquired, {n} more requested, limit {limit} — a fallible \
             entry point's preflight should have rejected this operation",
            core.acquisitions,
        );
    }
    core.acquisitions += n;
    ctx.acquired_events.push(n);
}

// ---------------------------------------------------------------------
// The worker loop
// ---------------------------------------------------------------------

fn worker_loop(sh: &Shared<'_>, ctx: &mut WorkerCtx) {
    let t0 = Instant::now();
    loop {
        if !sh.defer_spans {
            self_scan(sh, ctx);
        }
        match next_unit(sh) {
            Some(unit) => scan_unit(sh, ctx, unit),
            None => break,
        }
    }
    ctx.busy += t0.elapsed();
}

/// Pops the next unit, or parks until one appears. Returns `None` when
/// every worker is parked on an empty queue — at that point no worker can
/// produce more work, so the region's closure is complete.
fn next_unit(sh: &Shared<'_>) -> Option<Unit> {
    let mut pool = sh.pool.lock().unwrap();
    loop {
        if let Some(unit) = pool.queue.pop_front() {
            return Some(unit);
        }
        if pool.done {
            return None;
        }
        pool.idle += 1;
        if pool.idle == sh.workers {
            pool.done = true;
            sh.cv.notify_all();
            return None;
        }
        loop {
            pool = sh.cv.wait(pool).unwrap();
            if pool.done {
                return None;
            }
            if !pool.queue.is_empty() {
                break;
            }
        }
        pool.idle -= 1;
    }
}

fn push_scan_unit(sh: &Shared<'_>, unit: Unit) {
    if sh.defer_spans {
        sh.deferred.lock().unwrap().push(unit);
    } else {
        sh.pool.lock().unwrap().queue.push_back(unit);
        sh.cv.notify_one();
    }
}

/// Scans the owner's open regions to a local fixpoint. The watermark is
/// advanced *before* each span is walked so that a region closed mid-scan
/// (the walk itself can trigger the close by copying into a full region)
/// pushes only the disjoint remainder.
fn self_scan(sh: &Shared<'_>, ctx: &mut WorkerCtx) {
    loop {
        let mut progressed = false;
        for slot in 0..4 {
            let (base, space, lo, hi) = {
                let Some(r) = ctx.regions.open[slot].as_mut() else {
                    continue;
                };
                if r.space == Space::Pure || r.scanned >= r.used {
                    continue;
                }
                let (lo, hi) = (r.scanned, r.used);
                r.scanned = hi;
                (r.base, r.space, lo, hi)
            };
            scan_span(sh, ctx, base, space, lo, hi);
            progressed = true;
        }
        if !progressed {
            return;
        }
    }
}

fn scan_unit(sh: &Shared<'_>, ctx: &mut WorkerCtx, unit: Unit) {
    match unit {
        Unit::Span {
            base,
            space,
            lo,
            hi,
        } => scan_span(sh, ctx, base, space, lo, hi),
        Unit::Run { bases, total } => {
            // SAFETY: the run was pushed only after its copy completed,
            // and the pool hand-off makes those writes visible; exactly
            // one worker consumes the unit.
            let header = Header::decode(unsafe { *bases[0] })
                .unwrap_or_else(|| panic!("corrupt header on copied run"));
            let traced_end = 1 + header.traced_words();
            debug_assert!(traced_end <= total);
            for pos in 1..traced_end {
                // SAFETY: `pos < total` words were all copied; chunk
                // indexing mirrors the run's segment layout.
                let slot = unsafe { bases[pos / SEGMENT_WORDS].add(pos % SEGMENT_WORDS) };
                forward_slot(sh, ctx, slot);
            }
        }
        Unit::Dirty {
            seg,
            bases,
            space,
            gen,
            used,
        } => scan_dirty_unit(sh, ctx, seg, &bases, space, gen, used),
        Unit::DirtyWeak { base, used } => {
            // Weak treatment: cdrs only; the weak pass settles the cars.
            let mut off = 1;
            while off < used {
                // SAFETY: the dirty segment is covered by exactly this
                // unit; odd offsets stay within `used`.
                forward_slot(sh, ctx, unsafe { base.add(off) });
                off += 2;
            }
        }
    }
}

/// Forwards the value in `*slot` if it is a from-space pointer. Plain
/// access: the slot belongs to exactly one unit or open region, consumed
/// by exactly one worker.
fn forward_slot(sh: &Shared<'_>, ctx: &mut WorkerCtx, slot: *mut u64) {
    // SAFETY: exclusive slot per the unit-disjointness invariant.
    let v = Value(unsafe { slot.read() });
    if v.is_ptr() && sh.from_space.contains(v.addr().seg()) {
        let nv = forward_mt(sh, ctx, v);
        // SAFETY: as above.
        unsafe { slot.write(nv.raw()) };
    }
}

/// Walks the traced words of a to-space span, forwarding from-space
/// referents. `lo` is an object boundary; spans never cross a segment
/// (objects larger than a segment go through [`Unit::Run`]).
fn scan_span(
    sh: &Shared<'_>,
    ctx: &mut WorkerCtx,
    base: *mut u64,
    space: Space,
    lo: usize,
    hi: usize,
) {
    match space {
        Space::Pair => {
            for off in lo..hi {
                // SAFETY: `[lo, hi)` is exclusively this scanner's.
                forward_slot(sh, ctx, unsafe { base.add(off) });
            }
        }
        Space::WeakPair => {
            // Cdrs only; cars get weak treatment in the weak pass.
            let mut off = lo;
            while off < hi {
                // SAFETY: as above; pairs are 2-aligned so `off + 1 < hi`.
                forward_slot(sh, ctx, unsafe { base.add(off + 1) });
                off += 2;
            }
        }
        Space::Typed => {
            let mut pos = lo;
            while pos < hi {
                // SAFETY: `pos` is a header offset inside the span.
                let header = Header::decode(unsafe { *base.add(pos) })
                    .unwrap_or_else(|| panic!("corrupt header while scanning span@{pos}"));
                for i in 0..header.traced_words() {
                    // SAFETY: the object's words lie inside the span.
                    forward_slot(sh, ctx, unsafe { base.add(pos + 1 + i) });
                }
                pos += header.total_words();
            }
        }
        Space::Pure => unreachable!("pure regions are skipped, not scanned"),
    }
}

/// One remset shard: forwards from-space referents and recomputes the
/// still-dirty verdict exactly like the serial
/// [`remset::scan_strong_segment`](super::remset).
fn scan_dirty_unit(
    sh: &Shared<'_>,
    ctx: &mut WorkerCtx,
    seg: SegIndex,
    bases: &[*mut u64],
    space: Space,
    gen: u8,
    used: usize,
) {
    let mut any_fwd = false;
    let mut still = false;
    let mut visit = |ctx: &mut WorkerCtx, slot: *mut u64| {
        // SAFETY: the dirty segment's words are covered by exactly this
        // unit; nothing else writes them during the region.
        let v = Value(unsafe { slot.read() });
        if !v.is_ptr() {
            return;
        }
        let tseg = v.addr().seg();
        if sh.from_space.contains(tseg) {
            let nv = forward_mt(sh, ctx, v);
            // SAFETY: as above.
            unsafe { slot.write(nv.raw()) };
            any_fwd = true;
        } else if sh.snap.gen_of(tseg) < gen {
            // Pre-collection pointer values can only target from-space or
            // uncollected segments, both captured (with their stable
            // generations) in the snapshot.
            still = true;
        }
    };
    match space {
        Space::Pair => {
            for off in 0..used {
                // SAFETY: `used <= SEGMENT_WORDS` for a pair segment.
                visit(ctx, unsafe { bases[0].add(off) });
            }
        }
        Space::Typed if used > SEGMENT_WORDS => {
            // A dirty multi-segment run: exactly one large object.
            // SAFETY: run chunk bases were frozen when the unit was built.
            let header = Header::decode(unsafe { *bases[0] })
                .unwrap_or_else(|| panic!("corrupt header in dirty run {seg:?}"));
            let traced_end = 1 + header.traced_words();
            for pos in 1..traced_end {
                // SAFETY: as above; `pos < used` words exist in the run.
                visit(ctx, unsafe {
                    bases[pos / SEGMENT_WORDS].add(pos % SEGMENT_WORDS)
                });
            }
        }
        Space::Typed => {
            let mut pos = 0;
            while pos < used {
                // SAFETY: headers pack the used prefix of the segment.
                let header = Header::decode(unsafe { *bases[0].add(pos) })
                    .unwrap_or_else(|| panic!("corrupt header in dirty {seg:?}@{pos}"));
                for i in 0..header.traced_words() {
                    // SAFETY: object fields follow the header in-segment.
                    visit(ctx, unsafe { bases[0].add(pos + 1 + i) });
                }
                pos += header.total_words();
            }
        }
        Space::WeakPair | Space::Pure => {
            unreachable!("weak and pure dirty segments take their own paths")
        }
    }
    // Every candidate was forwarded into the target generation, so the
    // batch's dirty contribution is a single comparison (serial parity).
    if any_fwd && sh.target < gen {
        still = true;
    }
    if still {
        ctx.still_dirty.push(seg);
    }
}

// ---------------------------------------------------------------------
// Multi-threaded forwarding: claim, copy, publish
// ---------------------------------------------------------------------

/// Forwards one from-space object under the claim-then-copy protocol.
/// The caller has checked `v.is_ptr()` and from-space membership.
fn forward_mt(sh: &Shared<'_>, ctx: &mut WorkerCtx, v: Value) -> Value {
    let addr = v.addr();
    let seg = addr.seg();
    debug_assert!(sh.from_space.contains(seg));
    let src_base = sh.snap.base(seg);
    // SAFETY: a from-space segment is in the snapshot with a non-null,
    // stable base; the first word is only ever accessed atomically while
    // workers run.
    let word0 = unsafe { AtomicU64::from_ptr(src_base.add(addr.offset())) };
    let mut first = word0.load(Ordering::Acquire);
    loop {
        if let Some(new) = fwd::decode(first) {
            return v.retag_at(new);
        }
        if first == fwd::BUSY {
            // Another worker is mid-copy: wait for its publishing store.
            std::hint::spin_loop();
            first = word0.load(Ordering::Acquire);
            continue;
        }
        match word0.compare_exchange_weak(first, fwd::BUSY, Ordering::Acquire, Ordering::Acquire) {
            Ok(_) => break,
            Err(current) => first = current,
        }
    }
    // This worker won the claim: it alone copies the object.
    let space = sh.snap.space(seg);
    let total = if v.is_pair_ptr() {
        2
    } else {
        Header::decode(first)
            .unwrap_or_else(|| panic!("corrupt header while forwarding {v:?}"))
            .total_words()
    };
    let to = if total > SEGMENT_WORDS {
        copy_large(sh, ctx, seg, first, space, total)
    } else {
        let (to, dst) = alloc_small_mt(sh, ctx, space, total);
        // SAFETY: `dst..dst+total` was just bump-reserved in this
        // worker's private region; the source words `1..total` are stable
        // from-space memory nobody writes during the collection (word 0,
        // which holds the claim marker in memory, is written from the
        // atomically loaded `first` instead). Small objects never span
        // segments, so one contiguous copy suffices.
        unsafe {
            dst.write(first);
            std::ptr::copy_nonoverlapping(src_base.add(addr.offset() + 1), dst.add(1), total - 1);
        }
        to
    };
    if v.is_pair_ptr() {
        ctx.pairs_copied += 1;
    } else {
        ctx.objects_copied += 1;
    }
    ctx.words_copied += total as u64;
    if sh.trace_on {
        ctx.copied_per_gen[sh.snap.gen_of(seg) as usize] += total as u64;
    }
    word0.store(fwd::encode(to), Ordering::Release);
    v.retag_at(to)
}

/// Copies a multi-segment object: the run is allocated under the table
/// lock, the body copied chunk-wise from the snapshot's source-run bases,
/// and — only after the copy completes — queued for scanning.
fn copy_large(
    sh: &Shared<'_>,
    ctx: &mut WorkerCtx,
    src_head: SegIndex,
    first: u64,
    space: Space,
    total: usize,
) -> WordAddr {
    let nsegs = total.div_ceil(SEGMENT_WORDS);
    let (head, dst_bases) = {
        let mut core = sh.table.lock().unwrap();
        note_acquisitions_mt(&mut core, ctx, nsegs as u64);
        let head = core.segs.allocate_run(space, sh.target, nsegs);
        core.segs.info_mut(head).used = total as u32;
        let bases: Box<[*mut u64]> = (0..nsegs)
            .map(|i| core.segs.base_ptr(SegIndex(head.0 + i as u32)))
            .collect();
        (head, bases)
    };
    ctx.segments_allocated += nsegs as u64;
    // SAFETY: the destination run is exclusively this worker's until the
    // forwarding word publishes; the source run's tails are in the
    // snapshot (the flip captures heads and tails). Word 0 holds the
    // claim marker in memory, so the loaded `first` is written instead.
    unsafe { dst_bases[0].write(first) };
    let mut pos = 1;
    while pos < total {
        let chunk = pos / SEGMENT_WORDS;
        let off = pos % SEGMENT_WORDS;
        let n = (SEGMENT_WORDS - off).min(total - pos);
        let src = sh.snap.base(SegIndex(src_head.0 + chunk as u32));
        // SAFETY: as above; both runs have `nsegs` chunks.
        unsafe { std::ptr::copy_nonoverlapping(src.add(off), dst_bases[chunk].add(off), n) };
        pos += n;
    }
    match space {
        Space::Typed => push_scan_unit(
            sh,
            Unit::Run {
                bases: dst_bases,
                total,
            },
        ),
        Space::Pure => ctx.pure_words_skipped += total as u64,
        Space::Pair | Space::WeakPair => unreachable!("pairs are never larger than a segment"),
    }
    WordAddr::new(head, 0)
}

/// Bump-allocates `words` in the worker's region for `space`, opening a
/// fresh region (and closing the full one) under the table lock when
/// needed. Returns the address and a direct pointer to it.
fn alloc_small_mt(
    sh: &Shared<'_>,
    ctx: &mut WorkerCtx,
    space: Space,
    words: usize,
) -> (WordAddr, *mut u64) {
    let slot = space.index();
    if let Some(r) = ctx.regions.open[slot].as_mut() {
        if r.used + words <= SEGMENT_WORDS {
            let off = r.used;
            r.used += words;
            // SAFETY: offset stays within the region's segment.
            return (WordAddr::new(r.seg, off), unsafe { r.base.add(off) });
        }
    }
    // Close the full region and open a fresh one, both under the table
    // lock; the closed region's unscanned span is pushed only after the
    // lock is dropped (lock order: table → pool, never nested).
    let old = ctx.regions.open[slot].take();
    let mut closed_span = None;
    let region = {
        let mut core = sh.table.lock().unwrap();
        if let Some(r) = old {
            let (span, weak, pure) = close_region(core.segs, r);
            closed_span = span;
            if let Some(seg) = weak {
                ctx.weak_closed.push(seg);
            }
            ctx.pure_words_skipped += pure;
        }
        note_acquisitions_mt(&mut core, ctx, 1);
        let seg = core.segs.allocate(space, sh.target);
        core.segs.info_mut(seg).owner = ctx.id;
        Region {
            seg,
            base: core.segs.base_ptr(seg),
            space,
            used: words,
            scanned: 0,
        }
    };
    ctx.segments_allocated += 1;
    let (seg, base) = (region.seg, region.base);
    ctx.regions.open[slot] = Some(region);
    if let Some(unit) = closed_span {
        push_scan_unit(sh, unit);
    }
    (WordAddr::new(seg, 0), base)
}

/// Closes a region: syncs the final watermark into the segment table,
/// clears the ownership mark, and classifies the leftovers. Returns
/// `(unscanned span, weak segment to record, pure words skipped)`.
fn close_region(segs: &mut SegmentTable, r: Region) -> (Option<Unit>, Option<SegIndex>, u64) {
    let info = segs.info_mut(r.seg);
    info.used = r.used as u32;
    info.owner = NO_OWNER;
    if r.space == Space::Pure {
        // Pointer-free: all of it is scan work the space segregation
        // saved (counted once per region, matching the serial skip).
        return (None, None, r.used as u64);
    }
    let weak = (r.space == Space::WeakPair).then_some(r.seg);
    let span = (r.scanned < r.used).then_some(Unit::Span {
        base: r.base,
        space: r.space,
        lo: r.scanned,
        hi: r.used,
    });
    (span, weak, 0)
}

// ---------------------------------------------------------------------
// Parallel regions: spawn, drain, merge
// ---------------------------------------------------------------------

/// Collector state that persists across the parallel regions of one
/// collection — the parallel engine's analogue of [`super::Scratch`].
struct ParState {
    g: u8,
    target: u8,
    workers: usize,
    from_space: FromSpaceMap,
    from_heads: Vec<SegIndex>,
    snap: Snapshot,
    /// One set of regions per worker; index 0 doubles as the main
    /// thread's allocation state between regions.
    regions: Vec<WorkerRegions>,
    /// Units parked for the next region: remset-deferred spans, spans
    /// closed by main-thread allocation, and main-thread large runs.
    pending: Vec<Unit>,
    /// Closed to-space weak-pair segments, for the weak pass.
    weak_tospace: Vec<SegIndex>,
    /// Dirty old-generation weak-pair segments, for the weak pass.
    old_weak_dirty: Vec<SegIndex>,
    trace_on: bool,
    copied_per_gen: Vec<u64>,
    report: CollectionReport,
}

/// Runs one parallel region: seeds the pool with `initial`, spawns the
/// workers, and merges their scratch back into the heap and report.
/// Returns the still-dirty segments reported by remset shards.
fn run_region(
    heap: &mut Heap,
    st: &mut ParState,
    initial: Vec<Unit>,
    defer_spans: bool,
) -> Vec<SegIndex> {
    // Fast path: nothing queued and (in sweep mode) nothing unscanned in
    // any region — spawning would be pure overhead.
    if initial.is_empty() && (defer_spans || !st.regions.iter().any(WorkerRegions::has_unscanned)) {
        return Vec::new();
    }
    let gens = heap.config.generations as usize;
    let mut ctxs: Vec<WorkerCtx> = st
        .regions
        .drain(..)
        .enumerate()
        .map(|(id, regions)| WorkerCtx::new(id as u8, regions, gens))
        .collect();
    let (acquisitions, deferred) = {
        let shared = Shared {
            table: Mutex::new(TableCore {
                segs: &mut heap.segs,
                acquisitions: heap.acquisitions,
                limit: heap.config.fail_acquisition_at,
            }),
            pool: Mutex::new(WorkPool {
                queue: initial.into(),
                idle: 0,
                done: false,
            }),
            cv: Condvar::new(),
            deferred: Mutex::new(Vec::new()),
            from_space: &st.from_space,
            snap: &st.snap,
            target: st.target,
            trace_on: st.trace_on,
            workers: st.workers,
            defer_spans,
        };
        std::thread::scope(|scope| {
            for ctx in ctxs.iter_mut() {
                let sh = &shared;
                scope.spawn(move || worker_loop(sh, ctx));
            }
        });
        // Ends the `&mut heap.segs` borrow held inside the table mutex.
        (
            shared.table.into_inner().unwrap().acquisitions,
            shared.deferred.into_inner().unwrap(),
        )
    };
    heap.acquisitions = acquisitions;
    st.pending.extend(deferred);
    let mut still_dirty = Vec::new();
    for mut ctx in ctxs {
        st.report.pairs_copied += ctx.pairs_copied;
        st.report.objects_copied += ctx.objects_copied;
        st.report.words_copied += ctx.words_copied;
        st.report.pure_words_skipped += ctx.pure_words_skipped;
        st.report.segments_allocated += ctx.segments_allocated;
        st.report.phases.worker_time += ctx.busy;
        if st.trace_on {
            for (g, words) in ctx.copied_per_gen.iter().enumerate() {
                st.copied_per_gen[g] += words;
            }
        }
        for count in ctx.acquired_events.drain(..) {
            heap.trace_emit(|| GcEvent::SegmentsAcquired { count });
        }
        st.weak_tospace.append(&mut ctx.weak_closed);
        still_dirty.append(&mut ctx.still_dirty);
        st.regions.push(ctx.regions);
    }
    still_dirty
}

// ---------------------------------------------------------------------
// Main-thread (between-regions) forwarding
// ---------------------------------------------------------------------
//
// Between regions the main thread holds the whole `&mut Heap`, so these
// mirror the serial engine's `forward`/`forwarded_p`/`get_fwd` — except
// that allocation goes through worker 0's regions instead of the heap's
// cursor table, keeping one allocator discipline for the collection. No
// claim marker can be observed here: regions end with every `BUSY` word
// overwritten by its forwarding word.

fn forwarded_p_st(heap: &Heap, st: &ParState, v: Value) -> bool {
    if !v.is_ptr() {
        return true;
    }
    if !st.from_space.contains(v.addr().seg()) {
        return true;
    }
    fwd::decode(heap.segs.word(v.addr())).is_some()
}

fn get_fwd_st(heap: &Heap, st: &ParState, v: Value) -> Value {
    if !v.is_ptr() || !st.from_space.contains(v.addr().seg()) {
        return v;
    }
    match fwd::decode(heap.segs.word(v.addr())) {
        Some(new) => v.retag_at(new),
        None => panic!("get_fwd of an unforwarded from-space object: {v:?}"),
    }
}

fn forward_st(heap: &mut Heap, st: &mut ParState, v: Value) -> Value {
    if !v.is_ptr() {
        return v;
    }
    let addr = v.addr();
    if !st.from_space.contains(addr.seg()) {
        return v;
    }
    let first = heap.segs.word(addr);
    debug_assert_ne!(first, fwd::BUSY, "claim marker survived a region barrier");
    if let Some(new) = fwd::decode(first) {
        return v.retag_at(new);
    }
    let info = heap.segs.info(addr.seg());
    let (space, src_gen) = (info.space, info.generation);
    let total = if v.is_pair_ptr() {
        2
    } else {
        Header::decode(first)
            .unwrap_or_else(|| panic!("corrupt header while forwarding {v:?}"))
            .total_words()
    };
    let to = alloc_st(heap, st, space, total);
    heap.segs.copy_words(addr, to, total);
    if v.is_pair_ptr() {
        st.report.pairs_copied += 1;
    } else {
        st.report.objects_copied += 1;
    }
    st.report.words_copied += total as u64;
    if st.trace_on {
        st.copied_per_gen[src_gen as usize] += total as u64;
    }
    heap.segs.set_word(addr, fwd::encode(to));
    v.retag_at(to)
}

/// Main-thread allocation into worker 0's regions. Large runs queue their
/// scan unit immediately — safe on this path because the same thread
/// finishes the copy before any region can consume the unit.
fn alloc_st(heap: &mut Heap, st: &mut ParState, space: Space, words: usize) -> WordAddr {
    if words > SEGMENT_WORDS {
        let nsegs = words.div_ceil(SEGMENT_WORDS);
        heap.note_acquisitions(nsegs as u64);
        let head = heap.segs.allocate_run(space, st.target, nsegs);
        heap.segs.info_mut(head).used = words as u32;
        st.report.segments_allocated += nsegs as u64;
        match space {
            Space::Typed => {
                let bases: Box<[*mut u64]> = (0..nsegs)
                    .map(|i| heap.segs.base_ptr(SegIndex(head.0 + i as u32)))
                    .collect();
                st.pending.push(Unit::Run {
                    bases,
                    total: words,
                });
            }
            Space::Pure => st.report.pure_words_skipped += words as u64,
            Space::Pair | Space::WeakPair => unreachable!("pairs never exceed a segment"),
        }
        return heap.segs.base_addr(head);
    }
    let slot = space.index();
    if let Some(r) = st.regions[0].open[slot].as_mut() {
        if r.used + words <= SEGMENT_WORDS {
            let off = r.used;
            r.used += words;
            return WordAddr::new(r.seg, off);
        }
    }
    if let Some(r) = st.regions[0].open[slot].take() {
        let (span, weak, pure) = close_region(&mut heap.segs, r);
        if let Some(unit) = span {
            st.pending.push(unit);
        }
        if let Some(seg) = weak {
            st.weak_tospace.push(seg);
        }
        st.report.pure_words_skipped += pure;
    }
    heap.note_acquisitions(1);
    let seg = heap.segs.allocate(space, st.target);
    st.report.segments_allocated += 1;
    heap.segs.info_mut(seg).owner = 0;
    st.regions[0].open[slot] = Some(Region {
        seg,
        base: heap.segs.base_ptr(seg),
        space,
        used: words,
        scanned: 0,
    });
    WordAddr::new(seg, 0)
}

/// Collector-side tconc append, mirroring the serial
/// [`guardian_pass::append_to_tconc`](super::guardian_pass) word for word
/// (Figure 3's write order, barriered stores, the stale-cdr fixup).
fn append_to_tconc_st(heap: &mut Heap, st: &mut ParState, tconc: Value, obj: Value) {
    let p_addr = alloc_st(heap, st, Space::Pair, 2);
    heap.segs.set_word(p_addr, Value::FALSE.raw());
    heap.segs.set_word(p_addr.add(1), Value::FALSE.raw());
    let p = Value::pair_at(p_addr);
    let last_raw = heap.cdr(tconc);
    let last = forward_st(heap, st, last_raw);
    if last != last_raw {
        heap.set_cdr(tconc, last);
    }
    heap.tconc_append_with(tconc, obj, p);
}

// ---------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------

/// Drains the dirty index (serial skip rules) into remset shard units.
fn drain_dirty_units(heap: &mut Heap, st: &mut ParState) -> Vec<Unit> {
    let mut units = Vec::new();
    for seg in heap.segs.take_dirty() {
        let Some(info) = heap.segs.try_info(seg) else {
            continue;
        };
        if !info.dirty || !info.is_head() {
            continue;
        }
        if info.generation <= st.g {
            // From-space: traced (and freed) wholesale.
            continue;
        }
        let (space, gen) = (info.space, info.generation);
        let used = info.used as usize;
        heap.segs.clear_dirty(seg);
        st.report.dirty_segments_scanned += 1;
        match space {
            Space::Pair | Space::Typed => {
                let nsegs = heap.segs.run_len(seg);
                let bases: Box<[*mut u64]> = (0..nsegs)
                    .map(|i| heap.segs.base_ptr(SegIndex(seg.0 + i as u32)))
                    .collect();
                units.push(Unit::Dirty {
                    seg,
                    bases,
                    space,
                    gen,
                    used,
                });
            }
            Space::WeakPair => {
                units.push(Unit::DirtyWeak {
                    base: heap.segs.base_ptr(seg),
                    used,
                });
                st.old_weak_dirty.push(seg);
            }
            Space::Pure => {
                // No pointers; the (spurious) flag is already cleared.
            }
        }
    }
    units
}

/// The guardian pass: the paper's three blocks run on the main thread in
/// protected-list order — the deterministic merge that fixes tconc
/// contents and order across worker counts — while each fixpoint round's
/// reachability closure (serial `kleene-sweep`) runs as a parallel
/// region. Logic and events mirror [`super::guardian_pass::run`].
fn guardian_parallel(heap: &mut Heap, st: &mut ParState) {
    let visited_before = st.report.guardian_entries_visited;
    let finalized_before = st.report.guardian_entries_finalized;
    let held_before = st.report.guardian_entries_held;
    let dropped_before = st.report.guardian_entries_dropped;
    let loops_before = st.report.guardian_loop_iterations;

    // Block 1: partition the protected lists of the collected generations.
    let mut pend_hold: Vec<GuardEntry> = Vec::new();
    let mut pend_final: Vec<GuardEntry> = Vec::new();
    let list_indices: Vec<usize> = if heap.config.flat_protected {
        vec![0]
    } else {
        (0..=st.g as usize).collect()
    };
    for i in list_indices {
        for e in std::mem::take(&mut heap.protected[i]) {
            st.report.guardian_entries_visited += 1;
            if forwarded_p_st(heap, st, e.obj) {
                pend_hold.push(e);
            } else {
                pend_final.push(e);
            }
        }
    }
    heap.trace_emit(|| GcEvent::GuardianPartition {
        visited: st.report.guardian_entries_visited - visited_before,
        pend_hold: pend_hold.len() as u64,
        pend_final: pend_final.len() as u64,
    });

    // Block 2: the fixpoint loop over entries with dead objects.
    loop {
        st.report.guardian_loop_iterations += 1;
        let mut final_list = Vec::new();
        let mut remaining = Vec::new();
        for e in pend_final {
            if forwarded_p_st(heap, st, e.tconc) {
                final_list.push(e);
            } else {
                remaining.push(e);
            }
        }
        pend_final = remaining;
        if final_list.is_empty() {
            break;
        }
        let round = st.report.guardian_loop_iterations - loops_before;
        let resurrected = final_list.len() as u64;
        heap.trace_emit(|| GcEvent::GuardianRound { round, resurrected });
        for e in final_list {
            let rep = forward_st(heap, st, e.rep);
            let tconc = get_fwd_st(heap, st, e.tconc);
            append_to_tconc_st(heap, st, tconc, rep);
            st.report.guardian_entries_finalized += 1;
        }
        // Round barrier: close the round's reachability in parallel
        // before the next round re-tests tconc accessibility.
        let pending = std::mem::take(&mut st.pending);
        let sd = run_region(heap, st, pending, false);
        debug_assert!(sd.is_empty());
    }
    st.report.guardian_entries_dropped += pend_final.len() as u64;

    // Block 3: migrate held entries to the target generation's list.
    let dest = if heap.config.flat_protected {
        0
    } else {
        st.target as usize
    };
    let mut held = Vec::new();
    let mut agent_copied = false;
    for e in pend_hold {
        if forwarded_p_st(heap, st, e.tconc) {
            let obj = get_fwd_st(heap, st, e.obj);
            let tconc = get_fwd_st(heap, st, e.tconc);
            let rep = if e.rep == e.obj {
                obj
            } else {
                agent_copied = agent_copied || e.rep.is_ptr();
                forward_st(heap, st, e.rep)
            };
            held.push(GuardEntry { obj, rep, tconc });
            st.report.guardian_entries_held += 1;
        } else {
            st.report.guardian_entries_dropped += 1;
        }
    }
    heap.protected[dest].extend(held);
    if agent_copied {
        let pending = std::mem::take(&mut st.pending);
        let sd = run_region(heap, st, pending, false);
        debug_assert!(sd.is_empty());
    }
    heap.trace_emit(|| GcEvent::GuardianOutcome {
        finalized: st.report.guardian_entries_finalized - finalized_before,
        held: st.report.guardian_entries_held - held_before,
        dropped: st.report.guardian_entries_dropped - dropped_before,
        loop_iterations: st.report.guardian_loop_iterations - loops_before,
    });
}

/// The Dickey-baseline finalizer pass, verbatim from the serial engine.
fn finalizer_st(heap: &mut Heap, st: &mut ParState) {
    let mut migrated = Vec::new();
    for i in 0..=st.g as usize {
        for mut e in std::mem::take(&mut heap.finalize_watch[i]) {
            if forwarded_p_st(heap, st, e.obj) {
                e.obj = get_fwd_st(heap, st, e.obj);
                migrated.push(e);
            } else {
                st.report.finalized_ids.push(e.id);
            }
        }
    }
    heap.finalize_watch[st.target as usize].extend(migrated);
}

// ---------------------------------------------------------------------
// The parallel weak pass
// ---------------------------------------------------------------------

/// One weak-pair segment to fix: cars settled, still-dirty recomputed.
struct WeakUnit {
    seg: SegIndex,
    base: *mut u64,
    gen: u8,
    used: usize,
    /// Dirty old-generation segment: re-mark it if it still holds an
    /// old→young pointer (to-space segments are never re-marked, matching
    /// the serial pass).
    remark: bool,
}

// SAFETY: each unit covers one segment's words, consumed by one worker.
unsafe impl Send for WeakUnit {}

#[derive(Default)]
struct WeakOut {
    scanned: u64,
    broken: u64,
    forwarded: u64,
    still_dirty: Vec<SegIndex>,
    busy: Duration,
}

/// Closes every open weak-pair region so the weak pass sees exactly the
/// closed-segment list — the same coverage discipline as the serial
/// engine, where a weak segment is visited by the pass that first sees
/// it and later passes only visit segments allocated since.
fn close_weak_regions(heap: &mut Heap, st: &mut ParState) {
    for regions in &mut st.regions {
        if let Some(r) = regions.open[Space::WeakPair.index()].take() {
            debug_assert!(r.scanned >= r.used, "weak region not fully swept");
            let (span, weak, pure) = close_region(&mut heap.segs, r);
            debug_assert!(pure == 0);
            if let Some(unit) = span {
                st.pending.push(unit);
            }
            if let Some(seg) = weak {
                st.weak_tospace.push(seg);
            }
        }
    }
}

/// The weak-pair pass (paper §4, final paragraph), sharded by segment.
/// Pure reads of from-space forwarding words plus exclusive writes to
/// each unit's cars — no copying, so no table lock and no claim protocol.
fn weak_parallel(heap: &mut Heap, st: &mut ParState) {
    let scanned_before = st.report.weak_pairs_scanned;
    let broken_before = st.report.weak_cars_broken;
    let forwarded_before = st.report.weak_cars_forwarded;
    close_weak_regions(heap, st);
    let mut units: Vec<WeakUnit> = Vec::new();
    for seg in st.weak_tospace.drain(..) {
        let info = heap.segs.info(seg);
        units.push(WeakUnit {
            seg,
            base: heap.segs.base_ptr(seg),
            gen: info.generation,
            used: info.used as usize,
            remark: false,
        });
    }
    for seg in st.old_weak_dirty.drain(..) {
        let info = heap.segs.info(seg);
        units.push(WeakUnit {
            seg,
            base: heap.segs.base_ptr(seg),
            gen: info.generation,
            used: info.used as usize,
            remark: true,
        });
    }
    let mut outs: Vec<WeakOut> = (0..st.workers).map(|_| WeakOut::default()).collect();
    if !units.is_empty() {
        let segs = &heap.segs;
        let from_space = &st.from_space;
        let snap = &st.snap;
        let queue = Mutex::new(units);
        std::thread::scope(|scope| {
            for out in outs.iter_mut() {
                let queue = &queue;
                scope.spawn(move || {
                    let t0 = Instant::now();
                    loop {
                        let unit = queue.lock().unwrap().pop();
                        match unit {
                            Some(u) => weak_fix_unit(segs, from_space, snap, u, out),
                            None => break,
                        }
                    }
                    out.busy += t0.elapsed();
                });
            }
        });
    }
    for out in outs {
        st.report.weak_pairs_scanned += out.scanned;
        st.report.weak_cars_broken += out.broken;
        st.report.weak_cars_forwarded += out.forwarded;
        st.report.phases.worker_time += out.busy;
        for seg in out.still_dirty {
            // The remembered-set drain cleared the flag; re-mark (and
            // re-index) only segments that still hold old→young pointers.
            heap.segs.mark_dirty(seg);
        }
    }
    heap.trace_emit(|| GcEvent::WeakSweep {
        scanned: st.report.weak_pairs_scanned - scanned_before,
        broken: st.report.weak_cars_broken - broken_before,
        forwarded: st.report.weak_cars_forwarded - forwarded_before,
    });
}

/// Fixes every weak car in one segment, mirroring the serial
/// [`weak_pass::run`](super::weak_pass) per-pair logic. The live segment
/// table is shared read-only for the generation lookups (no allocation
/// happens during the weak pass, so it is stable).
fn weak_fix_unit(
    segs: &SegmentTable,
    from_space: &FromSpaceMap,
    snap: &Snapshot,
    u: WeakUnit,
    out: &mut WeakOut,
) {
    let mut still_dirty = false;
    let mut off = 0;
    while off < u.used {
        out.scanned += 1;
        // SAFETY: this unit exclusively covers the segment's words; cars
        // are written only here.
        let car_ptr = unsafe { u.base.add(off) };
        let car = Value(unsafe { car_ptr.read() });
        if car.is_ptr() && from_space.contains(car.addr().seg()) {
            let a = car.addr();
            // SAFETY: from-space words are read-only by now (every
            // region has joined, so no claim marker can remain).
            let word0 = unsafe { snap.base(a.seg()).add(a.offset()).read() };
            debug_assert_ne!(word0, fwd::BUSY, "claim marker survived into the weak pass");
            match fwd::decode(word0) {
                Some(new) => {
                    // Referent survived (root-reachable or salvaged by a
                    // guardian): update the weak pointer.
                    // SAFETY: as above.
                    unsafe { car_ptr.write(car.retag_at(new).raw()) };
                    out.forwarded += 1;
                }
                None => {
                    // Referent is garbage: break the weak pointer.
                    // SAFETY: as above.
                    unsafe { car_ptr.write(Value::FALSE.raw()) };
                    out.broken += 1;
                }
            }
        }
        // SAFETY: as above; reads of the settled car and the cdr.
        let car_now = Value(unsafe { car_ptr.read() });
        let cdr = Value(unsafe { u.base.add(off + 1).read() });
        still_dirty |= points_younger(segs, car_now, u.gen);
        still_dirty |= points_younger(segs, cdr, u.gen);
        off += 2;
    }
    if u.remark && still_dirty {
        out.still_dirty.push(u.seg);
    }
}

fn points_younger(segs: &SegmentTable, v: Value, holder_gen: u8) -> bool {
    v.is_ptr() && segs.info(v.addr().seg()).generation < holder_gen
}

/// Closes every remaining open region after the final pass, syncing the
/// watermarks and clearing ownership so the heap is region-free (and
/// verifier-clean) between collections.
fn flush_regions(heap: &mut Heap, st: &mut ParState) {
    for regions in &mut st.regions {
        for slot in 0..4 {
            if let Some(r) = regions.open[slot].take() {
                debug_assert!(
                    r.space == Space::Pure || r.scanned >= r.used,
                    "region flushed with unscanned words"
                );
                let (span, weak, pure) = close_region(&mut heap.segs, r);
                debug_assert!(span.is_none() && weak.is_none());
                st.report.pure_words_skipped += pure;
            }
        }
    }
    debug_assert!(
        st.pending.is_empty(),
        "scan units left after the final region"
    );
}

// ---------------------------------------------------------------------
// The collection driver
// ---------------------------------------------------------------------

/// Runs a full parallel collection of generations `0..=g`, with the same
/// phase order, events, and report semantics as [`super::run`].
pub(crate) fn run(heap: &mut Heap, g: u8) -> CollectionReport {
    let start = Instant::now();
    let target = heap
        .config
        .promotion
        .target(g, heap.config.max_generation());

    // Phase 1: flip — identical to the serial engine, plus the snapshot
    // of segment bases the workers read without the table lock.
    let mut from_space = FromSpaceMap::with_capacity(heap.segs.segments_total());
    let mut from_heads = Vec::new();
    for gen in 0..=g {
        for seg in heap.segs.drain_generation(gen) {
            if from_space.contains(seg) {
                continue;
            }
            from_space.insert(seg);
            if heap.segs.info(seg).is_head() {
                from_heads.push(seg);
            }
        }
    }
    heap.reset_cursors(g, target);
    // The log stays empty (regions replace the cursor allocator during a
    // parallel collection) but must be `Some` so `tconc_append_with`
    // tags collector-side appends.
    heap.tospace_log = Some(Vec::new());
    let snap = Snapshot::capture(heap);
    let workers = heap.config.workers;

    let mut st = ParState {
        g,
        target,
        workers,
        from_space,
        from_heads,
        snap,
        regions: (0..workers).map(|_| WorkerRegions::new()).collect(),
        pending: Vec::new(),
        weak_tospace: Vec::new(),
        old_weak_dirty: Vec::new(),
        trace_on: heap.tracing_enabled(),
        copied_per_gen: vec![0; heap.config.generations as usize],
        report: CollectionReport {
            collection_index: heap.collections,
            collected_generation: g,
            target_generation: target,
            ..CollectionReport::default()
        },
    };
    heap.trace_emit(|| GcEvent::CollectionBegin {
        index: st.report.collection_index,
        collected_generation: g,
        target_generation: target,
    });
    let mut mark = start;
    let mut lap = |now: Instant| {
        let d = now - mark;
        mark = now;
        d
    };
    st.report.phases.flip = lap(Instant::now());
    emit_phase(heap, GcPhase::Flip, st.report.phases.flip);

    // Phase 2: roots, on the main thread (copies land in worker 0's
    // regions; their transitive closure waits for the sweep).
    let mut roots = std::mem::take(&mut heap.roots);
    let traced = roots.for_each_slot(|slot| {
        let v = *slot;
        if v.is_ptr() {
            *slot = forward_st(heap, &mut st, v);
        }
    });
    heap.roots = roots;
    st.report.roots_traced = traced;
    st.report.phases.roots = lap(Instant::now());
    emit_phase(heap, GcPhase::Roots, st.report.phases.roots);

    // Phase 3: remembered set, sharded across the workers. Spans of
    // copied objects are deferred to the sweep (serial parity: the
    // remset phase forwards but never sweeps).
    let units = drain_dirty_units(heap, &mut st);
    let still_dirty = run_region(heap, &mut st, units, true);
    for seg in still_dirty {
        heap.segs.mark_dirty(seg);
    }
    st.report.phases.remset = lap(Instant::now());
    emit_phase(heap, GcPhase::Remset, st.report.phases.remset);

    // Phase 4: the main sweep — the parallel kleene-sweep.
    let pending = std::mem::take(&mut st.pending);
    let sd = run_region(heap, &mut st, pending, false);
    debug_assert!(sd.is_empty());
    st.report.phases.sweep = lap(Instant::now());
    emit_phase(heap, GcPhase::Sweep, st.report.phases.sweep);

    if heap.config.ablate_weak_pass_first {
        // Ablation: break weak cars BEFORE the guardian pass gets to
        // salvage their referents (see `GcConfig::ablate_weak_pass_first`).
        weak_parallel(heap, &mut st);
        let d = lap(Instant::now());
        st.report.phases.weak += d;
        emit_phase(heap, GcPhase::Weak, d);
    }

    // Phase 5: guardians (main-thread blocks, parallel round closures).
    guardian_parallel(heap, &mut st);
    st.report.phases.guardian = lap(Instant::now());
    emit_phase(heap, GcPhase::Guardian, st.report.phases.guardian);

    // Phase 6: Dickey-baseline finalizers.
    finalizer_st(heap, &mut st);
    st.report.phases.finalizer = lap(Instant::now());
    emit_phase(heap, GcPhase::Finalizer, st.report.phases.finalizer);

    // Phase 7: weak pairs — after the guardian pass, "so if the car field
    // of a weak pair points to an object that has been salvaged, the
    // object will still be in the car field after collection."
    weak_parallel(heap, &mut st);
    let d = lap(Instant::now());
    st.report.phases.weak += d;
    emit_phase(heap, GcPhase::Weak, d);

    // Phase 8: reclaim the from-space.
    flush_regions(heap, &mut st);
    let heads = std::mem::take(&mut st.from_heads);
    for head in heads {
        let run = heap.segs.run_len(head) as u64;
        st.report.segments_freed += run;
        heap.segs.free(head);
        heap.trace_emit(|| GcEvent::SegmentsReleased { count: run });
    }
    heap.tospace_log = None;
    st.report.phases.reclaim = lap(Instant::now());
    emit_phase(heap, GcPhase::Reclaim, st.report.phases.reclaim);

    if st.trace_on {
        for (generation, &words) in st.copied_per_gen.iter().enumerate() {
            if words > 0 {
                heap.trace_emit(|| GcEvent::GenCopied {
                    generation: generation as u8,
                    words,
                });
            }
        }
    }
    st.report.duration = start.elapsed();
    heap.trace_emit(|| GcEvent::CollectionEnd {
        index: st.report.collection_index,
        words_copied: st.report.words_copied,
        pairs_copied: st.report.pairs_copied,
        objects_copied: st.report.objects_copied,
        guardian_entries_visited: st.report.guardian_entries_visited,
        weak_pairs_scanned: st.report.weak_pairs_scanned,
        dur_ns: st.report.duration.as_nanos() as u64,
    });
    st.report
}

#[cfg(test)]
mod tests {
    use crate::config::GcConfig;
    use crate::heap::Heap;
    use crate::value::Value;

    fn heap_with_workers(workers: usize) -> Heap {
        Heap::new(GcConfig {
            workers,
            ..GcConfig::new()
        })
    }

    /// Builds a linked list of `n` fixnums, interleaved with vectors and
    /// strings so all four spaces see traffic.
    fn build_mixed_graph(h: &mut Heap, n: i64) -> Value {
        let mut list = Value::NIL;
        for i in 0..n {
            let cell = if i % 5 == 0 {
                let s = h.make_string("spine");
                h.make_vector(3, s)
            } else {
                Value::fixnum(i)
            };
            list = h.cons(cell, list);
        }
        list
    }

    fn check_mixed_graph(h: &Heap, mut list: Value, n: i64) {
        for i in (0..n).rev() {
            let head = h.car(list);
            if i % 5 == 0 {
                assert!(h.is_vector(head), "element {i}");
                assert_eq!(h.string_value(h.vector_ref(head, 0)), "spine");
            } else {
                assert_eq!(head, Value::fixnum(i), "element {i}");
            }
            list = h.cdr(list);
        }
        assert!(list.is_nil());
    }

    #[test]
    fn parallel_collection_preserves_a_mixed_graph() {
        for workers in [2, 4] {
            let mut h = heap_with_workers(workers);
            let list = build_mixed_graph(&mut h, 60);
            let root = h.root(list);
            h.collect(0);
            h.verify().expect("heap valid after parallel collection");
            check_mixed_graph(&h, root.get(), 60);
            // A second collection exercises the remembered set (the list
            // now lives in generation 1 and gets mutated).
            let young = h.cons(Value::fixnum(-1), root.get());
            root.set(young);
            h.collect(0);
            h.verify().expect("heap valid after second collection");
            assert_eq!(h.car(root.get()), Value::fixnum(-1));
            check_mixed_graph(&h, h.cdr(root.get()), 60);
        }
    }

    #[test]
    fn parallel_counters_match_the_serial_engine() {
        let run = |workers: usize| {
            let mut h = heap_with_workers(workers);
            let list = build_mixed_graph(&mut h, 40);
            let root = h.root(list);
            let weak = h.weak_cons(h.car(root.get()), Value::NIL);
            let _weak_root = h.root(weak);
            let dead = h.cons(Value::fixnum(7), Value::NIL);
            let g = h.make_guardian();
            g.register(&mut h, dead);
            let r = h.collect(0).clone();
            h.verify().expect("valid heap");
            r
        };
        let serial = run(1);
        for workers in [2, 4] {
            let par = run(workers);
            assert_eq!(par.pairs_copied, serial.pairs_copied, "{workers} workers");
            assert_eq!(par.objects_copied, serial.objects_copied);
            assert_eq!(par.words_copied, serial.words_copied);
            assert_eq!(par.pure_words_skipped, serial.pure_words_skipped);
            assert_eq!(par.roots_traced, serial.roots_traced);
            assert_eq!(
                par.guardian_entries_visited,
                serial.guardian_entries_visited
            );
            assert_eq!(
                par.guardian_entries_finalized,
                serial.guardian_entries_finalized
            );
            assert_eq!(par.weak_cars_broken, serial.weak_cars_broken);
            assert_eq!(par.weak_cars_forwarded, serial.weak_cars_forwarded);
            assert_eq!(par.segments_freed, serial.segments_freed);
        }
    }

    #[test]
    fn weak_pairs_break_and_forward_in_parallel() {
        for workers in [2, 4] {
            let mut h = heap_with_workers(workers);
            let live = h.cons(Value::fixnum(1), Value::NIL);
            let dead = h.cons(Value::fixnum(2), Value::NIL);
            let w_live = h.weak_cons(live, Value::NIL);
            let w_dead = h.weak_cons(dead, Value::NIL);
            let _r1 = h.root(live);
            let r2 = h.root(w_live);
            let r3 = h.root(w_dead);
            let report = h.collect(0).clone();
            h.verify().expect("valid heap");
            assert_eq!(report.weak_cars_broken, 1);
            assert_eq!(report.weak_cars_forwarded, 1);
            assert_eq!(h.car(r3.get()), Value::FALSE, "dead referent broken");
            assert_eq!(h.car(h.car(r2.get())), Value::fixnum(1), "live kept");
        }
    }

    #[test]
    fn guardian_order_is_registration_order_across_worker_counts() {
        let order = |workers: usize| {
            let mut h = heap_with_workers(workers);
            let g = h.make_guardian();
            for i in 0..12 {
                let obj = h.cons(Value::fixnum(i), Value::NIL);
                g.register(&mut h, obj);
            }
            h.collect(0);
            h.verify().expect("valid heap");
            let mut seen = Vec::new();
            while let Some(v) = g.poll(&mut h) {
                seen.push(h.car(v).as_fixnum());
            }
            seen
        };
        let expected: Vec<i64> = (0..12).collect();
        assert_eq!(order(1), expected);
        assert_eq!(order(2), expected);
        assert_eq!(order(4), expected);
    }

    #[test]
    fn large_objects_survive_parallel_collection() {
        for workers in [2, 4] {
            let mut h = heap_with_workers(workers);
            // A vector larger than one segment forces the multi-segment
            // Run path; a big string exercises the pure-run path.
            let elem = h.cons(Value::fixnum(9), Value::NIL);
            let big = h.make_vector(700, elem);
            let text = "x".repeat(5000);
            let s = h.make_string(&text);
            let r1 = h.root(big);
            let r2 = h.root(s);
            h.collect(0);
            h.verify().expect("valid heap");
            assert_eq!(h.vector_len(r1.get()), 700);
            assert_eq!(h.car(h.vector_ref(r1.get(), 699)), Value::fixnum(9));
            assert_eq!(h.string_value(r2.get()).len(), 5000);
        }
    }

    #[test]
    fn worker_time_is_recorded_and_excluded_from_total() {
        let mut h = heap_with_workers(4);
        let list = build_mixed_graph(&mut h, 400);
        let _root = h.root(list);
        let report = h.collect(0).clone();
        // Phase times (the wall-clock breakdown) never include the
        // workers' thread-seconds.
        let wall = report.phases.flip
            + report.phases.roots
            + report.phases.remset
            + report.phases.sweep
            + report.phases.guardian
            + report.phases.finalizer
            + report.phases.weak
            + report.phases.reclaim;
        assert_eq!(report.phases.total(), wall);
    }

    #[test]
    fn repeated_parallel_collections_stay_stable() {
        let mut h = heap_with_workers(3);
        let roots = h.root_vec();
        for round in 0..6 {
            for i in 0..30 {
                let p = h.cons(Value::fixnum(round * 100 + i), Value::NIL);
                if i % 3 == 0 {
                    roots.push(p);
                }
            }
            let gen = (round % 2) as u8;
            h.collect(gen);
            h.verify().expect("valid heap each round");
        }
        assert!(h.collection_count() >= 6);
    }
}
