//! The generation-based stop-and-copy collector (paper Section 4).
//!
//! A collection of generation `g` collects all generations `0..=g` (the
//! paper's policy: "when a generation is collected, all younger
//! generations are collected as well") into the *target generation*
//! `min(g+1, n)`. The phases, in order:
//!
//! 1. **Flip** — snapshot the from-space (every segment in a collected
//!    generation) and reset allocation cursors for the collected and
//!    target generations.
//! 2. **Roots** — forward every registered root slot.
//! 3. **Remembered set** — scan dirty older-generation segments for
//!    pointers into the from-space (see [`remset`]).
//! 4. **Kleene sweep** — Cheney-style iterative scan of copied objects
//!    until no newly copied objects remain (the paper's `kleene-sweep`).
//! 5. **Guardian pass** — the paper's three-block protected-list
//!    algorithm, including the `pend-final-list` fixpoint loop (see
//!    [`guardian_pass`]).
//! 6. **Finalizer pass** — the Dickey-style baseline watch lists.
//! 7. **Weak pass** — break or forward weak-pair cars; runs after the
//!    guardian pass "so if the car field of a weak pair points to an
//!    object that has been salvaged, the object will still be in the car
//!    field after collection" (see [`weak_pass`]).
//! 8. **Reclaim** — return every from-space segment to the free pool.

pub(crate) mod guardian_pass;
pub(crate) mod remset;
pub(crate) mod weak_pass;

use crate::header::Header;
use crate::heap::Heap;
use crate::stats::CollectionReport;
use crate::value::{fwd, Value};
use guardians_segments::{SegIndex, Space};
use std::time::Instant;

/// Collector-local scratch state for one collection.
pub(crate) struct Scratch {
    /// Highest generation being collected.
    pub g: u8,
    /// Generation survivors are copied into.
    pub target: u8,
    /// `from_space[i]` — segment `i` is part of the from-space. Segments
    /// created during the collection are beyond the vector and therefore
    /// not in the from-space.
    pub from_space: Vec<bool>,
    /// Head segments to free at the end.
    pub from_heads: Vec<SegIndex>,
    /// To-space segments with their scan progress (Cheney scan state).
    pub worklist: Vec<(SegIndex, usize)>,
    /// To-space weak-pair segments, for the weak pass.
    pub weak_tospace: Vec<SegIndex>,
    /// Dirty old-generation weak-pair segments, for the weak pass.
    pub old_weak_dirty: Vec<SegIndex>,
    /// The report under construction.
    pub report: CollectionReport,
}

impl Scratch {
    #[inline]
    pub fn in_from(&self, seg: SegIndex) -> bool {
        self.from_space.get(seg.index()).copied().unwrap_or(false)
    }
}

/// Runs a full collection of generations `0..=g`.
pub(crate) fn run(heap: &mut Heap, g: u8) -> CollectionReport {
    let start = Instant::now();
    let target = heap.config.promotion.target(g, heap.config.max_generation());

    // Phase 1: flip.
    let mut from_space = vec![false; heap.segs.segments_total()];
    let mut from_heads = Vec::new();
    for (idx, info) in heap.segs.iter() {
        if info.generation <= g {
            from_space[idx.index()] = true;
            if info.is_head() {
                from_heads.push(idx);
            }
        }
    }
    heap.reset_cursors(g, target);
    heap.tospace_log = Some(Vec::new());

    let mut s = Scratch {
        g,
        target,
        from_space,
        from_heads,
        worklist: Vec::new(),
        weak_tospace: Vec::new(),
        old_weak_dirty: Vec::new(),
        report: CollectionReport {
            collection_index: heap.collections,
            collected_generation: g,
            target_generation: target,
            ..CollectionReport::default()
        },
    };

    // Phase 2: roots.
    let mut roots = std::mem::take(&mut heap.roots);
    let traced = roots.for_each_slot(|slot| {
        let v = *slot;
        if v.is_ptr() {
            *slot = forward(heap, &mut s, v);
        }
    });
    heap.roots = roots;
    s.report.roots_traced = traced;

    // Phase 3: remembered set.
    remset::scan_dirty(heap, &mut s);

    // Phase 4: kleene sweep.
    kleene_sweep(heap, &mut s);

    if heap.config.ablate_weak_pass_first {
        // Ablation: break weak cars BEFORE the guardian pass gets to
        // salvage their referents — the ordering bug the paper's Section 4
        // warns against. A second pass below keeps the heap valid for
        // weak pairs copied during the guardian pass itself.
        weak_pass::run(heap, &mut s);
    }

    // Phase 5: guardians.
    guardian_pass::run(heap, &mut s);

    // Phase 6: Dickey-baseline finalizers.
    finalizer_pass(heap, &mut s);

    // Phase 7: weak pairs — after the guardian pass, "so if the car field
    // of a weak pair points to an object that has been salvaged, the
    // object will still be in the car field after collection."
    weak_pass::run(heap, &mut s);

    // Phase 8: reclaim the from-space.
    let heads = std::mem::take(&mut s.from_heads);
    for head in heads {
        s.report.segments_freed += heap.segs.run_len(head) as u64;
        heap.segs.free(head);
    }
    heap.tospace_log = None;

    s.report.duration = start.elapsed();
    s.report
}

/// The paper's `forwarded?` predicate: "true when obj has been forwarded
/// during this collection or when it resides in a generation older than
/// those being collected". Non-pointers (fixnums, immediates) are
/// trivially "accessible".
pub(crate) fn forwarded_p(heap: &Heap, s: &Scratch, v: Value) -> bool {
    if !v.is_ptr() {
        return true;
    }
    if !s.in_from(v.addr().seg()) {
        return true;
    }
    fwd::decode(heap.segs.word(v.addr())).is_some()
}

/// The paper's `get-fwd-addr`: "returns either the forwarding address of
/// obj or the address of obj itself". The caller must know the object is
/// accessible (`forwarded_p`).
pub(crate) fn get_fwd(heap: &Heap, s: &Scratch, v: Value) -> Value {
    if !v.is_ptr() || !s.in_from(v.addr().seg()) {
        return v;
    }
    match fwd::decode(heap.segs.word(v.addr())) {
        Some(new) => v.retag_at(new),
        None => panic!("get_fwd of an unforwarded from-space object: {v:?}"),
    }
}

/// Copies `v` to the target generation if it is an unforwarded from-space
/// object; returns the (possibly updated) pointer. Leaves a broken heart
/// behind.
pub(crate) fn forward(heap: &mut Heap, s: &mut Scratch, v: Value) -> Value {
    if !v.is_ptr() {
        return v;
    }
    let addr = v.addr();
    if !s.in_from(addr.seg()) {
        return v;
    }
    let first = heap.segs.word(addr);
    if let Some(new) = fwd::decode(first) {
        return v.retag_at(new);
    }
    let new_addr = if v.is_pair_ptr() {
        // Pairs keep their space: a weak pair is copied into the target
        // generation's weak-pair space and stays weak.
        let space = heap.segs.info(addr.seg()).space;
        let to = heap.alloc_words_internal(space, s.target, 2);
        heap.segs.set_word(to, first);
        let cdr = heap.segs.word(addr.add(1));
        heap.segs.set_word(to.add(1), cdr);
        s.report.pairs_copied += 1;
        s.report.words_copied += 2;
        to
    } else {
        let header = Header::decode(first)
            .unwrap_or_else(|| panic!("corrupt header while forwarding {v:?}"));
        let total = header.total_words();
        let space = heap.segs.info(addr.seg()).space;
        let to = heap.alloc_words_internal(space, s.target, total);
        for i in 0..total {
            let w = heap.segs.word(addr.add(i));
            heap.segs.set_word(to.add(i), w);
        }
        s.report.objects_copied += 1;
        s.report.words_copied += total as u64;
        to
    };
    heap.segs.set_word(addr, fwd::encode(new_addr));
    v.retag_at(new_addr)
}

/// Scans one to-space segment (or run) from `off`, forwarding every traced
/// field that points into the from-space. Returns the new scan offset.
/// `used` is re-read after every object because scanning may copy further
/// objects into this very segment.
fn scan_segment(heap: &mut Heap, s: &mut Scratch, seg: SegIndex, mut off: usize) -> usize {
    let space = heap.segs.info(seg).space;
    loop {
        let used = heap.segs.info(seg).used as usize;
        if off >= used {
            return off;
        }
        let base = heap.segs.base_addr(seg);
        match space {
            Space::Pair => {
                scan_word(heap, s, base.add(off));
                scan_word(heap, s, base.add(off + 1));
                off += 2;
            }
            Space::WeakPair => {
                // Weak treatment: "the car field is not touched" during
                // the normal trace; the weak pass fixes it afterwards.
                scan_word(heap, s, base.add(off + 1));
                off += 2;
            }
            Space::Typed => {
                let header = Header::decode(heap.segs.word(base.add(off)))
                    .unwrap_or_else(|| panic!("corrupt header while scanning {seg:?}@{off}"));
                for i in 0..header.traced_words() {
                    scan_word(heap, s, base.add(off + 1 + i));
                }
                off += header.total_words();
            }
            Space::Pure => {
                // Pointer-free objects: nothing to scan — skip the
                // segment wholesale.
                s.report.pure_words_skipped += (used - off) as u64;
                off = used;
            }
        }
    }
}

#[inline]
fn scan_word(heap: &mut Heap, s: &mut Scratch, addr: guardians_segments::WordAddr) {
    let v = Value(heap.segs.word(addr));
    if v.is_ptr() && s.in_from(v.addr().seg()) {
        let nv = forward(heap, s, v);
        heap.segs.set_word(addr, nv.raw());
    }
}

/// The paper's `kleene-sweep(g)`: "iteratively sweeps copied objects until
/// there are no newly copied objects to sweep."
pub(crate) fn kleene_sweep(heap: &mut Heap, s: &mut Scratch) {
    loop {
        for seg in heap.drain_tospace_log() {
            s.report.segments_allocated += heap.segs.run_len(seg) as u64;
            if heap.segs.info(seg).space == Space::WeakPair {
                s.weak_tospace.push(seg);
            }
            s.worklist.push((seg, 0));
        }
        let mut progress = false;
        for i in 0..s.worklist.len() {
            let (seg, off) = s.worklist[i];
            let new_off = scan_segment(heap, s, seg, off);
            if new_off != off {
                progress = true;
                s.worklist[i].1 = new_off;
            }
        }
        if !progress && heap.tospace_log_is_empty() {
            return;
        }
    }
}

/// Processes the Dickey-baseline watch lists: dead objects are *not*
/// preserved — their ids are reported so the embedding can run thunks.
/// Runs after the guardian pass, so an object that is both guarded and
/// watched is seen alive here (guardians win; documented in DESIGN.md).
fn finalizer_pass(heap: &mut Heap, s: &mut Scratch) {
    let mut migrated = Vec::new();
    for i in 0..=s.g as usize {
        for mut e in std::mem::take(&mut heap.finalize_watch[i]) {
            if forwarded_p(heap, s, e.obj) {
                e.obj = get_fwd(heap, s, e.obj);
                migrated.push(e);
            } else {
                s.report.finalized_ids.push(e.id);
            }
        }
    }
    heap.finalize_watch[s.target as usize].extend(migrated);
}
