//! The generation-based stop-and-copy collector (paper Section 4).
//!
//! A collection of generation `g` collects all generations `0..=g` (the
//! paper's policy: "when a generation is collected, all younger
//! generations are collected as well") into the *target generation*
//! `min(g+1, n)`. The phases, in order:
//!
//! 1. **Flip** — snapshot the from-space (every segment in a collected
//!    generation) and reset allocation cursors for the collected and
//!    target generations.
//! 2. **Roots** — forward every registered root slot.
//! 3. **Remembered set** — scan dirty older-generation segments for
//!    pointers into the from-space (see [`remset`]).
//! 4. **Kleene sweep** — Cheney-style iterative scan of copied objects
//!    until no newly copied objects remain (the paper's `kleene-sweep`).
//! 5. **Guardian pass** — the paper's three-block protected-list
//!    algorithm, including the `pend-final-list` fixpoint loop (see
//!    [`guardian_pass`]).
//! 6. **Finalizer pass** — the Dickey-style baseline watch lists.
//! 7. **Weak pass** — break or forward weak-pair cars; runs after the
//!    guardian pass "so if the car field of a weak pair points to an
//!    object that has been salvaged, the object will still be in the car
//!    field after collection" (see [`weak_pass`]).
//! 8. **Reclaim** — return every from-space segment to the free pool.
//!
//! # The copy/scan engine
//!
//! Object transport and scanning are *bulk* operations over whole-segment
//! word slices rather than per-word loads through the segment table:
//!
//! * [`forward`] copies object bodies with
//!   [`SegmentTable::copy_words`](guardians_segments::SegmentTable::copy_words)
//!   (chunked `memcpy`s that handle cross-run copies).
//! * [`scan_segment`] runs in two passes per batch: a read-only pass over
//!   the segment's borrowed word slice collects the from-space pointers,
//!   then the pointers are forwarded and the updated words written back
//!   through one mutable borrow per segment.
//! * The from-space membership test is a packed bitset ([`FromSpaceMap`])
//!   instead of a `Vec<bool>`, and the flip drains the segment table's
//!   per-generation lists instead of walking every segment.
//! * [`kleene_sweep`] keeps a queue of segments with pending words and
//!   *retires* fully-scanned segments. Only segments that can still grow
//!   — the open allocation cursors of the target generation — are parked
//!   and re-checked when the queue drains; everything else is visited
//!   exactly once per word.
//!
//! All of this changes only how fast the collector runs: traversal still
//! reaches exactly the same objects, so every deterministic work counter
//! is byte-identical to the per-word engine (enforced by the
//! `counter_parity` regression test in the bench crate).

pub(crate) mod guardian_pass;
pub(crate) mod incremental;
pub(crate) mod parallel;
pub(crate) mod remset;
pub(crate) mod weak_pass;

use crate::header::Header;
use crate::heap::Heap;
use crate::stats::CollectionReport;
use crate::trace::{GcEvent, GcPhase};
use crate::value::{fwd, Value};
use guardians_segments::{SegIndex, Space, SEGMENT_WORDS};
use std::time::Instant;

/// Packed bitset over segment indices: the from-space membership map.
/// Indices beyond the snapshot (segments created during the collection)
/// answer `false`, which is exactly what the collector needs.
pub(crate) struct FromSpaceMap {
    bits: Vec<u64>,
}

impl FromSpaceMap {
    /// An empty map able to hold `n_segs` segment indices.
    pub fn with_capacity(n_segs: usize) -> FromSpaceMap {
        FromSpaceMap {
            bits: vec![0; n_segs.div_ceil(64)],
        }
    }

    /// Adds a segment to the from-space.
    #[inline]
    pub fn insert(&mut self, seg: SegIndex) {
        let i = seg.index();
        self.bits[i >> 6] |= 1 << (i & 63);
    }

    /// Whether a segment is in the from-space.
    #[inline]
    pub fn contains(&self, seg: SegIndex) -> bool {
        let i = seg.index();
        match self.bits.get(i >> 6) {
            Some(word) => (word >> (i & 63)) & 1 == 1,
            None => false,
        }
    }
}

/// Collector-local scratch state for one collection.
pub(crate) struct Scratch {
    /// Highest generation being collected.
    pub g: u8,
    /// Generation survivors are copied into.
    pub target: u8,
    /// From-space membership bitset. Segments created during the
    /// collection are beyond the snapshot and therefore not in it.
    pub from_space: FromSpaceMap,
    /// Head segments to free at the end.
    pub from_heads: Vec<SegIndex>,
    /// To-space segments with unscanned words (Cheney scan state).
    pub queue: Vec<(SegIndex, usize)>,
    /// Fully-scanned to-space segments that are still open allocation
    /// cursors, so copies may yet land in them; re-checked (and either
    /// re-queued or retired) whenever the queue drains.
    pub parked: Vec<(SegIndex, usize)>,
    /// Reusable candidate buffer for the two-pass slice scan:
    /// `(word offset from segment base, from-space pointer found there)`.
    pub pending: Vec<(usize, Value)>,
    /// To-space weak-pair segments, for the weak pass.
    pub weak_tospace: Vec<SegIndex>,
    /// Dirty old-generation weak-pair segments, for the weak pass.
    pub old_weak_dirty: Vec<SegIndex>,
    /// Whether tracing was enabled at flip time; gates the per-source-
    /// generation copy accounting so the disabled-mode copy loop is
    /// untouched.
    pub trace_on: bool,
    /// Words copied out of each source generation (only maintained when
    /// `trace_on`; feeds the `GenCopied` events).
    pub copied_per_gen: Vec<u64>,
    /// The report under construction.
    pub report: CollectionReport,
}

impl Scratch {
    #[inline]
    pub fn in_from(&self, seg: SegIndex) -> bool {
        self.from_space.contains(seg)
    }
}

/// A conservative upper bound on the segment acquisitions a collection of
/// generations `0..=g` can perform, used by
/// [`Heap::try_collect`](crate::Heap::try_collect) to reserve the whole
/// collection's demand up front (so a collection never fails after the
/// flip). Derivation, with `F` = from-space segments (heads *and* run
/// tails) and `E` = protected-list entries visited:
///
/// * **Copies.** Survivor words per space are at most that space's
///   from-space words, so at most `F · SEGMENT_WORDS` words total. Bump
///   allocation closes a to-space segment only when the next object
///   doesn't fit, so each closed segment plus the object that forced the
///   close exceed one segment of payload; pairing them gives at most
///   `2 · F` closed segments across all cursors, plus one open segment
///   per (space, target) cursor — 4 of them. Large objects copy run for
///   run, exactly covered by `F`.
/// * **Guardian pass.** Appending a finalized entry to its tconc
///   allocates one 2-word pair, at most once per visited entry:
///   `(2 · E).div_ceil(SEGMENT_WORDS)` segments (the pair cursor's open
///   segment is already counted above).
/// * Roots, remset, finalizer, and weak passes allocate nothing.
///
/// The `+8` absorbs the four open cursors with margin. The torture rig's
/// fault sweep doubles as a soundness test for this bound: collections
/// run with the acquisition fault armed just past the reservation, and
/// any mid-collection acquisition beyond it trips a panic.
///
/// **Parallel engine.** The pairing argument is schedule-independent —
/// each close is still forced by an overflowing object, whichever worker
/// performs it — so `2·F` covers all workers' closed segments combined.
/// What multiplies with `workers` is the *open* regions: up to 4 per
/// worker instead of 4 cursors total, plus up to 2 extra closes per
/// worker from the weak-region early-close at each weak pass (the
/// pairing argument doesn't cover a close that isn't forced by an
/// overflow). `8 · workers` absorbs both with margin; the serial formula
/// is untouched when `workers <= 1`.
pub(crate) fn estimate_worst_case(heap: &Heap, g: u8) -> u64 {
    let from_segments = heap
        .segs
        .iter()
        .filter(|(_, info)| info.generation <= g)
        .count() as u64;
    let entries: u64 = if heap.config.flat_protected {
        heap.protected[0].len() as u64
    } else {
        heap.protected[..=(g as usize).min(heap.protected.len() - 1)]
            .iter()
            .map(|l| l.len() as u64)
            .sum()
    };
    let base = 2 * from_segments + (2 * entries).div_ceil(SEGMENT_WORDS as u64) + 8;
    if heap.config.workers > 1 {
        base + 8 * heap.config.workers as u64
    } else {
        base
    }
}

/// Runs a full collection of generations `0..=g`, dispatching to the
/// parallel engine when the configuration asks for more than one worker.
pub(crate) fn run(heap: &mut Heap, g: u8) -> CollectionReport {
    if heap.config.workers > 1 {
        return parallel::run(heap, g);
    }
    let start = Instant::now();
    let target = heap
        .config
        .promotion
        .target(g, heap.config.max_generation());

    // Phase 1: flip. Drain the per-generation segment lists instead of
    // walking the whole table; the bitset dedups entries for segments
    // freed and recycled back into the same generation.
    let mut from_space = FromSpaceMap::with_capacity(heap.segs.segments_total());
    let mut from_heads = Vec::new();
    for gen in 0..=g {
        for seg in heap.segs.drain_generation(gen) {
            if from_space.contains(seg) {
                continue;
            }
            from_space.insert(seg);
            if heap.segs.info(seg).is_head() {
                from_heads.push(seg);
            }
        }
    }
    heap.reset_cursors(g, target);
    heap.tospace_log = Some(Vec::new());

    let mut s = Scratch {
        g,
        target,
        from_space,
        from_heads,
        queue: Vec::new(),
        parked: Vec::new(),
        pending: Vec::new(),
        weak_tospace: Vec::new(),
        old_weak_dirty: Vec::new(),
        trace_on: heap.tracing_enabled(),
        copied_per_gen: vec![0; heap.config.generations as usize],
        report: CollectionReport {
            collection_index: heap.collections,
            collected_generation: g,
            target_generation: target,
            ..CollectionReport::default()
        },
    };
    heap.trace_emit(|| GcEvent::CollectionBegin {
        index: s.report.collection_index,
        collected_generation: g,
        target_generation: target,
    });
    let mut mark = start;
    let mut lap = |now: Instant| {
        let d = now - mark;
        mark = now;
        d
    };
    s.report.phases.flip = lap(Instant::now());
    emit_phase(heap, GcPhase::Flip, s.report.phases.flip);

    // Phase 2: roots.
    let mut roots = std::mem::take(&mut heap.roots);
    let traced = roots.for_each_slot(|slot| {
        let v = *slot;
        if v.is_ptr() {
            *slot = forward(heap, &mut s, v);
        }
    });
    heap.roots = roots;
    s.report.roots_traced = traced;
    s.report.phases.roots = lap(Instant::now());
    emit_phase(heap, GcPhase::Roots, s.report.phases.roots);

    // Phase 3: remembered set.
    remset::scan_dirty(heap, &mut s);
    s.report.phases.remset = lap(Instant::now());
    emit_phase(heap, GcPhase::Remset, s.report.phases.remset);

    // Phase 4: kleene sweep.
    kleene_sweep(heap, &mut s);
    s.report.phases.sweep = lap(Instant::now());
    emit_phase(heap, GcPhase::Sweep, s.report.phases.sweep);

    if heap.config.ablate_weak_pass_first {
        // Ablation: break weak cars BEFORE the guardian pass gets to
        // salvage their referents — the ordering bug the paper's Section 4
        // warns against. A second pass below keeps the heap valid for
        // weak pairs copied during the guardian pass itself.
        weak_pass::run(heap, &mut s);
        let d = lap(Instant::now());
        s.report.phases.weak += d;
        emit_phase(heap, GcPhase::Weak, d);
    }

    // Phase 5: guardians.
    guardian_pass::run(heap, &mut s);
    s.report.phases.guardian = lap(Instant::now());
    emit_phase(heap, GcPhase::Guardian, s.report.phases.guardian);

    // Phase 6: Dickey-baseline finalizers.
    finalizer_pass(heap, &mut s);
    s.report.phases.finalizer = lap(Instant::now());
    emit_phase(heap, GcPhase::Finalizer, s.report.phases.finalizer);

    // Phase 7: weak pairs — after the guardian pass, "so if the car field
    // of a weak pair points to an object that has been salvaged, the
    // object will still be in the car field after collection."
    weak_pass::run(heap, &mut s);
    let d = lap(Instant::now());
    s.report.phases.weak += d;
    emit_phase(heap, GcPhase::Weak, d);

    // Phase 8: reclaim the from-space.
    let heads = std::mem::take(&mut s.from_heads);
    for head in heads {
        let run = heap.segs.run_len(head) as u64;
        s.report.segments_freed += run;
        heap.segs.free(head);
        heap.trace_emit(|| GcEvent::SegmentsReleased { count: run });
    }
    heap.tospace_log = None;
    s.report.phases.reclaim = lap(Instant::now());
    emit_phase(heap, GcPhase::Reclaim, s.report.phases.reclaim);

    if s.trace_on {
        for (generation, &words) in s.copied_per_gen.iter().enumerate() {
            if words > 0 {
                heap.trace_emit(|| GcEvent::GenCopied {
                    generation: generation as u8,
                    words,
                });
            }
        }
    }
    s.report.duration = start.elapsed();
    heap.trace_emit(|| GcEvent::CollectionEnd {
        index: s.report.collection_index,
        words_copied: s.report.words_copied,
        pairs_copied: s.report.pairs_copied,
        objects_copied: s.report.objects_copied,
        guardian_entries_visited: s.report.guardian_entries_visited,
        weak_pairs_scanned: s.report.weak_pairs_scanned,
        dur_ns: s.report.duration.as_nanos() as u64,
    });
    s.report
}

/// Emits a `PhaseEnd` event (one null test when tracing is off).
pub(crate) fn emit_phase(heap: &mut Heap, phase: GcPhase, d: std::time::Duration) {
    heap.trace_emit(|| GcEvent::PhaseEnd {
        phase,
        dur_ns: d.as_nanos() as u64,
    });
}

/// The paper's `forwarded?` predicate: "true when obj has been forwarded
/// during this collection or when it resides in a generation older than
/// those being collected". Non-pointers (fixnums, immediates) are
/// trivially "accessible".
pub(crate) fn forwarded_p(heap: &Heap, s: &Scratch, v: Value) -> bool {
    if !v.is_ptr() {
        return true;
    }
    if !s.in_from(v.addr().seg()) {
        return true;
    }
    fwd::decode(heap.segs.word(v.addr())).is_some()
}

/// The paper's `get-fwd-addr`: "returns either the forwarding address of
/// obj or the address of obj itself". The caller must know the object is
/// accessible (`forwarded_p`).
pub(crate) fn get_fwd(heap: &Heap, s: &Scratch, v: Value) -> Value {
    if !v.is_ptr() || !s.in_from(v.addr().seg()) {
        return v;
    }
    match fwd::decode(heap.segs.word(v.addr())) {
        Some(new) => v.retag_at(new),
        None => panic!("get_fwd of an unforwarded from-space object: {v:?}"),
    }
}

/// Copies `v` to the target generation if it is an unforwarded from-space
/// object; returns the (possibly updated) pointer. Leaves a broken heart
/// behind. Object bodies move as bulk slice copies, not word loops.
pub(crate) fn forward(heap: &mut Heap, s: &mut Scratch, v: Value) -> Value {
    if !v.is_ptr() {
        return v;
    }
    let addr = v.addr();
    if !s.in_from(addr.seg()) {
        return v;
    }
    let first = heap.segs.word(addr);
    if let Some(new) = fwd::decode(first) {
        return v.retag_at(new);
    }
    // Pairs keep their space (a weak pair stays weak); typed objects keep
    // theirs trivially.
    let info = heap.segs.info(addr.seg());
    let space = info.space;
    let src_gen = info.generation;
    let total = if v.is_pair_ptr() {
        2
    } else {
        Header::decode(first)
            .unwrap_or_else(|| panic!("corrupt header while forwarding {v:?}"))
            .total_words()
    };
    let to = heap.alloc_words_internal(space, s.target, total);
    heap.segs.copy_words(addr, to, total);
    if v.is_pair_ptr() {
        s.report.pairs_copied += 1;
    } else {
        s.report.objects_copied += 1;
    }
    s.report.words_copied += total as u64;
    if s.trace_on {
        s.copied_per_gen[src_gen as usize] += total as u64;
    }
    heap.segs.set_word(addr, fwd::encode(to));
    v.retag_at(to)
}

/// Read-only candidate pass: pushes `(offset, value)` for every traced
/// word in `[lo, hi)` of `seg` that holds a from-space pointer. Offsets
/// are global within the segment's run (they may exceed one segment for a
/// large object).
fn collect_candidates(heap: &Heap, s: &mut Scratch, seg: SegIndex, lo: usize, hi: usize) {
    let space = heap.segs.info(seg).space;
    let push = |s: &mut Scratch, off: usize, w: u64| {
        let v = Value(w);
        if v.is_ptr() && s.from_space.contains(v.addr().seg()) {
            s.pending.push((off, v));
        }
    };
    match space {
        Space::Pair => {
            // Pairs never span segments: one borrow covers the batch.
            let words = heap.segs.words(seg);
            for (i, &w) in words[lo..hi].iter().enumerate() {
                push(s, lo + i, w);
            }
        }
        Space::WeakPair => {
            // Weak treatment: "the car field is not touched" during the
            // normal trace; only cdrs (odd offsets) are candidates.
            let words = heap.segs.words(seg);
            let mut off = lo;
            while off < hi {
                push(s, off + 1, words[off + 1]);
                off += 2;
            }
        }
        Space::Typed if hi > SEGMENT_WORDS => {
            // A multi-segment run holds exactly one object, scanned once
            // from its start: header at word 0, then the traced fields,
            // walked one per-segment sub-slice at a time.
            debug_assert_eq!(lo, 0, "large runs are scanned exactly once");
            let header = Header::decode(heap.segs.words(seg)[0])
                .unwrap_or_else(|| panic!("corrupt header on run {seg:?}"));
            let traced_end = 1 + header.traced_words();
            let mut pos = 1;
            while pos < traced_end {
                let chunk = pos / SEGMENT_WORDS;
                let chunk_base = chunk * SEGMENT_WORDS;
                let chunk_end = (chunk_base + SEGMENT_WORDS).min(traced_end);
                let words = heap.segs.words(SegIndex(seg.0 + chunk as u32));
                for (i, &w) in words[pos - chunk_base..chunk_end - chunk_base]
                    .iter()
                    .enumerate()
                {
                    push(s, pos + i, w);
                }
                pos = chunk_end;
            }
        }
        Space::Typed => {
            let words = heap.segs.words(seg);
            let mut pos = lo;
            while pos < hi {
                let header = Header::decode(words[pos])
                    .unwrap_or_else(|| panic!("corrupt header while scanning {seg:?}@{pos}"));
                for i in 0..header.traced_words() {
                    push(s, pos + 1 + i, words[pos + 1 + i]);
                }
                pos += header.total_words();
            }
        }
        Space::Pure => unreachable!("pure segments are skipped, not scanned"),
    }
}

/// Forward pass: forwards every pending candidate, then writes the
/// updated words back in per-segment batches through one mutable borrow
/// each. Candidates are collected in offset order, so the batching is a
/// single monotone walk.
fn flush_candidates(heap: &mut Heap, s: &mut Scratch, seg: SegIndex) {
    if s.pending.is_empty() {
        return;
    }
    let mut pending = std::mem::take(&mut s.pending);
    for entry in pending.iter_mut() {
        entry.1 = forward(heap, s, entry.1);
    }
    let mut i = 0;
    while i < pending.len() {
        let chunk = pending[i].0 / SEGMENT_WORDS;
        let chunk_base = chunk * SEGMENT_WORDS;
        let words = heap.segs.words_mut(SegIndex(seg.0 + chunk as u32));
        while i < pending.len() && pending[i].0 / SEGMENT_WORDS == chunk {
            words[pending[i].0 - chunk_base] = pending[i].1.raw();
            i += 1;
        }
    }
    pending.clear();
    s.pending = pending;
}

/// Scans one to-space segment (or run) from `off`, forwarding every traced
/// field that points into the from-space. Returns the new scan offset.
/// `used` is re-read after every batch because scanning may copy further
/// objects into this very segment.
fn scan_segment(heap: &mut Heap, s: &mut Scratch, seg: SegIndex, mut off: usize) -> usize {
    let space = heap.segs.info(seg).space;
    loop {
        let used = heap.segs.info(seg).used as usize;
        if off >= used {
            return off;
        }
        if space == Space::Pure {
            // Pointer-free objects: nothing to scan — skip the segment
            // wholesale.
            s.report.pure_words_skipped += (used - off) as u64;
            off = used;
            continue;
        }
        debug_assert!(s.pending.is_empty());
        collect_candidates(heap, s, seg, off, used);
        flush_candidates(heap, s, seg);
        off = used;
    }
}

/// The paper's `kleene-sweep(g)`: "iteratively sweeps copied objects until
/// there are no newly copied objects to sweep."
///
/// Segments with unscanned words sit in a queue; a segment popped and
/// scanned to its end is *retired* unless it is an open allocation cursor
/// of the target generation — the only segments that can still receive
/// copies without being (re-)logged. Those are parked and re-checked when
/// the queue runs dry, so the sweep never re-walks finished segments.
pub(crate) fn kleene_sweep(heap: &mut Heap, s: &mut Scratch) {
    while sweep_unit(heap, s) {}
}

/// One iteration of the Kleene sweep — the increment-shaped work unit the
/// bounded-pause engine schedules between yields: drain the to-space log,
/// then either scan one queued segment or re-check the parked cursor
/// segments. Returns `false` exactly when the sweep has reached its
/// fixpoint (nothing queued, nothing grew, log empty); calling it again
/// after more copies (or a re-scan) resumes correctly.
pub(crate) fn sweep_unit(heap: &mut Heap, s: &mut Scratch) -> bool {
    for seg in heap.drain_tospace_log() {
        s.report.segments_allocated += heap.segs.run_len(seg) as u64;
        if heap.segs.info(seg).space == Space::WeakPair {
            s.weak_tospace.push(seg);
        }
        s.queue.push((seg, 0));
    }
    if let Some((seg, off)) = s.queue.pop() {
        let new_off = scan_segment(heap, s, seg, off);
        if heap.is_open_cursor(seg) {
            s.parked.push((seg, new_off));
        }
        return true;
    }
    // Queue dry: re-check parked cursor segments. One that grew is
    // re-queued; one whose cursor moved on is frozen and retired.
    let mut grew = false;
    let mut i = 0;
    while i < s.parked.len() {
        let (seg, off) = s.parked[i];
        if (heap.segs.info(seg).used as usize) > off {
            s.parked.swap_remove(i);
            s.queue.push((seg, off));
            grew = true;
        } else if !heap.is_open_cursor(seg) {
            s.parked.swap_remove(i);
        } else {
            i += 1;
        }
    }
    grew || !heap.tospace_log_is_empty()
}

/// Processes the Dickey-baseline watch lists: dead objects are *not*
/// preserved — their ids are reported so the embedding can run thunks.
/// Runs after the guardian pass, so an object that is both guarded and
/// watched is seen alive here (guardians win; documented in DESIGN.md).
pub(crate) fn finalizer_pass(heap: &mut Heap, s: &mut Scratch) {
    let mut migrated = Vec::new();
    for i in 0..=s.g as usize {
        for mut e in std::mem::take(&mut heap.finalize_watch[i]) {
            if forwarded_p(heap, s, e.obj) {
                e.obj = get_fwd(heap, s, e.obj);
                migrated.push(e);
            } else {
                s.report.finalized_ids.push(e.id);
            }
        }
    }
    heap.finalize_watch[s.target as usize].extend(migrated);
}
