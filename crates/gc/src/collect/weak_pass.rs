//! The weak-pair second pass (paper Section 4, final paragraph):
//!
//! > "A second pass through the weak-pair space is made after garbage
//! > collection; during this second pass, if the object pointed to by the
//! > car field of a weak pair has been forwarded, the new address is
//! > placed in the car field of the weak pair. Otherwise, #f is placed in
//! > the car field. The second pass through the weak-pair space occurs
//! > after the garbage collector has handled the protected lists
//! > (including the forwarding which is done there), so if the car field
//! > of a weak pair points to an object that has been salvaged, the
//! > object will still be in the car field after collection."
//!
//! The pass visits (a) every weak-pair segment copied into the target
//! generation this collection and (b) every *dirty* old-generation
//! weak-pair segment found by the remembered-set scan — never clean old
//! segments, preserving generation-friendliness for weak pairs too.

use super::Scratch;
use crate::heap::Heap;
use crate::trace::GcEvent;
use crate::value::{fwd, Value};
use guardians_segments::SegIndex;

pub(crate) fn run(heap: &mut Heap, s: &mut Scratch) {
    let scanned_before = s.report.weak_pairs_scanned;
    let broken_before = s.report.weak_cars_broken;
    let forwarded_before = s.report.weak_cars_forwarded;
    let to_space: Vec<SegIndex> = s.weak_tospace.drain(..).collect();
    for seg in to_space {
        fix_segment(heap, s, seg);
    }
    let old_dirty: Vec<SegIndex> = s.old_weak_dirty.drain(..).collect();
    for seg in old_dirty {
        // The remembered-set drain cleared the flag; re-mark (and
        // re-index) only segments that still hold old→young pointers.
        if fix_segment(heap, s, seg) {
            heap.segs.mark_dirty(seg);
        }
    }
    // Per-run deltas: the ablation mode runs this pass twice and the two
    // events must sum to the report's counters.
    heap.trace_emit(|| GcEvent::WeakSweep {
        scanned: s.report.weak_pairs_scanned - scanned_before,
        broken: s.report.weak_cars_broken - broken_before,
        forwarded: s.report.weak_cars_forwarded - forwarded_before,
    });
}

/// Fixes every weak car in a segment; returns whether the segment still
/// holds a pointer (car or cdr) into a younger generation.
fn fix_segment(heap: &mut Heap, s: &mut Scratch, seg: SegIndex) -> bool {
    let base = heap.segs.base_addr(seg);
    let gen = heap.segs.info(seg).generation;
    let used = heap.segs.info(seg).used as usize;
    let mut still_dirty = false;
    let mut off = 0;
    while off < used {
        s.report.weak_pairs_scanned += 1;
        let car_addr = base.add(off);
        let car = Value(heap.segs.word(car_addr));
        if car.is_ptr() && s.in_from(car.addr().seg()) {
            match fwd::decode(heap.segs.word(car.addr())) {
                Some(new) => {
                    // Referent survived (root-reachable or salvaged by a
                    // guardian): update the weak pointer.
                    heap.segs.set_word(car_addr, car.retag_at(new).raw());
                    s.report.weak_cars_forwarded += 1;
                }
                None => {
                    // Referent is garbage: break the weak pointer.
                    heap.segs.set_word(car_addr, Value::FALSE.raw());
                    s.report.weak_cars_broken += 1;
                }
            }
        }
        still_dirty |= points_younger(heap, Value(heap.segs.word(car_addr)), gen);
        still_dirty |= points_younger(heap, Value(heap.segs.word(base.add(off + 1))), gen);
        off += 2;
    }
    still_dirty
}

fn points_younger(heap: &Heap, v: Value, holder_gen: u8) -> bool {
    v.is_ptr() && heap.segs.info(v.addr().seg()).generation < holder_gen
}
