//! The bounded-pause (incremental) collection engine, selected by
//! [`GcConfig::pause_budget`](crate::GcConfig).
//!
//! A collection is split into *increments*. Each increment runs the same
//! phases, in the same order, over the same work lists as the serial
//! engine — the retiring scan queue ([`sweep_unit`]) and the per-segment
//! remembered-set entries are the increment-shaped work units — but
//! yields back to the mutator once the configured budget's deadline
//! passes (always after at least one whole unit, so a `Duration::ZERO`
//! budget gives one-unit increments). The suspended collection lives in
//! an [`IncrementalState`] owned by the heap and resumes at the next
//! safe point.
//!
//! # The mutator's view between increments
//!
//! * **Forwarded on read.** From-space objects are either intact
//!   (unforwarded; every word still valid) or carry a broken heart in
//!   word 0. Every typed accessor resolves its operands through
//!   [`Heap::resolve_read`], so a stale pointer to a forwarded object is
//!   transparently redirected to the to-space copy. Unforwarded
//!   from-space objects are read and written in place — stores travel
//!   with the wholesale copy if the object is later forwarded.
//! * **Write barrier.** A store that lands a from-space pointer in a
//!   non-from-space segment (one the collector may have scanned already)
//!   logs the segment in the state's re-scan list; the next increment
//!   re-scans it before declaring the sweep finished. Segment
//!   granularity and idempotent forwarding make over-logging harmless.
//! * **Allocation.** The to-space log stays live for the whole
//!   collection, so mutator allocations between increments are swept
//!   like to-space: their initializing stores (which bypass the write
//!   barrier) are still traced.
//!
//! # Guardian atomicity
//!
//! The final increment runs the §4 guardian three-block pass, the
//! finalizer pass, the weak pass, and the reclaim *atomically*, after
//! the sweep fixpoint is proven global (roots re-forwarded, remembered
//! set and re-scan list drained, sweep dry). No yield separates the
//! guardian partition from the weak break, so guardian/weak observables
//! are byte-identical to the serial engine; the cost is a pause floor —
//! the final increment cannot be shorter than those passes (measured in
//! experiment E18, argued in DESIGN.md §10).

use super::{
    emit_phase, finalizer_pass, forward, guardian_pass, remset, sweep_unit, weak_pass,
    FromSpaceMap, Scratch,
};
use crate::heap::Heap;
use crate::stats::CollectionReport;
use crate::trace::{GcEvent, GcPhase};
use guardians_segments::SegIndex;
use std::time::{Duration, Instant};

/// A collection suspended between increments.
pub(crate) struct IncrementalState {
    /// The collector scratch state, persisted across yields. The scan
    /// queue, parked segments, and weak lists resume exactly where the
    /// last increment left them.
    pub(crate) s: Scratch,
    /// Snapshot of the dirty index taken at the flip; scanned one
    /// segment per yield check.
    pub(crate) remset_pending: Vec<SegIndex>,
    /// Progress through `remset_pending`.
    pub(crate) remset_cursor: usize,
    /// Segments the write barrier logged since the last increment
    /// (deduplicated via `rescan_in`).
    pub(crate) rescan: Vec<SegIndex>,
    /// Membership bitset for `rescan`, grown on demand.
    rescan_in: Vec<u64>,
    /// Whether `roots_traced` has been counted (roots are re-forwarded
    /// every increment, but counted once for serial counter parity).
    roots_counted: bool,
    /// Pause time from the begin (flip) that the first increment's pause
    /// sample must absorb.
    carry: Duration,
}

impl IncrementalState {
    /// Logs a segment for re-scanning by the next increment (idempotent).
    pub(crate) fn log_rescan(&mut self, seg: SegIndex) {
        let i = seg.index();
        let w = i >> 6;
        if w >= self.rescan_in.len() {
            self.rescan_in.resize(w + 1, 0);
        }
        if (self.rescan_in[w] >> (i & 63)) & 1 == 0 {
            self.rescan_in[w] |= 1 << (i & 63);
            self.rescan.push(seg);
        }
    }

    /// Whether `seg` is covered by the collector's outstanding work — it
    /// will (still) be scanned before the collection finishes. Used by
    /// the verifier's barrier-coverage check: a from-space pointer in a
    /// strong field of a non-from-space segment is only sound if the
    /// segment is covered.
    pub(crate) fn covered(&self, heap: &Heap, seg: SegIndex) -> bool {
        if self.s.queue.iter().any(|&(q, _)| q == seg)
            || self.s.parked.iter().any(|&(p, _)| p == seg)
        {
            return true;
        }
        if self.remset_pending[self.remset_cursor..].contains(&seg) {
            return true;
        }
        let i = seg.index();
        if (self.rescan_in.get(i >> 6).copied().unwrap_or(0) >> (i & 63)) & 1 == 1 {
            return true;
        }
        // Logged but not yet drained into the queue.
        heap.tospace_log
            .as_ref()
            .is_some_and(|log| log.contains(&seg))
    }
}

/// Begins an incremental collection of generations `0..=g`: the serial
/// engine's flip (phase 1), verbatim, plus a snapshot of the dirty index
/// as the increment-sliced remembered-set work list. The caller
/// ([`Heap::begin_incremental`]) stores the returned state and drives it
/// with [`step`].
pub(crate) fn begin(heap: &mut Heap, g: u8) -> Box<IncrementalState> {
    let start = Instant::now();
    let target = heap
        .config
        .promotion
        .target(g, heap.config.max_generation());

    let mut from_space = FromSpaceMap::with_capacity(heap.segs.segments_total());
    let mut from_heads = Vec::new();
    for gen in 0..=g {
        for seg in heap.segs.drain_generation(gen) {
            if from_space.contains(seg) {
                continue;
            }
            from_space.insert(seg);
            if heap.segs.info(seg).is_head() {
                from_heads.push(seg);
            }
        }
    }
    heap.reset_cursors(g, target);
    heap.tospace_log = Some(Vec::new());

    let mut s = Scratch {
        g,
        target,
        from_space,
        from_heads,
        queue: Vec::new(),
        parked: Vec::new(),
        pending: Vec::new(),
        weak_tospace: Vec::new(),
        old_weak_dirty: Vec::new(),
        trace_on: heap.tracing_enabled(),
        copied_per_gen: vec![0; heap.config.generations as usize],
        report: CollectionReport {
            collection_index: heap.collections,
            collected_generation: g,
            target_generation: target,
            ..CollectionReport::default()
        },
    };
    heap.trace_emit(|| GcEvent::CollectionBegin {
        index: s.report.collection_index,
        collected_generation: g,
        target_generation: target,
    });
    // The remembered-set work list: the same dirty-index drain the serial
    // engine performs, snapshotted so increments can walk it a segment at
    // a time. Segments dirtied *after* this point belong to the next
    // collection (their flags survive), exactly as in the serial engine,
    // where the drain happens once in phase 3.
    let remset_pending = heap.segs.take_dirty();

    let flip = start.elapsed();
    s.report.phases.flip = flip;
    emit_phase(heap, GcPhase::Flip, flip);
    s.report.duration += flip;

    Box::new(IncrementalState {
        s,
        remset_pending,
        remset_cursor: 0,
        rescan: Vec::new(),
        rescan_in: Vec::new(),
        roots_counted: false,
        carry: flip,
    })
}

/// Runs one increment. Returns `true` when the collection completed (the
/// report in `st.s.report` is final); `false` when it yielded with work
/// remaining. The state is *out* of the heap while this runs, so the
/// collector's own barriered stores (the guardian pass's tconc appends)
/// do not log re-scans and the tconc trace correctly attributes them to
/// the collector.
pub(crate) fn step(heap: &mut Heap, st: &mut IncrementalState) -> bool {
    let start = Instant::now();
    let deadline = start + heap.config.pause_budget.unwrap_or(Duration::ZERO);
    let mut mark = start;
    let mut finished = false;

    // Roots are re-forwarded at every increment: the mutator may have
    // stored stale (since-forwarded) or from-space pointers into rooted
    // cells. Re-forwarding an already-forwarded root is a no-op, so the
    // counters only move on the first increment.
    let mut roots = std::mem::take(&mut heap.roots);
    let traced = roots.for_each_slot(|slot| {
        let v = *slot;
        if v.is_ptr() {
            *slot = forward(heap, &mut st.s, v);
        }
    });
    heap.roots = roots;
    if !st.roots_counted {
        st.s.report.roots_traced = traced;
        st.roots_counted = true;
    }
    lap(heap, &mut st.s, &mut mark, GcPhase::Roots);

    // Drain the write-barrier log: segments mutated since the last
    // increment to hold from-space pointers. New copies land in the
    // to-space log and are picked up by the sweep below.
    if !st.rescan.is_empty() {
        let segs = std::mem::take(&mut st.rescan);
        for w in st.rescan_in.iter_mut() {
            *w = 0;
        }
        for seg in segs {
            remset::rescan_segment(heap, &mut st.s, seg);
        }
        lap(heap, &mut st.s, &mut mark, GcPhase::Remset);
    }

    // Remembered set, one segment per yield check.
    let mut yielded = false;
    if st.remset_cursor < st.remset_pending.len() {
        while st.remset_cursor < st.remset_pending.len() {
            let seg = st.remset_pending[st.remset_cursor];
            st.remset_cursor += 1;
            remset::scan_dirty_seg(heap, &mut st.s, seg);
            if Instant::now() >= deadline {
                yielded = true;
                break;
            }
        }
        lap(heap, &mut st.s, &mut mark, GcPhase::Remset);
    }

    // Kleene sweep, one unit per yield check. Reaching the unit fixpoint
    // here is reaching the *global* fixpoint: no mutator ran since the
    // re-scan drain above, the remembered set is exhausted, and roots
    // are forwarded.
    if !yielded {
        loop {
            if !sweep_unit(heap, &mut st.s) {
                finished = true;
                break;
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        lap(heap, &mut st.s, &mut mark, GcPhase::Sweep);
    }

    if finished {
        // The terminal increment: guardian, finalizer, weak, and reclaim
        // run unbounded — the guardian-atomicity pause floor. See the
        // module docs.
        if heap.config.ablate_weak_pass_first {
            weak_pass::run(heap, &mut st.s);
            lap(heap, &mut st.s, &mut mark, GcPhase::Weak);
        }
        guardian_pass::run(heap, &mut st.s);
        lap(heap, &mut st.s, &mut mark, GcPhase::Guardian);
        finalizer_pass(heap, &mut st.s);
        lap(heap, &mut st.s, &mut mark, GcPhase::Finalizer);
        weak_pass::run(heap, &mut st.s);
        lap(heap, &mut st.s, &mut mark, GcPhase::Weak);

        let heads = std::mem::take(&mut st.s.from_heads);
        for head in heads {
            let run = heap.segs.run_len(head) as u64;
            st.s.report.segments_freed += run;
            heap.segs.free(head);
            heap.trace_emit(|| GcEvent::SegmentsReleased { count: run });
        }
        heap.tospace_log = None;
        lap(heap, &mut st.s, &mut mark, GcPhase::Reclaim);

        if st.s.trace_on {
            for (generation, &words) in st.s.copied_per_gen.iter().enumerate() {
                if words > 0 {
                    heap.trace_emit(|| GcEvent::GenCopied {
                        generation: generation as u8,
                        words,
                    });
                }
            }
        }
    }

    st.s.report.increments += 1;
    let pause = start.elapsed();
    st.s.report.duration += pause;
    heap.record_pause(pause + st.carry);
    st.carry = Duration::ZERO;

    if finished {
        let r = &st.s.report;
        let (index, words_copied, pairs_copied, objects_copied) = (
            r.collection_index,
            r.words_copied,
            r.pairs_copied,
            r.objects_copied,
        );
        let (guardian_entries_visited, weak_pairs_scanned, dur_ns) = (
            r.guardian_entries_visited,
            r.weak_pairs_scanned,
            r.duration.as_nanos() as u64,
        );
        heap.trace_emit(|| GcEvent::CollectionEnd {
            index,
            words_copied,
            pairs_copied,
            objects_copied,
            guardian_entries_visited,
            weak_pairs_scanned,
            dur_ns,
        });
    }
    finished
}

/// Closes a timed section: accumulates the elapsed time into the matching
/// phase of the report and emits the `PhaseEnd` event, so the trace's
/// phase sum stays equal to `phases.total()` across any number of
/// increments.
fn lap(heap: &mut Heap, s: &mut Scratch, mark: &mut Instant, phase: GcPhase) {
    let now = Instant::now();
    let d = now - *mark;
    *mark = now;
    match phase {
        GcPhase::Flip => s.report.phases.flip += d,
        GcPhase::Roots => s.report.phases.roots += d,
        GcPhase::Remset => s.report.phases.remset += d,
        GcPhase::Sweep => s.report.phases.sweep += d,
        GcPhase::Guardian => s.report.phases.guardian += d,
        GcPhase::Finalizer => s.report.phases.finalizer += d,
        GcPhase::Weak => s.report.phases.weak += d,
        GcPhase::Reclaim => s.report.phases.reclaim += d,
    }
    emit_phase(heap, phase, d);
}
