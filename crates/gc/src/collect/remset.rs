//! Remembered-set scanning over dirty old-generation segments.
//!
//! With the paper's promotion policy (collecting generation `g` collects
//! all younger generations and promotes survivors together), a pointer
//! from an older generation into a younger one can only be created by
//! *mutation*, and every mutating store passes the write barrier, which
//! marks the containing segment dirty. Scanning exactly the dirty
//! segments of uncollected generations therefore finds every old→young
//! pointer.
//!
//! The dirty segments come from the segment table's *dirty index*
//! ([`SegmentTable::take_dirty`](guardians_segments::SegmentTable::take_dirty))
//! rather than a walk of the whole table. Index entries can be stale
//! (freed, recycled, or already-cleaned segments), so each entry is
//! re-checked against its live `dirty` flag. A segment's flag is cleared
//! when its entry is drained — *before* it is scanned — so that a
//! barriered store performed later in this very collection (the guardian
//! pass appends to tconcs with ordinary barriered stores) re-marks and
//! re-indexes it for the next collection; segments that still hold
//! old→young pointers after scanning are re-marked here.
//!
//! Weak-pair segments get weak treatment here too: only cdr fields are
//! traced; the segment is queued for the weak pass, which decides whether
//! each car is forwarded or broken *after* the guardian pass has saved
//! what it is going to save.
//!
//! Like the Cheney sweep, scanning is slice-based: a read-only pass over
//! the segment's words collects the from-space pointers, then
//! [`flush_candidates`](super::flush_candidates) forwards them and writes
//! the updated words back in batches.

use super::{flush_candidates, Scratch};
use crate::header::Header;
use crate::heap::Heap;
use crate::value::Value;
use guardians_segments::{SegIndex, Space, SEGMENT_WORDS};

pub(crate) fn scan_dirty(heap: &mut Heap, s: &mut Scratch) {
    for seg in heap.segs.take_dirty() {
        scan_dirty_seg(heap, s, seg);
    }
}

/// Scans one dirty-index entry — the per-segment body of [`scan_dirty`],
/// exposed so the incremental engine can walk a drained dirty snapshot
/// one segment per yield check.
pub(crate) fn scan_dirty_seg(heap: &mut Heap, s: &mut Scratch, seg: SegIndex) {
    // Stale entries: freed (possibly recycled) or already cleaned.
    let Some(info) = heap.segs.try_info(seg) else {
        return;
    };
    if !info.dirty || !info.is_head() {
        return;
    }
    if info.generation <= s.g {
        // From-space: about to be traced (and freed) wholesale; its
        // flag dies with the segment.
        return;
    }
    let (space, gen) = (info.space, info.generation);
    heap.segs.clear_dirty(seg);
    s.report.dirty_segments_scanned += 1;
    match space {
        Space::Pair | Space::Typed => {
            if scan_strong_segment(heap, s, seg, space, gen) {
                heap.segs.mark_dirty(seg);
            }
        }
        Space::WeakPair => {
            // Trace the cdrs now; defer the cars (and the dirty-flag
            // recomputation) to the weak pass.
            scan_weak_cdrs(heap, s, seg);
            s.old_weak_dirty.push(seg);
        }
        Space::Pure => {
            // No pointers: a pure segment cannot hold old->young
            // edges; the (spurious) flag is already cleared.
        }
    }
}

/// Re-scans a segment the incremental write barrier logged: a mutator
/// store landed a from-space pointer in a region the collector may have
/// already scanned. Unlike [`scan_dirty_seg`] this applies to *any*
/// non-from-space generation (including to-space and generation 0) and
/// does not touch the remembered-set counters — the barrier log is a
/// collection-internal work list, not a remembered set.
pub(crate) fn rescan_segment(heap: &mut Heap, s: &mut Scratch, seg: SegIndex) {
    let Some(info) = heap.segs.try_info(seg) else {
        return;
    };
    if !info.is_head() || s.from_space.contains(seg) {
        // From-space containers need no re-scan: an unforwarded object's
        // stores travel with the wholesale copy if it is ever forwarded.
        return;
    }
    let (space, gen) = (info.space, info.generation);
    match space {
        Space::Pair | Space::Typed => {
            if scan_strong_segment(heap, s, seg, space, gen) {
                heap.segs.mark_dirty(seg);
            }
        }
        Space::WeakPair => {
            scan_weak_cdrs(heap, s, seg);
            // The weak pass settles the cars; queue the segment unless it
            // is already queued as to-space or old-dirty.
            if !s.weak_tospace.contains(&seg) && !s.old_weak_dirty.contains(&seg) {
                s.old_weak_dirty.push(seg);
            }
        }
        Space::Pure => {}
    }
}

/// Read-only pass over every traced word of a Pair/Typed segment (or the
/// run it heads), calling `f(offset, word)`. Offsets are global within
/// the run, matching [`flush_candidates`](super::flush_candidates).
fn read_traced_words(heap: &Heap, seg: SegIndex, space: Space, mut f: impl FnMut(usize, u64)) {
    let used = heap.segs.info(seg).used as usize;
    match space {
        Space::Pair => {
            let words = heap.segs.words(seg);
            for (off, &w) in words[..used].iter().enumerate() {
                f(off, w);
            }
        }
        Space::Typed if used > SEGMENT_WORDS => {
            // A dirty multi-segment run: exactly one large object.
            let header = Header::decode(heap.segs.words(seg)[0])
                .unwrap_or_else(|| panic!("corrupt header in dirty run {seg:?}"));
            let traced_end = 1 + header.traced_words();
            let mut pos = 1;
            while pos < traced_end {
                let chunk = pos / SEGMENT_WORDS;
                let chunk_base = chunk * SEGMENT_WORDS;
                let chunk_end = (chunk_base + SEGMENT_WORDS).min(traced_end);
                let words = heap.segs.words(SegIndex(seg.0 + chunk as u32));
                for (i, &w) in words[pos - chunk_base..chunk_end - chunk_base]
                    .iter()
                    .enumerate()
                {
                    f(pos + i, w);
                }
                pos = chunk_end;
            }
        }
        Space::Typed => {
            let words = heap.segs.words(seg);
            let mut pos = 0;
            while pos < used {
                let header = Header::decode(words[pos])
                    .unwrap_or_else(|| panic!("corrupt header in dirty {seg:?}@{pos}"));
                for i in 0..header.traced_words() {
                    f(pos + 1 + i, words[pos + 1 + i]);
                }
                pos += header.total_words();
            }
        }
        Space::WeakPair | Space::Pure => {
            unreachable!("weak and pure segments take their own paths")
        }
    }
}

/// Scans every traced field of a dirty Pair/Typed segment, forwarding
/// from-space referents. Returns whether the segment still contains an
/// old→young pointer (and must stay dirty).
fn scan_strong_segment(
    heap: &mut Heap,
    s: &mut Scratch,
    seg: SegIndex,
    space: Space,
    holder_gen: u8,
) -> bool {
    debug_assert!(s.pending.is_empty());
    let mut still_dirty = false;
    {
        let pending = &mut s.pending;
        let from_space = &s.from_space;
        read_traced_words(heap, seg, space, |off, w| {
            let v = Value(w);
            if !v.is_ptr() {
                return;
            }
            if from_space.contains(v.addr().seg()) {
                pending.push((off, v));
            } else if heap.segs.info(v.addr().seg()).generation < holder_gen {
                still_dirty = true;
            }
        });
    }
    // Every candidate is forwarded into the target generation, so the
    // batch's dirty contribution is a single comparison.
    still_dirty |= !s.pending.is_empty() && s.target < holder_gen;
    flush_candidates(heap, s, seg);
    still_dirty
}

/// Forwards the cdr fields of a dirty old weak-pair segment. The cars are
/// weak and untouched here; the weak pass settles them (and the dirty
/// flag) after the guardian pass.
fn scan_weak_cdrs(heap: &mut Heap, s: &mut Scratch, seg: SegIndex) {
    debug_assert!(s.pending.is_empty());
    let used = heap.segs.info(seg).used as usize;
    {
        let words = heap.segs.words(seg);
        let mut off = 1;
        while off < used {
            let v = Value(words[off]);
            if v.is_ptr() && s.from_space.contains(v.addr().seg()) {
                s.pending.push((off, v));
            }
            off += 2;
        }
    }
    flush_candidates(heap, s, seg);
}
