//! Remembered-set scanning over dirty old-generation segments.
//!
//! With the paper's promotion policy (collecting generation `g` collects
//! all younger generations and promotes survivors together), a pointer
//! from an older generation into a younger one can only be created by
//! *mutation*, and every mutating store passes the write barrier, which
//! marks the containing segment dirty. Scanning exactly the dirty
//! segments of uncollected generations therefore finds every old→young
//! pointer.
//!
//! Weak-pair segments get weak treatment here too: only cdr fields are
//! traced; the segment is queued for the weak pass, which decides whether
//! each car is forwarded or broken *after* the guardian pass has saved
//! what it is going to save.

use super::{forward, Scratch};
use crate::header::Header;
use crate::heap::Heap;
use crate::value::Value;
use guardians_segments::{SegIndex, Space, WordAddr};

pub(crate) fn scan_dirty(heap: &mut Heap, s: &mut Scratch) {
    let dirty: Vec<(SegIndex, Space, u8)> = heap
        .segs
        .iter()
        .filter(|(_, info)| info.generation > s.g && info.dirty && info.is_head())
        .map(|(idx, info)| (idx, info.space, info.generation))
        .collect();
    for (seg, space, gen) in dirty {
        s.report.dirty_segments_scanned += 1;
        match space {
            Space::Pair | Space::Typed => {
                let still_dirty = scan_strong_segment(heap, s, seg, space, gen);
                heap.segs.info_mut(seg).dirty = still_dirty;
            }
            Space::WeakPair => {
                // Trace the cdrs now; defer the cars (and the dirty-flag
                // recomputation) to the weak pass.
                scan_weak_cdrs(heap, s, seg);
                s.old_weak_dirty.push(seg);
            }
            Space::Pure => {
                // No pointers: a pure segment cannot hold old->young
                // edges; just clear the (spurious) flag.
                heap.segs.info_mut(seg).dirty = false;
            }
        }
    }
}

/// Scans every traced field of a dirty Pair/Typed segment, forwarding
/// from-space referents. Returns whether the segment still contains an
/// old→young pointer (and must stay dirty).
fn scan_strong_segment(
    heap: &mut Heap,
    s: &mut Scratch,
    seg: SegIndex,
    space: Space,
    gen: u8,
) -> bool {
    let base = heap.segs.base_addr(seg);
    let used = heap.segs.info(seg).used as usize;
    let mut still_dirty = false;
    let mut off = 0;
    while off < used {
        match space {
            Space::Pair => {
                still_dirty |= fix_word(heap, s, base.add(off), gen);
                still_dirty |= fix_word(heap, s, base.add(off + 1), gen);
                off += 2;
            }
            Space::Typed => {
                let header = Header::decode(heap.segs.word(base.add(off)))
                    .unwrap_or_else(|| panic!("corrupt header in dirty {seg:?}@{off}"));
                for i in 0..header.traced_words() {
                    still_dirty |= fix_word(heap, s, base.add(off + 1 + i), gen);
                }
                off += header.total_words();
            }
            Space::WeakPair | Space::Pure => {
                unreachable!("weak and pure segments take their own paths")
            }
        }
    }
    still_dirty
}

fn scan_weak_cdrs(heap: &mut Heap, s: &mut Scratch, seg: SegIndex) {
    let base = heap.segs.base_addr(seg);
    let used = heap.segs.info(seg).used as usize;
    let mut off = 0;
    while off < used {
        // Only the cdr; the car is weak.
        let gen = heap.segs.info(seg).generation;
        fix_word(heap, s, base.add(off + 1), gen);
        off += 2;
    }
}

/// Forwards the word at `addr` if it points into the from-space; returns
/// whether it (still) points into a generation younger than `holder_gen`.
fn fix_word(heap: &mut Heap, s: &mut Scratch, addr: WordAddr, holder_gen: u8) -> bool {
    let v = Value(heap.segs.word(addr));
    if !v.is_ptr() {
        return false;
    }
    let v = if s.in_from(v.addr().seg()) {
        let nv = forward(heap, s, v);
        heap.segs.set_word(addr, nv.raw());
        nv
    } else {
        v
    };
    heap.segs.info(v.addr().seg()).generation < holder_gen
}
