//! The guardian pass — a faithful implementation of the pseudo-code in
//! the paper's Section 4:
//!
//! ```text
//! pend-hold-list := pend-final-list := empty
//! For each generation i from 0 to g
//!   For each (obj . tconc) pair in protected[i]
//!     If forwarded?(obj) move (obj . tconc) to pend-hold-list
//!     Else move (obj . tconc) to pend-final-list
//!   protected[i] := empty
//! Loop
//!   final-list := empty
//!   For each (obj . tconc) pair in pend-final-list
//!     If forwarded?(tconc) move (obj . tconc) to final-list
//!   If empty?(final-list) Exit Loop
//!   For each (obj . tconc) pair in final-list
//!     forward(obj); tconc := get-fwd-addr(tconc); add obj to the tconc
//!   kleene-sweep(g)
//! End Loop
//! For each (obj . tconc) pair in pend-hold-list
//!   If forwarded?(tconc)
//!     tconc := get-fwd-addr(tconc); obj := get-fwd-addr(obj)
//!     move (obj . tconc) to protected[target-generation]
//! ```
//!
//! The fixpoint loop handles guardians that become reachable only through
//! resurrected objects (including guardians registered with other
//! guardians, the paper's `(G H)` example); entries whose tconc never
//! becomes reachable are dropped, so "all objects registered at the time
//! the guardian is dropped" are reclaimable immediately.
//!
//! Two extensions beyond the pseudo-code, both from the paper's own text:
//!
//! * **Agents** (Section 5): each entry carries a representative `rep`;
//!   the finalize path forwards and enqueues `rep` instead of `obj`. With
//!   `rep == obj` this is exactly the pseudo-code. With a distinct agent
//!   the object itself stays dead, "allowing objects to be discarded if
//!   something less than the object is needed to perform the
//!   finalization"; the hold path keeps a distinct agent alive (it may be
//!   referenced only by the entry), which requires one extra sweep.
//! * **Flat-list ablation** (`GcConfig::flat_protected`): a single
//!   protected list visited in full on every collection, reproducing the
//!   generation-unfriendly behaviour the per-generation lists avoid
//!   (experiment E3).

use super::{forward, forwarded_p, get_fwd, kleene_sweep, Scratch};
use crate::heap::{GuardEntry, Heap};
use crate::trace::GcEvent;
use crate::value::Value;
use guardians_segments::Space;

pub(crate) fn run(heap: &mut Heap, s: &mut Scratch) {
    let visited_before = s.report.guardian_entries_visited;
    let finalized_before = s.report.guardian_entries_finalized;
    let held_before = s.report.guardian_entries_held;
    let dropped_before = s.report.guardian_entries_dropped;
    let loops_before = s.report.guardian_loop_iterations;

    // Block 1: partition the protected lists of the collected generations.
    let mut pend_hold: Vec<GuardEntry> = Vec::new();
    let mut pend_final: Vec<GuardEntry> = Vec::new();
    let list_indices: Vec<usize> = if heap.config.flat_protected {
        vec![0]
    } else {
        (0..=s.g as usize).collect()
    };
    for i in list_indices {
        for e in std::mem::take(&mut heap.protected[i]) {
            s.report.guardian_entries_visited += 1;
            if forwarded_p(heap, s, e.obj) {
                pend_hold.push(e);
            } else {
                pend_final.push(e);
            }
        }
    }
    heap.trace_emit(|| GcEvent::GuardianPartition {
        visited: s.report.guardian_entries_visited - visited_before,
        pend_hold: pend_hold.len() as u64,
        pend_final: pend_final.len() as u64,
    });

    // Block 2: the fixpoint loop over entries with dead objects.
    loop {
        s.report.guardian_loop_iterations += 1;
        let mut final_list = Vec::new();
        let mut remaining = Vec::new();
        for e in pend_final {
            if forwarded_p(heap, s, e.tconc) {
                final_list.push(e);
            } else {
                remaining.push(e);
            }
        }
        pend_final = remaining;
        if final_list.is_empty() {
            break;
        }
        let round = s.report.guardian_loop_iterations - loops_before;
        let resurrected = final_list.len() as u64;
        heap.trace_emit(|| GcEvent::GuardianRound { round, resurrected });
        for e in final_list {
            // Paper: forward(obj). With an agent, the representative is
            // forwarded (saved from destruction) in the object's place.
            let rep = forward(heap, s, e.rep);
            let tconc = get_fwd(heap, s, e.tconc);
            append_to_tconc(heap, s, tconc, rep);
            s.report.guardian_entries_finalized += 1;
        }
        kleene_sweep(heap, s);
    }
    // Entries still pending have unreachable guardians: dropped, so their
    // objects are reclaimed without waiting for each to become
    // inaccessible individually.
    s.report.guardian_entries_dropped += pend_final.len() as u64;

    // Block 3: migrate held entries to the target generation's list.
    let dest = if heap.config.flat_protected {
        0
    } else {
        s.target as usize
    };
    let mut held = Vec::new();
    let mut agent_copied = false;
    for e in pend_hold {
        if forwarded_p(heap, s, e.tconc) {
            let obj = get_fwd(heap, s, e.obj);
            let tconc = get_fwd(heap, s, e.tconc);
            let rep = if e.rep == e.obj {
                obj
            } else {
                // A distinct agent is kept alive by the entry itself.
                agent_copied = agent_copied || e.rep.is_ptr();
                forward(heap, s, e.rep)
            };
            held.push(GuardEntry { obj, rep, tconc });
            s.report.guardian_entries_held += 1;
        } else {
            s.report.guardian_entries_dropped += 1;
        }
    }
    heap.protected[dest].extend(held);
    if agent_copied {
        kleene_sweep(heap, s);
    }
    heap.trace_emit(|| GcEvent::GuardianOutcome {
        finalized: s.report.guardian_entries_finalized - finalized_before,
        held: s.report.guardian_entries_held - held_before,
        dropped: s.report.guardian_entries_dropped - dropped_before,
        loop_iterations: s.report.guardian_loop_iterations - loops_before,
    });
}

/// Collector-side tconc append (Figure 3): allocates the fresh last pair
/// directly in the target generation and publishes the element by writing
/// the header's cdr last. Writes go through the barriered accessors so a
/// tconc living in an older generation leaves its segment dirty.
fn append_to_tconc(heap: &mut Heap, s: &mut Scratch, tconc: Value, obj: Value) {
    let p_addr = heap.alloc_words_internal(Space::Pair, s.target, 2);
    heap.segs.set_word(p_addr, Value::FALSE.raw());
    heap.segs.set_word(p_addr.add(1), Value::FALSE.raw());
    let p = Value::pair_at(p_addr);
    // The tconc was just forwarded; its cdr may still be a stale
    // from-space pointer if its segment has not been swept yet. Forward it
    // through before following it.
    let last_raw = heap.cdr(tconc);
    let last = forward(heap, s, last_raw);
    if last != last_raw {
        heap.set_cdr(tconc, last);
    }
    heap.tconc_append_with(tconc, obj, p);
}
