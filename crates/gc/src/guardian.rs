//! The user-level guardian interface (paper Section 3).
//!
//! At the user level a guardian is "a procedure that encapsulates a group
//! of objects registered for preservation"; calling it with an argument
//! registers the object, calling it with none retrieves an object that has
//! been proven inaccessible (or `#f`). In this embedding the procedure
//! becomes a [`Guardian`] handle with [`register`](Guardian::register) and
//! [`poll`](Guardian::poll) methods; the Scheme layer restores the exact
//! procedural interface.

use crate::heap::Heap;
use crate::roots::Rooted;
use crate::value::Value;

/// A guardian: registers objects for preservation and yields them back
/// after the collector proves them inaccessible.
///
/// The handle roots the guardian's internal tconc, so *dropping every
/// clone of the handle* (and every heap reference to the tconc) makes the
/// guardian itself collectable — which, per the paper, cancels
/// finalization of all objects registered with it: "Finalization of a
/// group of objects can be canceled by simply dropping all references to
/// the guardian."
///
/// # Example
///
/// ```
/// use guardians_gc::{Heap, Value};
///
/// let mut heap = Heap::default();
/// let g = heap.make_guardian();
/// let x = heap.cons(Value::fixnum(1), Value::fixnum(2));
/// g.register(&mut heap, x);
/// assert_eq!(g.poll(&mut heap), None); // still accessible? not proven dead
/// heap.collect(0); // x was never rooted: proven inaccessible, saved
/// let back = g.poll(&mut heap).expect("saved from destruction");
/// assert_eq!(heap.car(back), Value::fixnum(1));
/// assert_eq!(g.poll(&mut heap), None);
/// ```
#[derive(Clone, Debug)]
pub struct Guardian {
    tconc: Rooted,
}

impl Guardian {
    pub(crate) fn new(tconc: Rooted) -> Guardian {
        Guardian { tconc }
    }

    /// Reconstructs a guardian handle from a tconc stored in the heap
    /// (used by the Scheme layer, which keeps the tconc inside a guardian
    /// record). The handle roots the tconc.
    pub fn from_tconc(heap: &mut Heap, tconc: Value) -> Guardian {
        assert!(heap.is_pair(tconc), "guardian tconc must be a pair");
        Guardian {
            tconc: heap.root(tconc),
        }
    }

    /// The guardian's tconc value, for embedding into heap structures.
    /// The current address may change at every collection; read it fresh.
    pub fn tconc(&self) -> Value {
        self.tconc.get()
    }

    /// Registers `obj` with this guardian — the paper's `(G obj)`. An
    /// object may be registered any number of times, with any number of
    /// guardians, and is retrievable once per registration.
    pub fn register(&self, heap: &mut Heap, obj: Value) {
        heap.guardian_register(self.tconc.get(), obj, obj);
    }

    /// Registers `obj`, arranging for `agent` to be returned in its place
    /// when `obj` is proven inaccessible — the generalised interface of
    /// the paper's Section 5. When `agent` is not `obj` itself, `obj` is
    /// *not* preserved: "it allows objects to be discarded if something
    /// less than the object is needed to perform the finalization."
    pub fn register_with_agent(&self, heap: &mut Heap, obj: Value, agent: Value) {
        heap.guardian_register(self.tconc.get(), obj, agent);
    }

    /// Retrieves one object (or agent) proven inaccessible since
    /// registration — the paper's `(G)`. Returns `None` (the paper's
    /// `#f`) when the inaccessible group is empty.
    ///
    /// Objects returned "have no special status": they may be used
    /// normally, re-registered, let loose into the system, or dropped
    /// again.
    pub fn poll(&self, heap: &mut Heap) -> Option<Value> {
        heap.tconc_pop(self.tconc.get())
    }

    /// Whether the inaccessible group is currently empty.
    pub fn is_empty(&self, heap: &Heap) -> bool {
        heap.tconc_is_empty(self.tconc.get())
    }

    /// Number of objects currently in the inaccessible group.
    pub fn pending(&self, heap: &Heap) -> usize {
        heap.tconc_len(self.tconc.get())
    }

    /// Drains every currently retrievable object into a vector.
    pub fn drain(&self, heap: &mut Heap) -> Vec<Value> {
        let mut out = Vec::new();
        while let Some(v) = self.poll(heap) {
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_guardian_is_empty() {
        let mut h = Heap::default();
        let g = h.make_guardian();
        assert!(g.is_empty(&h));
        assert_eq!(g.poll(&mut h), None);
        assert_eq!(g.pending(&h), 0);
    }

    #[test]
    fn registration_counts_into_stats() {
        let mut h = Heap::default();
        let g = h.make_guardian();
        let x = h.cons(Value::NIL, Value::NIL);
        g.register(&mut h, x);
        g.register(&mut h, x);
        assert_eq!(h.stats().guardian_registrations, 2);
        assert_eq!(h.guardian_watched(g.tconc()), 2);
    }

    #[test]
    fn clones_share_the_same_tconc() {
        let mut h = Heap::default();
        let g = h.make_guardian();
        let g2 = g.clone();
        assert_eq!(g.tconc(), g2.tconc());
    }
}
