//! Typed accessors and the mutator write barrier.
//!
//! All dereferencing goes through the [`Heap`]. Accessors validate their
//! argument's type dynamically and panic with a descriptive message on
//! misuse (the Scheme layer checks predicates first and reports proper
//! Scheme errors).
//!
//! Every store of a value into a heap object passes the **write barrier**:
//! if the containing segment belongs to an older generation, the segment
//! is marked dirty so the next collection's remembered-set scan finds
//! potential old→young pointers. With the paper's promotion policy
//! (collecting a generation collects all younger ones too), mutation is
//! the *only* source of old→young pointers, so dirty segments are a
//! complete remembered set.

use crate::header::{Header, ObjKind};
use crate::heap::{read_bytes, Heap};
use crate::value::{fwd, Value};
use guardians_segments::Space;

impl Heap {
    // ------------------------------------------------------------------
    // Predicates
    // ------------------------------------------------------------------

    /// Whether `v` is a pair — ordinary *or* weak, matching the paper:
    /// "weak pairs are like normal pairs" and are manipulated with the
    /// normal list operations.
    #[inline]
    pub fn is_pair(&self, v: Value) -> bool {
        v.is_pair_ptr()
    }

    /// Whether `v` is a weak pair (determined by its segment's space, as
    /// in the paper's implementation — there is no per-object tag).
    pub fn is_weak_pair(&self, v: Value) -> bool {
        let v = self.resolve_read(v);
        v.is_pair_ptr() && self.segs.info(v.addr().seg()).space == Space::WeakPair
    }

    /// The kind of a typed heap object, or `None` for pairs, fixnums and
    /// immediates.
    pub fn kind_of(&self, v: Value) -> Option<ObjKind> {
        let v = self.resolve_read(v);
        if !v.is_obj_ptr() {
            return None;
        }
        Some(self.header_of(v).kind)
    }

    /// Whether `v` is a vector.
    pub fn is_vector(&self, v: Value) -> bool {
        self.kind_of(v) == Some(ObjKind::Vector)
    }

    /// Whether `v` is a string.
    pub fn is_string(&self, v: Value) -> bool {
        self.kind_of(v) == Some(ObjKind::String)
    }

    /// Whether `v` is a symbol.
    pub fn is_symbol(&self, v: Value) -> bool {
        self.kind_of(v) == Some(ObjKind::Symbol)
    }

    /// Whether `v` is a bytevector.
    pub fn is_bytevector(&self, v: Value) -> bool {
        self.kind_of(v) == Some(ObjKind::Bytevector)
    }

    /// Whether `v` is a box.
    pub fn is_box(&self, v: Value) -> bool {
        self.kind_of(v) == Some(ObjKind::Box)
    }

    /// Whether `v` is a flonum.
    pub fn is_flonum(&self, v: Value) -> bool {
        self.kind_of(v) == Some(ObjKind::Flonum)
    }

    /// Whether `v` is a record.
    #[inline]
    pub fn is_record(&self, v: Value) -> bool {
        self.kind_of(v) == Some(ObjKind::Record)
    }

    pub(crate) fn header_of(&self, v: Value) -> Header {
        debug_assert!(v.is_obj_ptr(), "not a typed object: {v:?}");
        Header::decode(self.segs.word(v.addr()))
            .unwrap_or_else(|| panic!("corrupt or stale object header at {:?}", v.addr()))
    }

    fn expect_kind(&self, v: Value, kind: ObjKind, op: &str) -> Header {
        assert!(v.is_obj_ptr(), "{op}: not a {kind:?}: {v:?}");
        let h = self.header_of(v);
        assert!(
            h.kind == kind,
            "{op}: expected {kind:?}, found {:?}",
            h.kind
        );
        h
    }

    // ------------------------------------------------------------------
    // Forwarded-on-read resolution (incremental collections)
    // ------------------------------------------------------------------

    /// Resolves a possibly-stale pointer while an incremental collection
    /// is suspended between increments. The mutator may legally hold
    /// from-space pointers then; every accessor funnels its pointer
    /// arguments through here, chasing the broken heart if the object has
    /// already been copied. Outside an incremental cycle (the common
    /// case) this is a single branch on `None`.
    #[inline]
    pub(crate) fn resolve_read(&self, v: Value) -> Value {
        let Some(st) = self.incremental.as_ref() else {
            return v;
        };
        if !v.is_ptr() || !st.s.from_space.contains(v.addr().seg()) {
            return v;
        }
        match fwd::decode(self.segs.word(v.addr())) {
            Some(new) => v.retag_at(new),
            None => v,
        }
    }

    // ------------------------------------------------------------------
    // Write barrier
    // ------------------------------------------------------------------

    /// Marks `container`'s segment dirty (and records it in the table's
    /// dirty index) if it lives in an older generation and `stored` is a
    /// heap pointer.
    ///
    /// While an incremental collection is suspended this is also the
    /// *collector's* write barrier: storing a from-space pointer into any
    /// segment outside the from-space may hide it in a region an earlier
    /// increment already scanned, so the segment is logged for re-scan by
    /// the next increment. Stores *into* from-space objects need no log —
    /// an unforwarded object's words travel wholesale if it is ever
    /// copied (callers resolve the container first, so such stores only
    /// hit genuinely-unforwarded objects).
    #[inline]
    pub(crate) fn barrier(&mut self, container: Value, stored: Value) {
        if !stored.is_ptr() {
            return;
        }
        let seg = container.addr().seg();
        if self.segs.info(seg).generation > 0 {
            self.segs.mark_dirty(seg);
        }
        if let Some(st) = self.incremental.as_mut() {
            if st.s.from_space.contains(stored.addr().seg()) && !st.s.from_space.contains(seg) {
                st.log_rescan(seg);
            }
        }
    }

    // ------------------------------------------------------------------
    // Pairs
    // ------------------------------------------------------------------

    fn expect_pair(&self, v: Value, op: &str) {
        assert!(v.is_pair_ptr(), "{op}: not a pair: {v:?}");
    }

    /// The car of a pair. For a weak pair whose referent was reclaimed,
    /// this is `#f` (the paper's broken-pointer value).
    #[inline]
    pub fn car(&self, v: Value) -> Value {
        let v = self.resolve_read(v);
        self.expect_pair(v, "car");
        Value(self.segs.word(v.addr()))
    }

    /// The cdr of a pair.
    #[inline]
    pub fn cdr(&self, v: Value) -> Value {
        let v = self.resolve_read(v);
        self.expect_pair(v, "cdr");
        Value(self.segs.word(v.addr().add(1)))
    }

    /// Sets the car of a pair (barriered).
    pub fn set_car(&mut self, v: Value, x: Value) {
        let v = self.resolve_read(v);
        let x = self.resolve_read(x);
        self.expect_pair(v, "set-car!");
        self.segs.set_word(v.addr(), x.raw());
        self.barrier(v, x);
    }

    /// Sets the cdr of a pair (barriered).
    pub fn set_cdr(&mut self, v: Value, x: Value) {
        let v = self.resolve_read(v);
        let x = self.resolve_read(x);
        self.expect_pair(v, "set-cdr!");
        self.segs.set_word(v.addr().add(1), x.raw());
        self.barrier(v, x);
    }

    // ------------------------------------------------------------------
    // Vectors
    // ------------------------------------------------------------------

    /// A vector's length.
    pub fn vector_len(&self, v: Value) -> usize {
        let v = self.resolve_read(v);
        self.expect_kind(v, ObjKind::Vector, "vector-length").len
    }

    /// Reads vector element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn vector_ref(&self, v: Value, i: usize) -> Value {
        let v = self.resolve_read(v);
        let h = self.expect_kind(v, ObjKind::Vector, "vector-ref");
        assert!(
            i < h.len,
            "vector-ref: index {i} out of range (len {})",
            h.len
        );
        Value(self.segs.word(v.addr().add(1 + i)))
    }

    /// Writes vector element `i` (barriered).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn vector_set(&mut self, v: Value, i: usize, x: Value) {
        let v = self.resolve_read(v);
        let x = self.resolve_read(x);
        let h = self.expect_kind(v, ObjKind::Vector, "vector-set!");
        assert!(
            i < h.len,
            "vector-set!: index {i} out of range (len {})",
            h.len
        );
        self.segs.set_word(v.addr().add(1 + i), x.raw());
        self.barrier(v, x);
    }

    // ------------------------------------------------------------------
    // Strings
    // ------------------------------------------------------------------

    /// A string's length in bytes.
    pub fn string_len(&self, v: Value) -> usize {
        let v = self.resolve_read(v);
        self.expect_kind(v, ObjKind::String, "string-length").len
    }

    /// Copies a string's contents out as an owned `String`. Constructors
    /// and FFI-ish paths need the copy; length/comparison paths should
    /// use the borrowing [`Heap::string_bytes`] instead.
    pub fn string_value(&self, v: Value) -> String {
        let v = self.resolve_read(v);
        let h = self.expect_kind(v, ObjKind::String, "string-value");
        let bytes = read_bytes(&self.segs, v.addr().add(1), h.len);
        String::from_utf8(bytes).expect("heap strings are always valid UTF-8")
    }

    /// Iterates over a string's UTF-8 bytes straight out of segment
    /// storage — the borrowing accessor for length/comparison paths,
    /// allocating nothing. Byte-wise lexicographic comparison of UTF-8
    /// coincides with code-point order, so `string=?`/`string<?` can
    /// compare these iterators directly.
    pub fn string_bytes(&self, v: Value) -> impl Iterator<Item = u8> + '_ {
        let v = self.resolve_read(v);
        let h = self.expect_kind(v, ObjKind::String, "string-bytes");
        let payload = v.addr().add(1);
        let len = h.len;
        (0..len.div_ceil(8)).flat_map(move |i| {
            let word = self.segs.word(payload.add(i)).to_le_bytes();
            let take = (len - i * 8).min(8);
            word.into_iter().take(take)
        })
    }

    /// A string's length in characters (code points), counted in place
    /// with no copy: one count of non-continuation bytes.
    pub fn string_char_count(&self, v: Value) -> usize {
        self.string_bytes(v).filter(|b| b & 0xC0 != 0x80).count()
    }

    // ------------------------------------------------------------------
    // Symbols
    // ------------------------------------------------------------------

    /// A symbol's print name.
    pub fn symbol_name(&self, v: Value) -> String {
        let v = self.resolve_read(v);
        self.expect_kind(v, ObjKind::Symbol, "symbol-name");
        let name = Value(self.segs.word(v.addr().add(1)));
        self.string_value(name)
    }

    /// A symbol's extra slot (used by the runtime for property lists /
    /// top-level values). Initially `#f`.
    pub fn symbol_extra(&self, v: Value) -> Value {
        let v = self.resolve_read(v);
        self.expect_kind(v, ObjKind::Symbol, "symbol-extra");
        Value(self.segs.word(v.addr().add(2)))
    }

    /// Writes a symbol's extra slot (barriered).
    pub fn set_symbol_extra(&mut self, v: Value, x: Value) {
        let v = self.resolve_read(v);
        let x = self.resolve_read(x);
        self.expect_kind(v, ObjKind::Symbol, "set-symbol-extra!");
        self.segs.set_word(v.addr().add(2), x.raw());
        self.barrier(v, x);
    }

    // ------------------------------------------------------------------
    // Bytevectors
    // ------------------------------------------------------------------

    /// A bytevector's length.
    pub fn bytevector_len(&self, v: Value) -> usize {
        let v = self.resolve_read(v);
        self.expect_kind(v, ObjKind::Bytevector, "bytevector-length")
            .len
    }

    /// Reads byte `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bytevector_ref(&self, v: Value, i: usize) -> u8 {
        let v = self.resolve_read(v);
        let h = self.expect_kind(v, ObjKind::Bytevector, "bytevector-ref");
        assert!(
            i < h.len,
            "bytevector-ref: index {i} out of range (len {})",
            h.len
        );
        let word = self.segs.word(v.addr().add(1 + i / 8));
        word.to_le_bytes()[i % 8]
    }

    /// Writes byte `i` (no barrier needed — bytes are not pointers).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bytevector_set(&mut self, v: Value, i: usize, byte: u8) {
        let v = self.resolve_read(v);
        let h = self.expect_kind(v, ObjKind::Bytevector, "bytevector-set!");
        assert!(
            i < h.len,
            "bytevector-set!: index {i} out of range (len {})",
            h.len
        );
        let addr = v.addr().add(1 + i / 8);
        let mut bytes = self.segs.word(addr).to_le_bytes();
        bytes[i % 8] = byte;
        self.segs.set_word(addr, u64::from_le_bytes(bytes));
    }

    /// Copies a bytevector's contents out.
    pub fn bytevector_value(&self, v: Value) -> Vec<u8> {
        let v = self.resolve_read(v);
        let h = self.expect_kind(v, ObjKind::Bytevector, "bytevector-value");
        read_bytes(&self.segs, v.addr().add(1), h.len)
    }

    // ------------------------------------------------------------------
    // Boxes
    // ------------------------------------------------------------------

    /// Reads a box.
    #[inline]
    pub fn box_ref(&self, v: Value) -> Value {
        let v = self.resolve_read(v);
        self.expect_kind(v, ObjKind::Box, "unbox");
        Value(self.segs.word(v.addr().add(1)))
    }

    /// Writes a box (barriered).
    #[inline]
    pub fn box_set(&mut self, v: Value, x: Value) {
        let v = self.resolve_read(v);
        let x = self.resolve_read(x);
        self.expect_kind(v, ObjKind::Box, "set-box!");
        self.segs.set_word(v.addr().add(1), x.raw());
        self.barrier(v, x);
    }

    // ------------------------------------------------------------------
    // Flonums
    // ------------------------------------------------------------------

    /// A flonum's value.
    pub fn flonum_value(&self, v: Value) -> f64 {
        let v = self.resolve_read(v);
        self.expect_kind(v, ObjKind::Flonum, "flonum-value");
        f64::from_bits(self.segs.word(v.addr().add(1)))
    }

    // ------------------------------------------------------------------
    // Records
    // ------------------------------------------------------------------

    /// A record's descriptor value.
    #[inline]
    pub fn record_descriptor(&self, v: Value) -> Value {
        let v = self.resolve_read(v);
        self.expect_kind(v, ObjKind::Record, "record-descriptor");
        Value(self.segs.word(v.addr().add(1)))
    }

    /// Number of fields (excluding the descriptor).
    #[inline]
    pub fn record_len(&self, v: Value) -> usize {
        let v = self.resolve_read(v);
        self.expect_kind(v, ObjKind::Record, "record-length").len - 1
    }

    /// Reads record field `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn record_ref(&self, v: Value, i: usize) -> Value {
        let v = self.resolve_read(v);
        let h = self.expect_kind(v, ObjKind::Record, "record-ref");
        assert!(
            i + 1 < h.len,
            "record-ref: field {i} out of range (fields {})",
            h.len - 1
        );
        Value(self.segs.word(v.addr().add(2 + i)))
    }

    /// Writes record field `i` (barriered).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn record_set(&mut self, v: Value, i: usize, x: Value) {
        let v = self.resolve_read(v);
        let x = self.resolve_read(x);
        let h = self.expect_kind(v, ObjKind::Record, "record-set!");
        assert!(
            i + 1 < h.len,
            "record-set!: field {i} out of range (fields {})",
            h.len - 1
        );
        self.segs.set_word(v.addr().add(2 + i), x.raw());
        self.barrier(v, x);
    }

    /// Reads record field `i` with the dynamic kind/range checks demoted
    /// to debug assertions, for callers whose layout is *statically
    /// audited* — the bytecode VM's fixed frame layouts, where
    /// `audit_frame_slots` has already proven every (depth, slot) pair in
    /// range. Still resolves forwarded-on-read pointers, so it is safe
    /// across incremental collections. Misuse cannot break memory safety
    /// (segment reads stay bounds-checked); it returns a wrong word.
    #[inline]
    pub fn record_ref_audited(&self, v: Value, i: usize) -> Value {
        let v = self.resolve_read(v);
        debug_assert!(
            {
                let h = self.expect_kind(v, ObjKind::Record, "record-ref");
                i + 1 < h.len
            },
            "record-ref (audited): field {i} out of range"
        );
        Value(self.segs.word(v.addr().add(2 + i)))
    }

    /// Writes record field `i` under the audited-layout contract of
    /// [`Heap::record_ref_audited`]. The write barrier always runs — only
    /// the kind/range checks are demoted to debug assertions.
    #[inline]
    pub fn record_set_audited(&mut self, v: Value, i: usize, x: Value) {
        let v = self.resolve_read(v);
        let x = self.resolve_read(x);
        debug_assert!(
            {
                let h = self.expect_kind(v, ObjKind::Record, "record-set!");
                i + 1 < h.len
            },
            "record-set! (audited): field {i} out of range"
        );
        self.segs.set_word(v.addr().add(2 + i), x.raw());
        self.barrier(v, x);
    }

    // ------------------------------------------------------------------
    // eqv?-style structural helpers
    // ------------------------------------------------------------------

    /// `eqv?`: pointer identity, plus value identity for fixnums,
    /// characters, immediates, and flonums.
    #[inline]
    pub fn eqv(&self, a: Value, b: Value) -> bool {
        // Resolve both sides so a stale from-space pointer and the
        // forwarded copy of the same object stay `eqv?` mid-cycle.
        let a = self.resolve_read(a);
        let b = self.resolve_read(b);
        if a == b {
            return true;
        }
        if self.is_flonum(a) && self.is_flonum(b) {
            return self.flonum_value(a).to_bits() == self.flonum_value(b).to_bits();
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_car_into_young_pair_does_not_dirty() {
        let mut h = Heap::default();
        let p = h.cons(Value::NIL, Value::NIL);
        let q = h.cons(Value::NIL, Value::NIL);
        h.set_car(p, q);
        assert!(
            !h.segs.info(p.addr().seg()).dirty,
            "gen-0 writes need no barrier"
        );
    }

    #[test]
    #[should_panic(expected = "car: not a pair")]
    fn car_of_non_pair_panics() {
        let h = Heap::default();
        let _ = h.car(Value::fixnum(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vector_ref_bounds_checked() {
        let mut h = Heap::default();
        let v = h.make_vector(3, Value::NIL);
        let _ = h.vector_ref(v, 3);
    }

    #[test]
    #[should_panic(expected = "expected Vector")]
    fn kind_mismatch_panics() {
        let mut h = Heap::default();
        let s = h.make_string("not a vector");
        let _ = h.vector_ref(s, 0);
    }

    #[test]
    fn kind_of_classifies_everything() {
        let mut h = Heap::default();
        let cases = [
            (h.make_vector(1, Value::NIL), ObjKind::Vector),
            (h.make_string("s"), ObjKind::String),
            (h.make_symbol("s"), ObjKind::Symbol),
            (h.make_bytevector(1, 0), ObjKind::Bytevector),
            (h.make_box(Value::NIL), ObjKind::Box),
            (h.make_flonum(1.0), ObjKind::Flonum),
        ];
        for (v, kind) in cases {
            assert_eq!(h.kind_of(v), Some(kind));
        }
        let d = h.make_symbol("d");
        let r = h.make_record(d, &[]);
        assert_eq!(h.kind_of(r), Some(ObjKind::Record));
        let p = h.cons(Value::NIL, Value::NIL);
        assert_eq!(h.kind_of(p), None);
        assert_eq!(h.kind_of(Value::fixnum(1)), None);
    }

    #[test]
    fn eqv_distinguishes_identity_from_structure() {
        let mut h = Heap::default();
        let a = h.cons(Value::fixnum(1), Value::NIL);
        let b = h.cons(Value::fixnum(1), Value::NIL);
        assert!(h.eqv(a, a));
        assert!(!h.eqv(a, b), "structurally equal pairs are not eqv?");
        let f1 = h.make_flonum(2.5);
        let f2 = h.make_flonum(2.5);
        assert!(h.eqv(f1, f2), "equal flonums are eqv?");
        assert!(h.eqv(Value::fixnum(3), Value::fixnum(3)));
    }

    #[test]
    fn bytevector_edge_bytes() {
        let mut h = Heap::default();
        let bv = h.make_bytevector(9, 1);
        h.bytevector_set(bv, 7, 0xFE);
        h.bytevector_set(bv, 8, 0xFF);
        assert_eq!(h.bytevector_ref(bv, 7), 0xFE);
        assert_eq!(h.bytevector_ref(bv, 8), 0xFF);
        assert_eq!(
            h.bytevector_value(bv),
            vec![1, 1, 1, 1, 1, 1, 1, 0xFE, 0xFF]
        );
    }
}
