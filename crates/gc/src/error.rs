//! Recoverable heap errors.
//!
//! The collector itself never runs user code and never fails mid-flight:
//! the only recoverable failure mode is *segment exhaustion*, which the
//! heap surfaces **before** mutating anything — either when a mutator
//! allocation cannot acquire the segments it needs, or when a collection's
//! worst-case to-space reservation does not fit in the remaining segment
//! budget. In both cases the heap is left exactly as it was (and still
//! passes [`Heap::verify`](crate::Heap::verify)); the caller can free
//! roots and retry, collect a smaller generation, or shut down cleanly.

use std::fmt;

/// A recoverable heap failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GcError {
    /// Segment acquisition would exceed the configured budget (the
    /// [`GcConfig::fail_acquisition_at`](crate::GcConfig::fail_acquisition_at)
    /// fault-injection knob, which doubles as a hard heap-size cap).
    ///
    /// The operation that reported this error performed **no** heap
    /// mutation: allocations check their full segment demand up front, and
    /// collections check a conservative worst-case to-space reservation
    /// before the flip.
    Exhausted {
        /// Segments the operation needed (for a collection: the
        /// conservative worst-case reservation).
        needed: u64,
        /// Segments still acquirable before the fault fires.
        remaining: u64,
    },
}

impl fmt::Display for GcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GcError::Exhausted { needed, remaining } => write!(
                f,
                "heap exhausted: needs {needed} segment(s) but only {remaining} \
                 can still be acquired before the configured acquisition limit"
            ),
        }
    }
}

impl std::error::Error for GcError {}
