//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, snapshot-able as JSON with deterministic key order.
//!
//! [`HeapStats`](crate::HeapStats) keeps its ad-hoc fields for
//! programmatic access, but the registry is the export surface: the heap
//! folds every collection report into it (pause and per-phase histograms
//! included) and syncs the mutator-side counters on snapshot, so one
//! [`MetricsRegistry::to_json`] call captures the whole picture for
//! dashboards and the bench gate. All maps are `BTreeMap`s, so iteration
//! and JSON key order are stable across runs — a diff of two snapshots is
//! a semantic diff.

use std::collections::BTreeMap;

/// A fixed-bucket histogram: values are counted into buckets bounded
/// above by a sorted ladder, with an overflow bucket past the last bound.
/// Exact minimum, maximum, count, and sum are tracked alongside, and
/// quantiles are answered from the bucket counts (upper-bound estimate,
/// clamped to the exact max).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// The default pause-time ladder: 1 µs to ~16.8 s in powers of two
/// (25 buckets plus overflow), in nanoseconds.
pub fn pause_bounds() -> Vec<u64> {
    (0..25).map(|k| 1_000u64 << k).collect()
}

impl Histogram {
    /// A histogram over the given sorted upper bounds (plus an implicit
    /// overflow bucket).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: Vec<u64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded value, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum recorded value, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the rank, clamped to the exact maximum; `None` if empty.
    /// `quantile(0.5)`, `quantile(0.95)`, `quantile(0.99)` are the usual
    /// p50/p95/p99.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let upper = self.bounds.get(i).copied().unwrap_or(self.max);
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// `(upper_bound, count)` for every non-empty bucket below the
    /// overflow bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.bounds
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(&b, &c)| (b, c))
            .collect()
    }

    /// Count of values past the last bound.
    pub fn overflow(&self) -> u64 {
        *self.counts.last().expect("counts is never empty")
    }

    fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonzero_buckets()
            .into_iter()
            .map(|(b, c)| format!("[{b},{c}]"))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\
             \"overflow\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min().unwrap_or(0),
            self.max().unwrap_or(0),
            self.quantile(0.5).unwrap_or(0),
            self.quantile(0.95).unwrap_or(0),
            self.quantile(0.99).unwrap_or(0),
            self.overflow(),
            buckets.join(",")
        )
    }
}

/// Named counters, gauges, and histograms with deterministic snapshots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// Adds `by` to a (auto-created) counter.
    pub fn add_counter(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_insert(0) += by;
    }

    /// Sets a counter to an absolute value (used when syncing from an
    /// external accumulator such as [`HeapStats`](crate::HeapStats)).
    pub fn set_counter(&mut self, name: &'static str, v: u64) {
        self.counters.insert(name, v);
    }

    /// Reads a counter (`0` if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &'static str, v: i64) {
        self.gauges.insert(name, v);
    }

    /// Reads a gauge (`0` if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, created over the default pause-time ladder
    /// ([`pause_bounds`]) if absent.
    pub fn histogram(&mut self, name: &'static str) -> &mut Histogram {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(pause_bounds()))
    }

    /// Reads a histogram, if it exists.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// One-object JSON snapshot with `counters`, `gauges`, and
    /// `histograms` sections; key order is the `BTreeMap` name order, so
    /// two snapshots of identical state are byte-identical.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, h)| format!("\"{k}\":{}", h.to_json()))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_answers_none() {
        let h = Histogram::new(pause_bounds());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn values_on_bucket_boundaries_land_in_the_bounded_bucket() {
        // Bucket semantics: a bound is an *inclusive* upper bound.
        let mut h = Histogram::new(vec![10, 100]);
        h.record(10); // exactly on the first bound → first bucket
        h.record(11); // just past → second bucket
        h.record(100); // on the second bound → second bucket
        h.record(101); // past everything → overflow
        assert_eq!(h.nonzero_buckets(), vec![(10, 1), (100, 2)]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(101));
    }

    #[test]
    fn quantiles_walk_the_cumulative_counts() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for _ in 0..90 {
            h.record(5);
        }
        for _ in 0..9 {
            h.record(50);
        }
        h.record(500);
        assert_eq!(h.quantile(0.5), Some(10), "p50 in the first bucket");
        assert_eq!(h.quantile(0.95), Some(100), "p95 in the second");
        assert_eq!(h.quantile(0.99), Some(100), "rank 99 is the last 50");
        assert_eq!(h.quantile(1.0), Some(500), "p100 clamped to exact max");
        assert_eq!(h.quantile(0.0), Some(10), "q=0 clamps to rank 1");
    }

    #[test]
    fn overflow_quantile_reports_the_exact_max() {
        let mut h = Histogram::new(vec![10]);
        h.record(1_000_000);
        assert_eq!(h.quantile(0.5), Some(1_000_000));
    }

    #[test]
    fn single_value_histogram_clamps_to_max() {
        // A 1.5 µs pause sits in the (1µs, 2µs] bucket whose upper bound
        // is 2 000 ns; the quantile must clamp to the exact max instead
        // of over-reporting.
        let mut h = Histogram::new(pause_bounds());
        h.record(1_500);
        assert_eq!(h.quantile(0.5), Some(1_500));
        assert_eq!(h.quantile(0.99), Some(1_500));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_are_rejected() {
        let _ = Histogram::new(vec![10, 10]);
    }

    #[test]
    fn registry_json_is_deterministic_and_ordered() {
        let mut m = MetricsRegistry::default();
        m.add_counter("z.last", 1);
        m.add_counter("a.first", 2);
        m.set_gauge("g", -3);
        m.histogram("h").record(42);
        let one = m.to_json();
        let two = m.clone().to_json();
        assert_eq!(one, two);
        let a = one.find("a.first").unwrap();
        let z = one.find("z.last").unwrap();
        assert!(a < z, "counters in name order: {one}");
        assert!(one.contains("\"gauges\":{\"g\":-3}"), "{one}");
        assert!(one.contains("\"p50\":42"), "{one}");
    }

    #[test]
    fn counters_and_gauges_read_back() {
        let mut m = MetricsRegistry::default();
        m.add_counter("c", 2);
        m.add_counter("c", 3);
        assert_eq!(m.counter("c"), 5);
        m.set_counter("c", 1);
        assert_eq!(m.counter("c"), 1);
        assert_eq!(m.counter("absent"), 0);
        m.set_gauge("g", 7);
        assert_eq!(m.gauge("g"), 7);
        assert_eq!(m.gauge("absent"), 0);
    }
}
